// Ablations of the design choices DESIGN.md calls out:
//   (a) the VLB split parameter k under the Fig. 20 hotspot (§3.4's
//       "k can be adaptive depending on the traffic characteristics");
//   (b) L2 spanning-tree forwarding vs ECMP on the mesh (§3.4's naive
//       baseline, which wastes all but M-1 lightpaths); and
//   (c) ring-size scaling: channels, physical rings, amplifiers and
//       mesh transceivers as M grows (the §3.2 scalability story).
#include "report.hpp"

#include "common/table.hpp"
#include "core/design.hpp"
#include "core/fault.hpp"
#include "core/upgrade.hpp"
#include "flow/bisection.hpp"
#include "routing/oracle.hpp"
#include "sim/experiments.hpp"
#include "sim/sweep.hpp"
#include "sim/workloads.hpp"
#include "topo/builders.hpp"

namespace {

using namespace quartz;

sim::SweepRunner make_runner(std::uint64_t root_seed) {
  return sim::SweepRunner({bench::Report::instance().jobs(), root_seed});
}

void report_vlb_sweep() {
  bench::print_banner("Ablation (a)", "VLB split k under the Fig. 20 hotspot, 50 Gb/s offered");
  Table table({"k (detoured fraction)", "mean latency (us)", "p99 (us)", "drops"});
  const std::vector<double> ks{0.0, 0.1, 0.2, 0.3, 0.5, 0.8, 1.0};
  const auto results = make_runner(20).run(ks, [](double k) {
    sim::PathologicalParams params;
    params.aggregate_gbps = 50;
    params.vlb_fraction = k;
    params.duration = milliseconds(4);
    return sim::run_pathological(
        k == 0.0 ? sim::CoreKind::kQuartzEcmp : sim::CoreKind::kQuartzVlb, params);
  });
  for (std::size_t i = 0; i < ks.size(); ++i) {
    const auto& r = results[i];
    char kk[8], m[20], p[20];
    std::snprintf(kk, sizeof(kk), "%.1f", ks[i]);
    std::snprintf(m, sizeof(m), "%.2f", r.mean_latency_us);
    std::snprintf(p, sizeof(p), "%.2f", r.p99_latency_us);
    table.add_row({kk, m, p, std::to_string(r.packets_dropped)});
  }
  bench::Report::instance().add_table("vlb_sweep", table);
  bench::print_note(
      "with 50G offered into a 40G lightpath, at least 20% of traffic "
      "must detour; the sweep shows the knee and the small per-hop cost "
      "of over-detouring");
}

void report_spanning_tree() {
  bench::print_banner("Ablation (b)", "L2 spanning tree vs ECMP on an 8-switch Quartz mesh");

  // Each forwarding variant builds its own topology and Network inside
  // the point function: Network is confined to the thread that creates
  // it, so nothing simulation-bearing may be captured by the lambda.
  struct DuelResult {
    double mean_us = 0;
    double p99_us = 0;
    std::size_t packets = 0;
  };
  const std::vector<bool> variants{false, true};  // false = ECMP, true = STP
  const auto duel = make_runner(5).run(variants, [](bool use_stp) {
    topo::QuartzRingParams ring;
    ring.switches = 8;
    ring.hosts_per_switch = 4;
    const topo::BuiltTopology t = topo::quartz_ring(ring);
    routing::EcmpRouting routing(t.graph);
    const routing::EcmpOracle ecmp(routing);
    const routing::SpanningTreeOracle stp(t.graph, t.tors[0]);
    const routing::RoutingOracle& oracle =
        use_stp ? static_cast<const routing::RoutingOracle&>(stp) : ecmp;
    sim::Network net(t, oracle);
    SampleSet samples;
    const int task = net.new_task(
        [&samples](const sim::Packet&, TimePs l) { samples.add(to_microseconds(l)); });
    Rng rng(5);
    std::vector<std::unique_ptr<sim::PoissonFlow>> flows;
    sim::FlowParams flow;
    flow.rate = megabits_per_second(400);
    flow.stop = milliseconds(10);
    // Permutation-ish load across rack pairs.
    for (std::size_t i = 0; i < t.hosts.size(); ++i) {
      flows.push_back(std::make_unique<sim::PoissonFlow>(
          net, t.hosts[i], t.hosts[(i + 5) % t.hosts.size()], task, flow, rng.fork()));
    }
    net.run_until(milliseconds(11));
    return DuelResult{samples.mean(), samples.percentile(99), samples.count()};
  });

  Table table({"forwarding", "mean latency (us)", "p99 (us)", "packets"});
  const std::vector<std::string> names{"ECMP (direct lightpaths)", "L2 spanning tree"};
  for (std::size_t i = 0; i < variants.size(); ++i) {
    char m[16], p[16];
    std::snprintf(m, sizeof(m), "%.2f", duel[i].mean_us);
    std::snprintf(p, sizeof(p), "%.2f", duel[i].p99_us);
    table.add_row({names[i], m, p, std::to_string(duel[i].packets)});
  }
  bench::Report::instance().add_table("l2_vs_ecmp", table);
  bench::print_note(
      "§3.4: Ethernet's single spanning tree funnels every flow through "
      "the root switch, recreating the congestion the mesh exists to "
      "remove; ECMP uses each pair's dedicated lightpath");
}

void report_ring_scaling() {
  bench::print_banner("Ablation (c)", "Ring-size scaling of the optical bill of materials");
  Table table({"switches", "server ports", "channels", "physical rings",
               "transceivers/switch", "amplifiers (rule)", "oversubscription"});
  const std::vector<int> ring_sizes{4, 8, 12, 16, 20, 24, 28, 33, 35};
  const auto designs = make_runner(3).run(ring_sizes, [](int m) {
    core::DesignParams params;
    params.switches = m;
    params.server_ports_per_switch = std::min(32, 64 - (m - 1));
    return core::plan_design(params);
  });
  for (std::size_t i = 0; i < ring_sizes.size(); ++i) {
    const int m = ring_sizes[i];
    const core::QuartzDesign& design = designs[i];
    if (!design.feasible) continue;
    char os[8];
    std::snprintf(os, sizeof(os), "%.1f", design.oversubscription());
    table.add_row({std::to_string(m), std::to_string(design.total_server_ports),
                   std::to_string(design.channels.channels_used),
                   std::to_string(design.physical_rings),
                   std::to_string(design.transceivers_per_switch),
                   std::to_string(optical::paper_rule_amplifier_count(
                                      static_cast<std::size_t>(m)) *
                                  static_cast<std::size_t>(design.physical_rings)),
                   os});
  }
  bench::Report::instance().add_table("ring_scaling", table);
  bench::print_note(
      "channels grow ~M^2/8, so mux capacity (80) forces a second "
      "physical ring near M=25 and the fiber cap (160) stops the mesh at "
      "M=35 — the scalability wall that motivates Quartz-as-an-element");
}

void report_oversubscription() {
  bench::print_banner("Ablation (d)", "The n:k oversubscription dial (16 racks, flow model)");
  Table table({"hosts/rack (n)", "n:k ratio", "permutation", "incast", "rack shuffle"});
  struct OversubRow {
    double permutation, incast, shuffle;
  };
  const std::vector<int> host_counts{8, 15, 24, 32, 45};
  const auto rows = make_runner(4).run(host_counts, [](int n) {
    flow::BisectionParams params;
    params.racks = 16;
    params.hosts_per_rack = n;
    auto throughput = [&params](flow::ThroughputPattern pattern) {
      return flow::run_bisection(flow::FabricUnderTest::kQuartz, pattern, params)
          .normalized_throughput;
    };
    return OversubRow{throughput(flow::ThroughputPattern::kPermutation),
                      throughput(flow::ThroughputPattern::kIncast),
                      throughput(flow::ThroughputPattern::kRackShuffle)};
  });
  for (std::size_t at = 0; at < host_counts.size(); ++at) {
    const int n = host_counts[at];
    char ratio[8], p[8], i[8], s[8];
    std::snprintf(ratio, sizeof(ratio), "%.1f", static_cast<double>(n) / 15.0);
    std::snprintf(p, sizeof(p), "%.2f", rows[at].permutation);
    std::snprintf(i, sizeof(i), "%.2f", rows[at].incast);
    std::snprintf(s, sizeof(s), "%.2f", rows[at].shuffle);
    table.add_row({std::to_string(n), ratio, p, i, s});
  }
  bench::Report::instance().add_table("oversubscription", table);
  bench::print_note(
      "§3: \"a DCN designer can reduce the number of required switches by "
      "increasing the server-to-switch ratio at the cost of higher "
      "network oversubscription\" — the dial quantified");
}

void report_upgrade_path() {
  bench::print_banner("Ablation (e)", "Pay-as-you-grow: Quartz core vs chassis core (§4.2)");
  const auto plan = core::plan_incremental_growth(core::PriceCatalog{});
  Table table({"switches", "ports", "channels", "rings", "step cost",
               "quartz cumulative", "chassis cumulative"});
  for (std::size_t i = 0; i < plan.size(); ++i) {
    if (i % 4 != 0 && i + 1 != plan.size()) continue;  // sample rows
    const auto& s = plan[i];
    char step[16], q[16], c[16];
    std::snprintf(step, sizeof(step), "$%.0fk", s.step_cost_usd / 1e3);
    std::snprintf(q, sizeof(q), "$%.0fk", s.quartz_cumulative_usd / 1e3);
    std::snprintf(c, sizeof(c), "$%.0fk", s.chassis_cumulative_usd / 1e3);
    table.add_row({std::to_string(s.ring_size), std::to_string(s.ports_supported),
                   std::to_string(s.channels), std::to_string(s.physical_rings), step, q, c});
  }
  bench::Report::instance().add_table("pay_as_you_grow", table);
  char frac[16];
  std::snprintf(frac, sizeof(frac), "%.0f%%", 100.0 * core::max_step_fraction(plan));
  std::printf("largest single Quartz step: %s of the final spend\n", frac);
  bench::print_note(
      "the chassis path pays its biggest cost on day one; the Quartz "
      "path's spend tracks demand — §4.2's incremental-deployment claim");
}

void report_fct() {
  bench::print_banner("Ablation (f)", "Flow completion time: bulk transfers across fabrics");
  Table table({"flow size", "three-tier tree FCT (us)", "quartz edge+core FCT (us)", "speedup"});
  struct FctPoint {
    std::int64_t kb;
    sim::Fabric fabric;
  };
  const std::vector<std::int64_t> kbs{16, 64, 256, 1024};
  std::vector<FctPoint> points;
  for (std::int64_t kb : kbs) {
    for (auto fabric : {sim::Fabric::kThreeTierTree, sim::Fabric::kQuartzInEdgeAndCore}) {
      points.push_back({kb, fabric});
    }
  }
  const auto fcts = make_runner(9).run(points, [](const FctPoint& pt) {
    sim::BuiltFabric built = sim::build_fabric(pt.fabric);
    sim::Network net(built.topo, *built.oracle);
    // A cross-pod transfer with background permutation noise.
    const int noise_task = net.new_task({});
    Rng rng(9);
    std::vector<std::unique_ptr<sim::PoissonFlow>> noise;
    sim::FlowParams flow;
    flow.rate = megabits_per_second(500);
    flow.stop = milliseconds(50);
    for (std::size_t i = 0; i < built.topo.hosts.size(); i += 2) {
      noise.push_back(std::make_unique<sim::PoissonFlow>(
          net, built.topo.hosts[i], built.topo.hosts[(i + 17) % built.topo.hosts.size()],
          noise_task, flow, rng.fork()));
    }
    sim::TransferParams transfer;
    transfer.total_bytes = pt.kb * 1024;
    transfer.start = milliseconds(1);
    sim::FlowTransfer bulk(net, built.topo.host_groups.front().front(),
                           built.topo.host_groups.back().back(), transfer, 77);
    net.run_until(milliseconds(50));
    return bulk.done() ? to_microseconds(bulk.completion_time()) : -1.0;
  });
  for (std::size_t i = 0; i < kbs.size(); ++i) {
    const double tree_fct = fcts[2 * i];
    const double quartz_fct = fcts[2 * i + 1];
    char t[16], q[16], sp[16];
    std::snprintf(t, sizeof(t), "%.1f", tree_fct);
    std::snprintf(q, sizeof(q), "%.1f", quartz_fct);
    std::snprintf(sp, sizeof(sp), "%.2fx", tree_fct / quartz_fct);
    table.add_row({std::to_string(kbs[i]) + " KB", t, q, sp});
  }
  bench::Report::instance().add_table("flow_completion_time", table);
  bench::print_note(
      "short transfers are latency-bound and see the full hop-count win; "
      "long transfers become serialization-bound and the fabrics converge "
      "— the paper's motivation for targeting latency-sensitive flows");
}

void report_availability() {
  bench::print_banner("Ablation (g)", "Steady-state availability (0.5 cuts/km/yr, 8h MTTR)");
  Table table({"rings", "bandwidth availability", "partition minutes/year"});
  const std::vector<int> ring_counts{1, 2, 3, 4};
  const auto avail_results = make_runner(6).run(ring_counts, [](int rings) {
    core::AvailabilityParams params;
    params.physical_rings = rings;
    params.trials = 100'000;
    return core::analyze_availability(params);
  });
  for (int rings = 1; rings <= 4; ++rings) {
    const auto& r = avail_results[static_cast<std::size_t>(rings - 1)];
    char avail[16], part[16];
    std::snprintf(avail, sizeof(avail), "%.5f%%", 100.0 * r.mean_bandwidth_availability);
    std::snprintf(part, sizeof(part), "%.3f", r.partition_minutes_per_year);
    table.add_row({std::to_string(rings), avail, part});
  }
  bench::Report::instance().add_table("availability", table);
  bench::print_note(
      "under a fixed failure *rate*, extra rings buy partition "
      "resistance rather than bandwidth (every lightpath still crosses "
      "the same number of segments) — the steady-state complement to "
      "Fig. 6's fixed-failure-count view");
}

void report_scale_sensitivity() {
  bench::print_banner("Ablation (h)", "Scale sensitivity of the Fig. 17 scatter gap");
  Table table({"hosts", "pods", "tree (us)", "quartz edge+core (us)", "reduction"});
  struct Scale {
    int pods;
    int tors_per_pod;
    int hosts_per_tor;
  };
  struct ScalePoint {
    Scale scale;
    sim::Fabric fabric;
  };
  const std::vector<Scale> scales{{2, 4, 8}, {4, 2, 8}, {2, 4, 16}, {4, 4, 8}};
  std::vector<ScalePoint> points;
  for (const Scale scale : scales) {
    for (auto fabric : {sim::Fabric::kThreeTierTree, sim::Fabric::kQuartzInEdgeAndCore}) {
      points.push_back({scale, fabric});
    }
  }
  const auto means = make_runner(17).run(points, [](const ScalePoint& pt) {
    sim::FabricConfig config;
    config.pods = pt.scale.pods;
    config.tors_per_pod = pt.scale.tors_per_pod;
    config.hosts_per_tor = pt.scale.hosts_per_tor;
    config.jellyfish_hosts_per_switch =
        pt.scale.pods * pt.scale.tors_per_pod * pt.scale.hosts_per_tor / 16;
    sim::TaskExperimentParams params;
    params.tasks = 4;
    params.duration = milliseconds(8);
    return sim::run_task_experiment(pt.fabric, config, params).mean_latency_us;
  });
  for (std::size_t i = 0; i < scales.size(); ++i) {
    const Scale& scale = scales[i];
    const double tree = means[2 * i];
    const double quartz = means[2 * i + 1];
    char t[16], q[16], red[16];
    std::snprintf(t, sizeof(t), "%.2f", tree);
    std::snprintf(q, sizeof(q), "%.2f", quartz);
    std::snprintf(red, sizeof(red), "%.0f%%", 100.0 * (1.0 - quartz / tree));
    table.add_row({std::to_string(scale.pods * scale.tors_per_pod * scale.hosts_per_tor),
                   std::to_string(scale.pods), t, q, red});
  }
  bench::Report::instance().add_table("scale_sensitivity", table);
  bench::print_note(
      "more pods push more traffic through the 6 us core, widening the "
      "gap; the quartz advantage is not an artifact of one simulated "
      "scale");
}

void report() {
  bench::Report::instance().open("ablation", "Design-choice ablations");
  report_vlb_sweep();
  report_spanning_tree();
  report_ring_scaling();
  report_oversubscription();
  report_upgrade_path();
  report_fct();
  report_availability();
  report_scale_sensitivity();
}

void BM_SpanningTreeSim(benchmark::State& state) {
  topo::QuartzRingParams ring;
  ring.switches = 8;
  ring.hosts_per_switch = 2;
  const topo::BuiltTopology t = topo::quartz_ring(ring);
  routing::EcmpRouting routing(t.graph);
  const routing::SpanningTreeOracle stp(t.graph, t.tors[0]);
  for (auto _ : state) {
    sim::Network net(t, stp);
    const int task = net.new_task({});
    net.send(t.hosts[0], t.hosts[9], bytes(400), task, 1);
    net.run_until(milliseconds(1));
    benchmark::DoNotOptimize(net.packets_delivered());
  }
}
BENCHMARK(BM_SpanningTreeSim);

}  // namespace

QUARTZ_BENCH_MAIN(report)
