// Shared scaffolding for the bench binaries.
//
// Every binary under bench/ regenerates one of the paper's tables or
// figures: it first prints the reproduction (the same rows/series the
// paper reports) and then runs its google-benchmark micro-measurements
// of the underlying solver/simulator.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

namespace quartz::bench {

inline void print_banner(const std::string& id, const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("  (Quartz, SIGCOMM 2014 reproduction)\n");
  std::printf("================================================================\n");
}

inline void print_note(const std::string& note) { std::printf("note: %s\n", note.c_str()); }

/// Standard main body: report first, micro-benchmarks second.
#define QUARTZ_BENCH_MAIN(report_fn)                                   \
  int main(int argc, char** argv) {                                    \
    ::benchmark::Initialize(&argc, argv);                              \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    report_fn();                                                       \
    ::benchmark::RunSpecifiedBenchmarks();                             \
    return 0;                                                          \
  }

}  // namespace quartz::bench
