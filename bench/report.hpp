// Shared scaffolding for the bench binaries.
//
// Every binary under bench/ regenerates one of the paper's tables or
// figures: it first prints the reproduction (the same rows/series the
// paper reports) and then runs its google-benchmark micro-measurements
// of the underlying solver/simulator.
//
// Besides the console text, each binary emits a machine-readable
// BENCH_<id>.json capturing the reproduction rows, telemetry rollups
// (latency decompositions, metric registries, time-series buckets) and
// the google-benchmark timings — one self-contained artifact per
// figure.  See docs/observability.md for the schema.
//
// Flags (consumed before google-benchmark sees argv):
//   --report-dir=<dir>   where BENCH_<id>.json is written (default ".")
//   --no-report          skip writing the JSON artifact
//   --jobs=<n>           worker threads for the binary's sweep loops
//                        (sim::SweepRunner; 0 = all hardware threads,
//                        default 1).  Results are byte-identical for
//                        every value — jobs only changes wall-clock.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "common/table.hpp"
#include "telemetry/export.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/sampler.hpp"
#include "telemetry/trace.hpp"

namespace quartz::bench {

inline void print_banner(const std::string& id, const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("  (Quartz, SIGCOMM 2014 reproduction)\n");
  std::printf("================================================================\n");
}

/// Collects the reproduction's structured data alongside the console
/// output and writes BENCH_<id>.json at exit.  One per process.
class Report {
 public:
  static Report& instance() {
    static Report report;
    return report;
  }

  /// Strip report flags from argv (before benchmark::Initialize) and
  /// remember the program name.  Returns false on a malformed flag.
  bool parse_args(int* argc, char** argv) {
    if (*argc > 0) {
      program_ = argv[0];
      const std::size_t slash = program_.find_last_of('/');
      if (slash != std::string::npos) program_ = program_.substr(slash + 1);
    }
    int out = 1;
    for (int i = 1; i < *argc; ++i) {
      const char* arg = argv[i];
      if (std::strcmp(arg, "--no-report") == 0) {
        enabled_ = false;
      } else if (std::strncmp(arg, "--report-dir=", 13) == 0) {
        directory_ = arg + 13;
        if (directory_.empty()) {
          std::fprintf(stderr, "--report-dir needs a value\n");
          return false;
        }
      } else if (std::strncmp(arg, "--jobs=", 7) == 0) {
        char* end = nullptr;
        const long value = std::strtol(arg + 7, &end, 10);
        if (end == arg + 7 || *end != '\0' || value < 0) {
          std::fprintf(stderr, "--jobs needs a non-negative integer\n");
          return false;
        }
        jobs_ = static_cast<int>(value);
      } else {
        argv[out++] = argv[i];
      }
    }
    *argc = out;
    return true;
  }

  /// Worker threads for the binary's sweep loops (--jobs; 0 = all
  /// hardware threads).  Feed this to sim::SweepOptions::jobs.
  int jobs() const { return jobs_; }

  /// Print the banner and name the artifact (BENCH_<id>.json).
  void open(const std::string& id, const std::string& title) {
    id_ = id;
    title_ = title;
    print_banner(id, title);
  }

  void note(const std::string& note) {
    std::printf("note: %s\n", note.c_str());
    notes_.push_back(note);
  }

  /// Print a reproduction table and capture its rows in `section`.
  /// Cells that parse fully as numbers are exported as numbers.
  void add_table(const std::string& section, const Table& table) {
    std::printf("%s\n", table.to_text().c_str());
    Section& s = section_named(section);
    for (const auto& row : table.data()) {
      telemetry::JsonRow out;
      out.reserve(row.size());
      for (std::size_t c = 0; c < row.size(); ++c) {
        const std::string& name = c < table.header().size() ? table.header()[c] : "";
        out.emplace_back(name, cell_value(row[c]));
      }
      s.rows.push_back(std::move(out));
    }
  }

  /// Capture one structured row without printing anything.
  void add_row(const std::string& section, telemetry::JsonRow row) {
    section_named(section).rows.push_back(std::move(row));
  }

  /// Capture a latency decomposition labelled `label` (one row).
  void add_decomposition(const std::string& section, const std::string& label,
                         const telemetry::DecompositionSummary& summary) {
    telemetry::JsonRow row = summary.to_row();
    row.insert(row.begin(), {"label", telemetry::JsonValue(label)});
    section_named(section).rows.push_back(std::move(row));
  }

  /// Capture a sampler's time-series (one row per bucket; the hottest
  /// lightpath direction is flattened into hottest_* columns).
  void add_timeline(const std::string& section, const std::vector<telemetry::BucketSummary>& buckets) {
    Section& s = section_named(section);
    for (const telemetry::BucketSummary& bucket : buckets) {
      telemetry::JsonRow row = bucket.to_row();
      if (!bucket.hottest.empty()) {
        const telemetry::LinkActivity& hot = bucket.hottest.front();
        row.emplace_back("hottest_link", telemetry::JsonValue(static_cast<std::int64_t>(hot.link)));
        row.emplace_back("hottest_direction", telemetry::JsonValue(hot.direction));
        row.emplace_back("hottest_utilization", telemetry::JsonValue(hot.utilization));
      }
      s.rows.push_back(std::move(row));
    }
  }

  /// Attach a metric registry dump to the artifact (exported whole
  /// under "metrics" at write time; last call wins).
  void set_metrics(const telemetry::MetricRegistry* registry) { metrics_ = registry; }

  void add_benchmark_timing(const std::string& name, double real_time, double cpu_time,
                            const std::string& unit, std::int64_t iterations, bool errored) {
    timings_.push_back({name, real_time, cpu_time, unit, iterations, errored});
  }

  /// Write BENCH_<id>.json (no-op when --no-report or open() was never
  /// called).  Returns the path written, or "" when skipped.
  std::string write() const {
    if (!enabled_ || id_.empty()) return "";
    const std::string path = directory_ + "/BENCH_" + id_ + ".json";
    std::ofstream os(path);
    if (!os) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return "";
    }
    telemetry::JsonWriter w(os, /*pretty=*/true);
    w.begin_object();
    w.kv("schema", "quartz-bench-report/1");
    w.kv("id", id_);
    w.kv("title", title_);
    w.kv("generated_by", program_);
    w.key("notes").begin_array();
    for (const std::string& note : notes_) w.value(note);
    w.end_array();
    w.key("sections").begin_array();
    for (const Section& s : sections_) {
      w.begin_object();
      w.kv("name", s.name);
      w.key("rows").begin_array();
      for (const telemetry::JsonRow& row : s.rows) telemetry::write_row(w, row);
      w.end_array();
      w.end_object();
    }
    w.end_array();
    if (metrics_ != nullptr) {
      w.key("metrics");
      metrics_->write_json(w);
    }
    w.key("benchmarks").begin_array();
    for (const Timing& t : timings_) {
      w.begin_object();
      w.kv("name", t.name);
      w.kv("real_time", t.real_time);
      w.kv("cpu_time", t.cpu_time);
      w.kv("time_unit", t.unit);
      w.kv("iterations", t.iterations);
      w.kv("error", t.errored);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    os << '\n';
    std::printf("\nreport: %s\n", path.c_str());
    return path;
  }

 private:
  struct Section {
    std::string name;
    std::vector<telemetry::JsonRow> rows;
  };
  struct Timing {
    std::string name;
    double real_time;
    double cpu_time;
    std::string unit;
    std::int64_t iterations;
    bool errored;
  };

  Section& section_named(const std::string& name) {
    for (Section& s : sections_) {
      if (s.name == name) return s;
    }
    sections_.push_back({name, {}});
    return sections_.back();
  }

  static telemetry::JsonValue cell_value(const std::string& cell) {
    if (!cell.empty()) {
      char* end = nullptr;
      const double v = std::strtod(cell.c_str(), &end);
      if (end != nullptr && *end == '\0') return telemetry::JsonValue(v);
    }
    return telemetry::JsonValue(cell);
  }

  bool enabled_ = true;
  int jobs_ = 1;
  std::string directory_ = ".";
  std::string program_;
  std::string id_;
  std::string title_;
  std::vector<std::string> notes_;
  std::vector<Section> sections_;
  const telemetry::MetricRegistry* metrics_ = nullptr;
  std::vector<Timing> timings_;
};

/// Prints to the console exactly like the default reporter while also
/// capturing each run's timings into the Report.
class TimingCollector : public ::benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      Report::instance().add_benchmark_timing(
          run.benchmark_name(), run.GetAdjustedRealTime(), run.GetAdjustedCPUTime(),
          ::benchmark::GetTimeUnitString(run.time_unit), run.iterations, run.error_occurred);
    }
    ConsoleReporter::ReportRuns(runs);
  }
};

inline void print_note(const std::string& note) { Report::instance().note(note); }

/// Standard main body: report first, micro-benchmarks second, then the
/// BENCH_<id>.json artifact.
#define QUARTZ_BENCH_MAIN(report_fn)                                     \
  int main(int argc, char** argv) {                                      \
    if (!::quartz::bench::Report::instance().parse_args(&argc, argv)) {  \
      return 1;                                                          \
    }                                                                    \
    ::benchmark::Initialize(&argc, argv);                                \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;  \
    report_fn();                                                         \
    ::quartz::bench::TimingCollector collector;                          \
    ::benchmark::RunSpecifiedBenchmarks(&collector);                     \
    ::quartz::bench::Report::instance().write();                         \
    return 0;                                                            \
  }

}  // namespace quartz::bench
