// Figure 17(a-c): average latency per packet vs number of concurrent
// scatter / gather / scatter-gather tasks, senders and receivers drawn
// uniformly across the network.
#include "report.hpp"

#include "common/table.hpp"
#include "sim/experiments.hpp"

namespace {

using namespace quartz;
using namespace quartz::sim;

const std::vector<Fabric> kFabrics = {
    Fabric::kThreeTierTree, Fabric::kJellyfish, Fabric::kQuartzInCore, Fabric::kQuartzInEdge,
    Fabric::kQuartzInEdgeAndCore};

void run_pattern(Pattern pattern, int max_tasks) {
  std::vector<std::string> header{"tasks"};
  for (Fabric f : kFabrics) header.push_back(fabric_name(f));
  Table table(header);

  for (int tasks = 1; tasks <= max_tasks; ++tasks) {
    std::vector<std::string> row{std::to_string(tasks)};
    for (Fabric fabric : kFabrics) {
      TaskExperimentParams params;
      params.pattern = pattern;
      params.tasks = tasks;
      params.duration = milliseconds(10);
      const auto r = run_task_experiment(fabric, {}, params);
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%.2f", r.mean_latency_us);
      row.push_back(buf);
    }
    table.add_row(row);
  }
  std::printf("\n(%s) mean latency per packet (us)\n%s", pattern_name(pattern).c_str(),
              table.to_text().c_str());
}

void report() {
  bench::print_banner("Figure 17", "Average latency, global traffic patterns");
  run_pattern(Pattern::kScatter, 8);
  run_pattern(Pattern::kGather, 8);
  run_pattern(Pattern::kScatterGather, 4);
  bench::print_note(
      "paper: the three-tier tree is highest and rises with task count "
      "(its CCS core dominates); quartz in core removes >3 us; quartz in "
      "edge and core roughly halves the tree's latency; jellyfish is low "
      "at this small scale");
}

void BM_ScatterExperiment(benchmark::State& state) {
  for (auto _ : state) {
    TaskExperimentParams params;
    params.tasks = static_cast<int>(state.range(0));
    params.duration = milliseconds(2);
    benchmark::DoNotOptimize(run_task_experiment(Fabric::kThreeTierTree, {}, params));
  }
}
BENCHMARK(BM_ScatterExperiment)->Arg(1)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace

QUARTZ_BENCH_MAIN(report)
