// Figure 17(a-c): average latency per packet vs number of concurrent
// scatter / gather / scatter-gather tasks, senders and receivers drawn
// uniformly across the network.
//
// Beyond the paper's mean-latency series, the traced run decomposes
// where each fabric's latency comes from (Table 2's budget measured in
// vivo): queueing + serialization + switching + propagation + host,
// which sum exactly to the measured end-to-end mean.
#include "report.hpp"

#include <cmath>

#include "common/table.hpp"
#include "sim/experiments.hpp"
#include "sim/sweep.hpp"

namespace {

using namespace quartz;
using namespace quartz::sim;

const std::vector<Fabric> kFabrics = {
    Fabric::kThreeTierTree, Fabric::kJellyfish, Fabric::kQuartzInCore, Fabric::kQuartzInEdge,
    Fabric::kQuartzInEdgeAndCore};

/// Every sweep in this binary shards its (tasks x fabric) grid across
/// --jobs worker threads; each point runs on its own engine, so the
/// table is byte-identical for every jobs value.
SweepRunner sweep_runner() { return SweepRunner({bench::Report::instance().jobs(), 7}); }

void run_pattern(Pattern pattern, int max_tasks, const std::string& section) {
  std::vector<std::string> header{"tasks"};
  for (Fabric f : kFabrics) header.push_back(fabric_name(f));
  Table table(header);

  struct Point {
    int tasks;
    Fabric fabric;
  };
  std::vector<Point> points;
  for (int tasks = 1; tasks <= max_tasks; ++tasks) {
    for (Fabric fabric : kFabrics) points.push_back({tasks, fabric});
  }
  const std::vector<double> means = sweep_runner().run(points, [pattern](const Point& p) {
    TaskExperimentParams params;
    params.pattern = pattern;
    params.tasks = p.tasks;
    params.duration = milliseconds(10);
    return run_task_experiment(p.fabric, {}, params).mean_latency_us;
  });

  std::size_t at = 0;
  for (int tasks = 1; tasks <= max_tasks; ++tasks) {
    std::vector<std::string> row{std::to_string(tasks)};
    for (std::size_t f = 0; f < kFabrics.size(); ++f) {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%.2f", means[at++]);
      row.push_back(buf);
    }
    table.add_row(row);
  }
  std::printf("\n(%s) mean latency per packet (us)\n", pattern_name(pattern).c_str());
  bench::Report::instance().add_table(section, table);
}

void run_decomposition() {
  std::printf("\nlatency decomposition, 4 scatter tasks (mean us per packet)\n");
  Table table({"fabric", "host", "queueing", "serialization", "switching", "propagation",
               "sum", "measured mean"});
  const std::vector<TaskExperimentResult> results =
      sweep_runner().run(kFabrics, [](Fabric fabric) {
        TaskExperimentParams params;
        params.pattern = Pattern::kScatter;
        params.tasks = 4;
        params.duration = milliseconds(10);
        params.telemetry.trace = true;
        return run_task_experiment(fabric, {}, params);
      });
  for (std::size_t i = 0; i < kFabrics.size(); ++i) {
    const Fabric fabric = kFabrics[i];
    const TaskExperimentResult& r = results[i];
    const auto& d = r.decomposition;
    char cells[7][24];
    std::snprintf(cells[0], sizeof(cells[0]), "%.3f", d.host_us);
    std::snprintf(cells[1], sizeof(cells[1]), "%.3f", d.queueing_us);
    std::snprintf(cells[2], sizeof(cells[2]), "%.3f", d.serialization_us);
    std::snprintf(cells[3], sizeof(cells[3]), "%.3f", d.switching_us);
    std::snprintf(cells[4], sizeof(cells[4]), "%.3f", d.propagation_us);
    std::snprintf(cells[5], sizeof(cells[5]), "%.3f", d.component_sum_us());
    std::snprintf(cells[6], sizeof(cells[6]), "%.3f", r.mean_latency_us);
    table.add_row({fabric_name(fabric), cells[0], cells[1], cells[2], cells[3], cells[4],
                   cells[5], cells[6]});

    bench::Report::instance().add_decomposition("latency_decomposition", fabric_name(fabric), d);
    for (const auto& [task, per_task] : r.task_decompositions) {
      bench::Report::instance().add_decomposition(
          "latency_decomposition_per_task",
          fabric_name(fabric) + " task " + std::to_string(task), per_task);
    }
    const double err = std::abs(d.component_sum_us() - r.mean_latency_us);
    if (r.mean_latency_us > 0 && err > 0.01 * r.mean_latency_us) {
      std::printf("WARNING: %s decomposition off by %.3f us (>1%%)\n",
                  fabric_name(fabric).c_str(), err);
    }
  }
  bench::Report::instance().add_table("latency_decomposition_table", table);
}

void report() {
  bench::Report::instance().open("fig17", "Average latency, global traffic patterns");
  run_pattern(Pattern::kScatter, 8, "scatter_mean_latency_us");
  run_pattern(Pattern::kGather, 8, "gather_mean_latency_us");
  run_pattern(Pattern::kScatterGather, 4, "scatter_gather_mean_latency_us");
  run_decomposition();
  bench::print_note(
      "paper: the three-tier tree is highest and rises with task count "
      "(its CCS core dominates); quartz in core removes >3 us; quartz in "
      "edge and core roughly halves the tree's latency; jellyfish is low "
      "at this small scale");
  bench::print_note(
      "decomposition: components are critical-path attributions, so "
      "host+queueing+serialization+switching+propagation equals the "
      "measured mean exactly; the tree pays switching (CCS hops), quartz "
      "pays propagation (ring fiber) — the paper's Table 2 trade");
}

void BM_ScatterExperiment(benchmark::State& state) {
  for (auto _ : state) {
    TaskExperimentParams params;
    params.tasks = static_cast<int>(state.range(0));
    params.duration = milliseconds(2);
    benchmark::DoNotOptimize(run_task_experiment(Fabric::kThreeTierTree, {}, params));
  }
}
BENCHMARK(BM_ScatterExperiment)->Arg(1)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_ScatterExperimentTraced(benchmark::State& state) {
  for (auto _ : state) {
    TaskExperimentParams params;
    params.tasks = static_cast<int>(state.range(0));
    params.duration = milliseconds(2);
    params.telemetry.trace = true;
    benchmark::DoNotOptimize(run_task_experiment(Fabric::kThreeTierTree, {}, params));
  }
}
BENCHMARK(BM_ScatterExperimentTraced)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace

QUARTZ_BENCH_MAIN(report)
