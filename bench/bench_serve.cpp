// Overload duel for the serve stack: closed-loop admission, retry
// budgets and live re-grooming vs an undefended open-loop baseline.
//
// Open-loop arrivals do not slow down when the fabric does.  A scripted
// demand shift concentrates 95% of the stream on one 1 Gb/s lightpath
// (~312.5k req/s of 400-byte requests), so the service's goodput knee
// sits near 329k arrivals/s.  Past it, the undefended loop queues to
// death — every request waits out the 10 ms queue cap, blows its 2 ms
// deadline, and timeout retries amplify the overload.  The defended
// loop probes its concurrency limit to the measured knee, sheds the
// excess at the door, and keeps the tail inside the deadline budget.
//
// Three duels, all on identical replayed arrival traces:
//   load_sweep      controlled vs uncontrolled across 0.25x..2x knee
//   regroom_duel    mid-run hot-spot: react with a make-before-break
//                   regroom (detour pins spread the hot pair) vs hold
//                   the groomed-for-uniform mesh
//   retry_budget    gray blackhole: budgeted vs unbudgeted retries
//
// The QUARTZ_CHECK guards (active under NDEBUG) make the artifact
// self-validating: the controller must hold >= 90% of its knee goodput
// at 2x knee while the baseline collapses, the regroom must win, and
// the budget must bound amplification.
#include "report.hpp"

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/table.hpp"
#include "serve/serve_loop.hpp"
#include "sim/sweep.hpp"
#include "telemetry/metrics.hpp"

namespace {

using namespace quartz;

constexpr double kHotFraction = 0.95;
/// One 1 Gb/s lightpath forwards 400-byte requests at 312.5k req/s;
/// with 95% of arrivals on a single switch pair the whole service knees
/// near 329k arrivals/s.
constexpr double kKneeArrivals = 312'500.0 / kHotFraction;

serve::ServeConfig base_config(double arrivals_per_sec) {
  serve::ServeConfig config;
  config.ring.switches = 4;
  config.ring.hosts_per_switch = 2;
  config.ring.mesh_rate = gigabits_per_second(1);
  config.ring.links.host_rate = gigabits_per_second(1);
  config.duration = milliseconds(10);
  config.drain = milliseconds(8);
  config.arrivals_per_sec = arrivals_per_sec;
  config.reply_size = bytes(100);  // keep the request direction the bottleneck
  config.timeout = microseconds(1500);
  config.max_retries = 2;
  config.classes = {{"gold", 0.2, milliseconds(2)},
                    {"silver", 0.3, milliseconds(2)},
                    {"bronze", 0.5, milliseconds(2)}};
  config.slo.window = microseconds(500);
  config.slo.budget_p99_us = 1200.0;
  config.slo.budget_p999_us = 1800.0;
  config.shifts = {{0, 0, 1, kHotFraction}};
  config.reconfigure_on_shift = false;
  config.seed = 7;
  return config;
}

struct DuelPoint {
  double offered = 0.0;
  serve::ServeReport controlled;
  serve::ServeReport uncontrolled;
};

/// Run the defended loop at `offered` arrivals/s, then replay its exact
/// arrival trace against the undefended one: same requests, same
/// instants, only the defenses differ.
DuelPoint run_duel_point(double offered) {
  DuelPoint point;
  point.offered = offered;

  serve::ServeLoop controlled(base_config(offered));
  point.controlled = controlled.run();

  serve::ServeConfig raw = base_config(offered);
  raw.use_admission = false;
  raw.use_retry_budget = false;
  const std::vector<serve::TraceEvent> trace = controlled.trace();
  raw.replay = &trace;
  serve::ServeLoop uncontrolled(raw);
  point.uncontrolled = uncontrolled.run();

  QUARTZ_CHECK(point.controlled.conservation_ok && point.uncontrolled.conservation_ok,
               "every serve run must conserve requests");
  QUARTZ_CHECK(point.controlled.arrivals == point.uncontrolled.arrivals,
               "the replayed duel must see identical arrivals");
  return point;
}

void add_sweep_row(const char* mode, double offered, const serve::ServeReport& r) {
  bench::Report::instance().add_row(
      "load_sweep",
      {{"offered_per_sec", offered},
       {"mode", std::string(mode)},
       {"arrivals", static_cast<std::int64_t>(r.arrivals)},
       {"shed", static_cast<std::int64_t>(r.shed_class + r.shed_limit)},
       {"in_deadline", static_cast<std::int64_t>(r.in_deadline)},
       {"goodput_per_sec", r.goodput_per_sec},
       {"p50_us", r.p50_us},
       {"p99_us", r.p99_us},
       {"p999_us", r.p999_us},
       {"retries", static_cast<std::int64_t>(r.retries)},
       {"retry_amplification", r.retry_amplification},
       {"final_limit", static_cast<std::int64_t>(r.final_limit)},
       {"knee_goodput", r.knee_goodput}});
}

void report_load_sweep() {
  const std::vector<double> loads = {0.25 * kKneeArrivals, 0.5 * kKneeArrivals,
                                     1.0 * kKneeArrivals, 1.5 * kKneeArrivals,
                                     2.0 * kKneeArrivals};
  sim::SweepRunner runner({bench::Report::instance().jobs(), 7});
  const std::vector<DuelPoint> points =
      runner.run(loads, [](double offered) { return run_duel_point(offered); });

  std::printf("admission duel: 95%% of arrivals on one 1 Gb/s lightpath "
              "(analytic knee ~%.0f req/s)\n",
              kKneeArrivals);
  Table table({"offered (req/s)", "x knee", "goodput ctl", "goodput raw", "p99 ctl (us)",
               "p99 raw (us)", "p99.9 ctl (us)", "shed ctl", "limit"});
  for (const DuelPoint& p : points) {
    char knee[16], gc[24], gr[24], p99c[16], p99r[16], p999c[16];
    std::snprintf(knee, sizeof(knee), "%.2f", p.offered / kKneeArrivals);
    std::snprintf(gc, sizeof(gc), "%.0f", p.controlled.goodput_per_sec);
    std::snprintf(gr, sizeof(gr), "%.0f", p.uncontrolled.goodput_per_sec);
    std::snprintf(p99c, sizeof(p99c), "%.0f", p.controlled.p99_us);
    std::snprintf(p99r, sizeof(p99r), "%.0f", p.uncontrolled.p99_us);
    std::snprintf(p999c, sizeof(p999c), "%.0f", p.controlled.p999_us);
    table.add_row({std::to_string(static_cast<long long>(p.offered)), knee, gc, gr, p99c, p99r,
                   p999c,
                   std::to_string(p.controlled.shed_class + p.controlled.shed_limit),
                   std::to_string(p.controlled.final_limit)});
    add_sweep_row("controlled", p.offered, p.controlled);
    add_sweep_row("uncontrolled", p.offered, p.uncontrolled);
  }
  std::printf("%s\n", table.to_text().c_str());

  const DuelPoint& knee = points[2];
  const DuelPoint& twice = points.back();
  // The controller rides the knee: past it, goodput must stay within
  // 10% of the knee's while the tail holds the p99.9 budget.  The
  // undefended baseline queues to death on the same arrivals.
  QUARTZ_CHECK(twice.controlled.goodput_per_sec >= 0.9 * knee.controlled.goodput_per_sec,
               "controlled goodput at 2x knee must hold >= 90% of knee goodput");
  QUARTZ_CHECK(twice.controlled.p999_us <= 1800.0,
               "controlled p99.9 at 2x knee must stay inside the SLO budget");
  QUARTZ_CHECK(twice.controlled.goodput_per_sec > 1.5 * twice.uncontrolled.goodput_per_sec,
               "the controller must strictly out-deliver the uncontrolled "
               "baseline past the knee");
  QUARTZ_CHECK(twice.uncontrolled.goodput_per_sec < 0.5 * knee.uncontrolled.goodput_per_sec,
               "the uncontrolled baseline must collapse past the knee");
  std::printf("check: at 2.0x knee the controller held %.0f req/s goodput "
              "(%.0f%% of knee, p99.9 %.0f us) vs %.0f req/s uncontrolled\n",
              twice.controlled.goodput_per_sec,
              100.0 * twice.controlled.goodput_per_sec / knee.controlled.goodput_per_sec,
              twice.controlled.p999_us, twice.uncontrolled.goodput_per_sec);
  bench::Report::instance().add_row(
      "duel_summary",
      {{"knee_arrivals_per_sec", kKneeArrivals},
       {"controlled_goodput_at_knee", knee.controlled.goodput_per_sec},
       {"controlled_goodput_at_2x", twice.controlled.goodput_per_sec},
       {"uncontrolled_goodput_at_knee", knee.uncontrolled.goodput_per_sec},
       {"uncontrolled_goodput_at_2x", twice.uncontrolled.goodput_per_sec},
       {"controlled_p999_at_2x_us", twice.controlled.p999_us},
       {"controlled_retention", twice.controlled.goodput_per_sec /
                                    knee.controlled.goodput_per_sec}});
  bench::print_note(
      "the admission controller probes its concurrency limit to the measured "
      "goodput knee and sheds the excess at the door, so offered load past the "
      "knee costs almost nothing; the open-loop baseline queues every excess "
      "request until the deadline is unmeetable");
}

/// Mid-run hot spot: after 2 ms, 90% of arrivals target one switch
/// pair.  Reacting with a make-before-break regroom (detour pins spread
/// the four hot host pairs across the two intermediate switches) keeps
/// the demand under per-lightpath capacity; holding the uniform
/// grooming overloads the direct lightpath and sheds instead.
void report_regroom_duel() {
  const auto run_once = [](bool regroom) {
    serve::ServeConfig config = base_config(450'000.0);
    config.shifts = {{milliseconds(2), 0, 1, 0.9}};
    config.reconfigure_on_shift = regroom;
    config.reconfigure_delay = microseconds(200);
    serve::ServeLoop loop(config);
    return loop.run();
  };
  sim::SweepRunner runner({bench::Report::instance().jobs(), 7});
  const std::vector<bool> modes{false, true};
  const std::vector<serve::ServeReport> duel =
      runner.run(modes, [&](bool regroom) { return run_once(regroom); });
  const serve::ServeReport& held = duel[0];
  const serve::ServeReport& regroomed = duel[1];

  std::printf("live reconfiguration duel: 90%% hot-pair shift at 2 ms, 450k req/s offered\n");
  Table table({"grooming", "in deadline", "goodput (req/s)", "shed", "p99 (us)", "pins"});
  char gh[24], gr[24], ph[16], pr[16];
  std::snprintf(gh, sizeof(gh), "%.0f", held.goodput_per_sec);
  std::snprintf(gr, sizeof(gr), "%.0f", regroomed.goodput_per_sec);
  std::snprintf(ph, sizeof(ph), "%.0f", held.p99_us);
  std::snprintf(pr, sizeof(pr), "%.0f", regroomed.p99_us);
  table.add_row({"held (groomed for uniform)", std::to_string(held.in_deadline), gh,
                 std::to_string(held.shed_class + held.shed_limit), ph, "0"});
  table.add_row({"regroomed on shift", std::to_string(regroomed.in_deadline), gr,
                 std::to_string(regroomed.shed_class + regroomed.shed_limit), pr,
                 std::to_string(regroomed.pins_applied)});
  std::printf("%s\n", table.to_text().c_str());

  QUARTZ_CHECK(held.conservation_ok && regroomed.conservation_ok,
               "the regroom duel must conserve requests");
  QUARTZ_CHECK(regroomed.reconfigurations == 1 && regroomed.pins_applied > 0,
               "the regroomed run must actually have re-groomed");
  QUARTZ_CHECK(regroomed.in_deadline > held.in_deadline,
               "spreading the hot pair over detour pins must beat holding the "
               "uniform grooming");
  std::printf("check: regroom delivered %llu in-deadline vs %llu held "
              "(%llu pins committed make-before-break)\n",
              static_cast<unsigned long long>(regroomed.in_deadline),
              static_cast<unsigned long long>(held.in_deadline),
              static_cast<unsigned long long>(regroomed.pins_applied));
  for (int i = 0; i < 2; ++i) {
    const serve::ServeReport& r = duel[i];
    bench::Report::instance().add_row(
        "regroom_duel",
        {{"mode", std::string(i == 0 ? "held" : "regroomed")},
         {"in_deadline", static_cast<std::int64_t>(r.in_deadline)},
         {"goodput_per_sec", r.goodput_per_sec},
         {"shed", static_cast<std::int64_t>(r.shed_class + r.shed_limit)},
         {"p99_us", r.p99_us},
         {"pins_applied", static_cast<std::int64_t>(r.pins_applied)},
         {"reconfigurations", static_cast<std::int64_t>(r.reconfigurations)}});
  }
  bench::print_note(
      "the regroom rides the oracle's epoch bump: staged pins verify both "
      "detour legs before commit, the FIB invalidates lazily, and in-flight "
      "packets never see a half-applied plan");
}

/// Gray blackhole: one mesh lightpath silently eats every packet (the
/// failure view never learns), so only timeouts notice.  The retry
/// budget caps how much load those timeouts may add back.
void report_retry_budget_duel() {
  const auto run_once = [](bool budgeted) {
    serve::ServeConfig config = base_config(150'000.0);
    config.shifts.clear();  // uniform traffic: every pair crosses the victim sometimes
    config.use_retry_budget = budgeted;
    config.retry_budget.ratio = 0.05;
    config.retry_budget.burst = 5.0;
    config.max_retries = 3;
    serve::ServeLoop loop(config);
    const auto& ring = loop.topology().quartz_rings.front();
    for (const auto& link : loop.topology().graph.links()) {
      if (link.wdm_channel < 0) continue;
      if ((link.a == ring[0] && link.b == ring[1]) || (link.a == ring[1] && link.b == ring[0])) {
        loop.network().set_link_loss(link.id, 1.0);
        break;
      }
    }
    return loop.run();
  };
  sim::SweepRunner runner({bench::Report::instance().jobs(), 7});
  const std::vector<bool> modes{false, true};
  const std::vector<serve::ServeReport> duel =
      runner.run(modes, [&](bool budgeted) { return run_once(budgeted); });
  const serve::ServeReport& unbudgeted = duel[0];
  const serve::ServeReport& budgeted = duel[1];

  std::printf("retry budget duel: one mesh lightpath silently blackholed for the whole run\n");
  Table table({"retries", "amplification", "budget denied", "hopeless dropped", "failed",
               "in deadline"});
  char au[16], ab[16];
  std::snprintf(au, sizeof(au), "%.3f", unbudgeted.retry_amplification);
  std::snprintf(ab, sizeof(ab), "%.3f", budgeted.retry_amplification);
  table.add_row({std::to_string(unbudgeted.retries), au, "-",
                 std::to_string(unbudgeted.hopeless_dropped),
                 std::to_string(unbudgeted.failed), std::to_string(unbudgeted.in_deadline)});
  table.add_row({std::to_string(budgeted.retries), ab,
                 std::to_string(budgeted.budget_denied),
                 std::to_string(budgeted.hopeless_dropped), std::to_string(budgeted.failed),
                 std::to_string(budgeted.in_deadline)});
  std::printf("%s\n", table.to_text().c_str());

  QUARTZ_CHECK(unbudgeted.conservation_ok && budgeted.conservation_ok,
               "the budget duel must conserve requests");
  QUARTZ_CHECK(budgeted.retry_amplification < unbudgeted.retry_amplification,
               "the retry budget must reduce send amplification under a blackhole");
  QUARTZ_CHECK(budgeted.retry_amplification <= 1.3,
               "budgeted amplification must stay near 1 (ratio 0.05)");
  QUARTZ_CHECK(budgeted.budget_denied + budgeted.hopeless_dropped > 0,
               "the win must come from the budget, not luck");
  std::printf("check: amplification %.3f budgeted vs %.3f unbudgeted "
              "(%llu retries denied, %llu hopeless)\n",
              budgeted.retry_amplification, unbudgeted.retry_amplification,
              static_cast<unsigned long long>(budgeted.budget_denied),
              static_cast<unsigned long long>(budgeted.hopeless_dropped));
  for (int i = 0; i < 2; ++i) {
    const serve::ServeReport& r = duel[i];
    bench::Report::instance().add_row(
        "retry_budget_duel",
        {{"mode", std::string(i == 0 ? "unbudgeted" : "budgeted")},
         {"retries", static_cast<std::int64_t>(r.retries)},
         {"retry_amplification", r.retry_amplification},
         {"budget_denied", static_cast<std::int64_t>(r.budget_denied)},
         {"hopeless_dropped", static_cast<std::int64_t>(r.hopeless_dropped)},
         {"failed", static_cast<std::int64_t>(r.failed)},
         {"in_deadline", static_cast<std::int64_t>(r.in_deadline)}});
  }
  bench::print_note(
      "deadline propagation drops retries that cannot finish in time and the "
      "token bucket caps the rest, so a blackholed lightpath cannot amplify "
      "itself into a second overload");
}

void report_all() {
  bench::Report::instance().open(
      "serve", "overload-safe service mode: admission, retry budgets, live regroom");
  report_load_sweep();
  report_regroom_duel();
  report_retry_budget_duel();

  // Attach the defended knee run's full metric registry to the
  // artifact (serve counters + SLO gauges + latency histogram).
  static telemetry::MetricRegistry registry;
  serve::ServeLoop loop(base_config(kKneeArrivals));
  (void)loop.run();
  loop.publish_metrics(registry, "serve");
  bench::Report::instance().set_metrics(&registry);
}

/// Pure decision cost of the admission controller's hot path.
void BM_AdmissionDecision(benchmark::State& state) {
  serve::AdmissionController admission({}, 3);
  int inflight = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(admission.admit(inflight % 3, inflight % 128));
    ++inflight;
  }
}
BENCHMARK(BM_AdmissionDecision);

/// One closed SLO window through the probe state machine.
void BM_AdmissionWindow(benchmark::State& state) {
  serve::AdmissionController admission({}, 3);
  telemetry::SloWindow window;
  window.completed = 500;
  window.in_deadline = 490;
  window.p99_us = 900.0;
  window.goodput_per_sec = 250'000.0;
  for (auto _ : state) {
    window.goodput_per_sec += 1.0;  // keep the probe moving
    admission.on_window(window);
    benchmark::DoNotOptimize(admission.limit());
  }
}
BENCHMARK(BM_AdmissionWindow);

/// End-to-end cost of a short defended serve run (the whole stack:
/// arrivals, admission, SLO windows, timeouts, drain).
void BM_ServeLoopShortRun(benchmark::State& state) {
  for (auto _ : state) {
    serve::ServeConfig config = base_config(100'000.0);
    config.duration = milliseconds(2);
    config.drain = milliseconds(6);
    config.shifts.clear();
    serve::ServeLoop loop(config);
    benchmark::DoNotOptimize(loop.run().completed);
  }
}
BENCHMARK(BM_ServeLoopShortRun)->Unit(benchmark::kMillisecond);

}  // namespace

QUARTZ_BENCH_MAIN(report_all)
