// Routing microbenchmark: the compiled FIB against per-packet oracle
// dispatch on a Quartz ring, walking real packet journeys hop by hop
// (host -> ToR -> mesh -> host port).  Measures routing decisions/sec
// and allocations/decision via a counting operator-new hook, healthy
// and under failure churn, and enforces the acceptance bar: zero
// steady-state allocations on the compiled path and a real speedup.
#include "report.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <new>
#include <vector>

#include "common/check.hpp"
#include "routing/ecmp.hpp"
#include "routing/failure_view.hpp"
#include "routing/fib.hpp"
#include "routing/oracle.hpp"
#include "topo/builders.hpp"

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};

std::uint64_t alloc_count() { return g_alloc_count.load(std::memory_order_relaxed); }
}  // namespace

// Counting allocator hook: every heap allocation in this binary bumps
// the counter, so a region's allocation cost is a simple delta.
void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  const std::size_t al = std::max(static_cast<std::size_t>(align), sizeof(void*));
  if (posix_memalign(&p, al, size ? size : 1) == 0) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }

namespace {

using namespace quartz;

// --- the workload ----------------------------------------------------------
//
// A pool of flows over an 8x8 Quartz ring (64 hosts, every pair of the
// 8 ToRs one lightpath).  Each "packet" is walked from source host to
// destination host, asking the routing plane for the next link at
// every node it visits — the exact question Network::transmit asks —
// so decisions/sec here is the per-packet routing cost a simulation
// pays.  Both sides walk the identical flow sequence and must produce
// the identical link checksum.

struct Flow {
  topo::NodeId src;
  topo::NodeId dst;
  std::uint64_t hash;
};

std::vector<Flow> make_flows(const topo::BuiltTopology& topo, std::size_t count) {
  const auto& hosts = topo.hosts;
  std::vector<Flow> flows;
  flows.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t h = routing::mix_hash(i + 1);
    const std::size_t a = h % hosts.size();
    std::size_t b = (h >> 24) % hosts.size();
    if (b == a) b = (b + 1) % hosts.size();
    flows.push_back({hosts[a], hosts[b], h});
  }
  return flows;
}

struct WalkTotals {
  std::uint64_t decisions = 0;
  std::uint64_t checksum = 0;
};

template <typename Decide>
void walk_flow(const topo::Graph& graph, const Flow& flow, Decide&& decide, WalkTotals& totals) {
  routing::FlowKey key;
  key.src = flow.src;
  key.dst = flow.dst;
  key.flow_hash = flow.hash;
  topo::NodeId node = flow.src;
  for (int hop = 0; hop < 16 && node != flow.dst; ++hop) {
    const topo::LinkId link = decide(node, key);
    ++totals.decisions;
    totals.checksum += static_cast<std::uint64_t>(link) * static_cast<std::uint64_t>(hop + 1);
    node = graph.link(link).other(node);
  }
}

template <typename Decide>
WalkTotals walk_rounds(const topo::Graph& graph, const std::vector<Flow>& flows, int rounds,
                       Decide&& decide) {
  WalkTotals totals;
  for (int round = 0; round < rounds; ++round) {
    for (const Flow& flow : flows) walk_flow(graph, flow, decide, totals);
  }
  return totals;
}

/// Same walks, but every `toggle_every` flows one mesh lightpath flips
/// dead/alive — each flip bumps the failure epoch and invalidates the
/// whole FIB, so this measures how fast the compiled plane re-converges
/// (lazy recompiles amortized over the packets between flips).
template <typename Decide>
WalkTotals walk_with_churn(const topo::Graph& graph, const std::vector<Flow>& flows, int rounds,
                           routing::FailureView& view, const std::vector<topo::LinkId>& mesh,
                           std::size_t toggle_every, Decide&& decide) {
  WalkTotals totals;
  std::size_t since_toggle = 0;
  std::size_t toggles = 0;
  for (int round = 0; round < rounds; ++round) {
    for (const Flow& flow : flows) {
      if (++since_toggle == toggle_every) {
        since_toggle = 0;
        const topo::LinkId victim = mesh[toggles % mesh.size()];
        view.set_dead(victim, toggles % (2 * mesh.size()) < mesh.size());
        ++toggles;
      }
      walk_flow(graph, flow, decide, totals);
    }
  }
  // Leave every link alive again so phases are independent.
  for (const topo::LinkId link : mesh) view.set_dead(link, false);
  return totals;
}

struct RunStats {
  std::uint64_t decisions = 0;
  std::uint64_t allocs = 0;
  double seconds = 0;
  double decisions_per_sec() const { return seconds > 0 ? decisions / seconds : 0; }
  double allocs_per_decision() const {
    return decisions > 0 ? static_cast<double>(allocs) / decisions : 0;
  }
};

template <typename Fn>
RunStats timed(Fn&& fn) {
  RunStats stats;
  const std::uint64_t allocs_before = alloc_count();
  const auto start = std::chrono::steady_clock::now();
  const WalkTotals totals = fn();
  const auto stop = std::chrono::steady_clock::now();
  stats.decisions = totals.decisions;
  stats.allocs = alloc_count() - allocs_before;
  stats.seconds = std::chrono::duration<double>(stop - start).count();
  return stats;
}

constexpr std::size_t kFlowCount = 8192;
constexpr int kRounds = 40;
constexpr int kChurnRounds = 10;
constexpr std::size_t kToggleEvery = 4096;  ///< decisions of amortization per epoch bump

void report() {
  bench::Report::instance().open(
      "routing", "Compiled routing FIB vs per-packet oracle dispatch on a Quartz ring");

  topo::QuartzRingParams params;
  params.switches = 8;
  params.hosts_per_switch = 8;
  const topo::BuiltTopology topo = topo::quartz_ring(params);
  routing::EcmpRouting routing(topo.graph);
  const std::vector<Flow> flows = make_flows(topo, kFlowCount);
  std::vector<topo::LinkId> mesh;
  for (const auto& link : topo.graph.links()) {
    if (topo.graph.is_switch(link.a) && topo.graph.is_switch(link.b)) mesh.push_back(link.id);
  }

  // The legacy baseline is the virtual next_link path with a
  // FailureView attached — what every simulation ran before the FIB:
  // per decision it filters the equal-cost span into a fresh vector.
  routing::EcmpOracle oracle(routing);
  routing::FailureView view(topo.graph.link_count());
  oracle.attach_failure_view(&view);
  routing::Fib fib(routing, oracle);

  const auto legacy_decide = [&](topo::NodeId node, routing::FlowKey& key) {
    return oracle.next_link(node, key);
  };
  const auto fib_decide = [&](topo::NodeId node, routing::FlowKey& key) {
    return fib.next_link(node, key);
  };

  // -- healthy steady state --------------------------------------------------
  const WalkTotals legacy_check = walk_rounds(topo.graph, flows, 1, legacy_decide);
  const RunStats legacy =
      timed([&] { return walk_rounds(topo.graph, flows, kRounds, legacy_decide); });

  // Warm the FIB (one round compiles every (node, group) this workload
  // touches), then the measured run must not allocate at all.
  const WalkTotals fib_check = walk_rounds(topo.graph, flows, 1, fib_decide);
  QUARTZ_CHECK(fib_check.checksum == legacy_check.checksum &&
                   fib_check.decisions == legacy_check.decisions,
               "compiled FIB must pick the same links as the oracle");
  const RunStats compiled =
      timed([&] { return walk_rounds(topo.graph, flows, kRounds, fib_decide); });

  // -- failure churn ---------------------------------------------------------
  const RunStats legacy_churn = timed([&] {
    return walk_with_churn(topo.graph, flows, kChurnRounds, view, mesh, kToggleEvery,
                           legacy_decide);
  });
  fib.reset_stats();
  const RunStats fib_churn = timed([&] {
    return walk_with_churn(topo.graph, flows, kChurnRounds, view, mesh, kToggleEvery, fib_decide);
  });
  const routing::Fib::Stats churn_stats = fib.stats();

  const double speedup = compiled.decisions_per_sec() / legacy.decisions_per_sec();
  const double churn_speedup = fib_churn.decisions_per_sec() / legacy_churn.decisions_per_sec();

  Table table({"routing plane", "decisions", "decisions/sec (M)", "allocations",
               "allocs/decision"});
  for (const auto& [name, stats] :
       {std::pair<const char*, const RunStats&>{"oracle dispatch (legacy), healthy", legacy},
        {"compiled FIB, healthy", compiled},
        {"oracle dispatch (legacy), churn", legacy_churn},
        {"compiled FIB, churn", fib_churn}}) {
    char dps[16], apd[16];
    std::snprintf(dps, sizeof(dps), "%.2f", stats.decisions_per_sec() / 1e6);
    std::snprintf(apd, sizeof(apd), "%.3f", stats.allocs_per_decision());
    table.add_row(
        {name, std::to_string(stats.decisions), dps, std::to_string(stats.allocs), apd});
  }
  bench::Report::instance().add_table("routing_microbench", table);
  std::printf("healthy speedup: %.2fx; churn speedup: %.2fx; FIB steady-state allocations: %llu; "
              "churn invalidations: %llu (hits %llu / misses %llu)\n",
              speedup, churn_speedup, static_cast<unsigned long long>(compiled.allocs),
              static_cast<unsigned long long>(churn_stats.invalidations),
              static_cast<unsigned long long>(churn_stats.hits),
              static_cast<unsigned long long>(churn_stats.misses));
  bench::Report::instance().add_row(
      "routing_summary",
      {{"legacy_decisions_per_sec", legacy.decisions_per_sec()},
       {"fib_decisions_per_sec", compiled.decisions_per_sec()},
       {"speedup", speedup},
       {"churn_speedup", churn_speedup},
       {"legacy_allocs_per_decision", legacy.allocs_per_decision()},
       {"fib_steady_state_allocs", static_cast<std::int64_t>(compiled.allocs)},
       {"fib_allocs_per_decision", compiled.allocs_per_decision()},
       {"churn_invalidations", static_cast<std::int64_t>(churn_stats.invalidations)},
       {"decisions_per_run", static_cast<std::int64_t>(compiled.decisions)}});

  QUARTZ_CHECK(compiled.allocs == 0,
               "the compiled FIB must route the warm workload with zero allocations");
#ifdef NDEBUG
  constexpr double kMinSpeedup = 2.0;
#else
  constexpr double kMinSpeedup = 0.8;  // unoptimized builds flatten the gap
#endif
  QUARTZ_CHECK(speedup >= kMinSpeedup, "compiled FIB speedup is below the acceptance bar");
  std::printf("check: speedup %.2fx >= %.1fx, steady-state allocations == 0\n", speedup,
              kMinSpeedup);
  bench::print_note(
      "the legacy path virtual-dispatches into the oracle and filters the "
      "equal-cost span through a freshly allocated vector on every "
      "decision; the compiled FIB answers from a dense per-(node, "
      "destination-group) entry — two array loads and a hash mix — and "
      "epoch invalidation keeps it exact under failure churn by lazily "
      "recompiling only the entries traffic actually touches");
}

void BM_CompiledFib(benchmark::State& state) {
  topo::QuartzRingParams params;
  params.switches = 8;
  params.hosts_per_switch = 8;
  const topo::BuiltTopology topo = topo::quartz_ring(params);
  routing::EcmpRouting routing(topo.graph);
  routing::EcmpOracle oracle(routing);
  routing::FailureView view(topo.graph.link_count());
  oracle.attach_failure_view(&view);
  routing::Fib fib(routing, oracle);
  const std::vector<Flow> flows = make_flows(topo, kFlowCount);
  const auto decide = [&](topo::NodeId node, routing::FlowKey& key) {
    return fib.next_link(node, key);
  };
  walk_rounds(topo.graph, flows, 1, decide);  // compile outside the timed loop
  for (auto _ : state) {
    WalkTotals totals = walk_rounds(topo.graph, flows, 1, decide);
    benchmark::DoNotOptimize(totals.checksum);
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(totals.decisions));
  }
}
BENCHMARK(BM_CompiledFib)->Unit(benchmark::kMillisecond);

void BM_LegacyOracle(benchmark::State& state) {
  topo::QuartzRingParams params;
  params.switches = 8;
  params.hosts_per_switch = 8;
  const topo::BuiltTopology topo = topo::quartz_ring(params);
  routing::EcmpRouting routing(topo.graph);
  routing::EcmpOracle oracle(routing);
  routing::FailureView view(topo.graph.link_count());
  oracle.attach_failure_view(&view);
  const std::vector<Flow> flows = make_flows(topo, kFlowCount);
  const auto decide = [&](topo::NodeId node, routing::FlowKey& key) {
    return oracle.next_link(node, key);
  };
  for (auto _ : state) {
    WalkTotals totals = walk_rounds(topo.graph, flows, 1, decide);
    benchmark::DoNotOptimize(totals.checksum);
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(totals.decisions));
  }
}
BENCHMARK(BM_LegacyOracle)->Unit(benchmark::kMillisecond);

}  // namespace

QUARTZ_BENCH_MAIN(report)
