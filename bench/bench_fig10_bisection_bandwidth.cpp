// Figure 10: normalized throughput of three traffic patterns on Quartz
// vs ideal and capacity-reduced fabrics (max-min fair flow allocation).
#include "report.hpp"

#include "common/table.hpp"
#include "flow/bisection.hpp"

namespace {

using namespace quartz;
using namespace quartz::flow;

void report() {
  bench::Report::instance().open("fig10", "Normalized throughput for three traffic patterns");

  const std::vector<FabricUnderTest> fabrics = {
      FabricUnderTest::kFullBisection, FabricUnderTest::kQuartz,
      FabricUnderTest::kQuartzDirectOnly, FabricUnderTest::kHalfBisection,
      FabricUnderTest::kQuarterBisection};

  Table table({"pattern", "full bisection", "quartz", "quartz direct-only", "1/2 bisection",
               "1/4 bisection"});
  BisectionParams params;  // 16 racks x 16 hosts, n = k
  for (auto pattern : {ThroughputPattern::kPermutation, ThroughputPattern::kIncast,
                       ThroughputPattern::kRackShuffle}) {
    std::vector<std::string> row{throughput_pattern_name(pattern)};
    for (auto fabric : fabrics) {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%.2f",
                    run_bisection(fabric, pattern, params).normalized_throughput);
      row.push_back(buf);
    }
    table.add_row(row);
  }
  bench::Report::instance().add_table("normalized_throughput", table);
  bench::print_note(
      "paper: quartz ~0.9 for permutation and incast, ~0.75 for rack "
      "shuffle — below full bisection but above 1/2 bisection everywhere; "
      "the direct-only column is our ablation showing why VLB matters");
}

void BM_MaxMinPermutation(benchmark::State& state) {
  BisectionParams params;
  params.racks = static_cast<int>(state.range(0));
  params.hosts_per_rack = params.racks;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run_bisection(FabricUnderTest::kQuartz, ThroughputPattern::kPermutation, params));
  }
}
BENCHMARK(BM_MaxMinPermutation)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_MaxMinIncast(benchmark::State& state) {
  BisectionParams params;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run_bisection(FabricUnderTest::kQuartz, ThroughputPattern::kIncast, params));
  }
}
BENCHMARK(BM_MaxMinIncast)->Unit(benchmark::kMillisecond);

}  // namespace

QUARTZ_BENCH_MAIN(report)
