// Figure 10: normalized throughput of three traffic patterns on Quartz
// vs ideal and capacity-reduced fabrics (max-min fair flow allocation).
#include "report.hpp"

#include "common/table.hpp"
#include "flow/bisection.hpp"
#include "sim/sweep.hpp"

namespace {

using namespace quartz;
using namespace quartz::flow;

void report() {
  bench::Report::instance().open("fig10", "Normalized throughput for three traffic patterns");

  const std::vector<FabricUnderTest> fabrics = {
      FabricUnderTest::kFullBisection, FabricUnderTest::kQuartz,
      FabricUnderTest::kQuartzDirectOnly, FabricUnderTest::kHalfBisection,
      FabricUnderTest::kQuarterBisection};
  const std::vector<ThroughputPattern> patterns = {ThroughputPattern::kPermutation,
                                                   ThroughputPattern::kIncast,
                                                   ThroughputPattern::kRackShuffle};

  struct Point {
    ThroughputPattern pattern;
    FabricUnderTest fabric;
  };
  std::vector<Point> points;
  for (auto pattern : patterns) {
    for (auto fabric : fabrics) points.push_back({pattern, fabric});
  }
  sim::SweepRunner runner({bench::Report::instance().jobs(), 16});
  const std::vector<double> throughputs = runner.run(points, [](const Point& p) {
    BisectionParams params;  // 16 racks x 16 hosts, n = k
    return run_bisection(p.fabric, p.pattern, params).normalized_throughput;
  });

  Table table({"pattern", "full bisection", "quartz", "quartz direct-only", "1/2 bisection",
               "1/4 bisection"});
  std::size_t at = 0;
  for (auto pattern : patterns) {
    std::vector<std::string> row{throughput_pattern_name(pattern)};
    for (std::size_t f = 0; f < fabrics.size(); ++f) {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%.2f", throughputs[at++]);
      row.push_back(buf);
    }
    table.add_row(row);
  }
  bench::Report::instance().add_table("normalized_throughput", table);
  bench::print_note(
      "paper: quartz ~0.9 for permutation and incast, ~0.75 for rack "
      "shuffle — below full bisection but above 1/2 bisection everywhere; "
      "the direct-only column is our ablation showing why VLB matters");
}

void BM_MaxMinPermutation(benchmark::State& state) {
  BisectionParams params;
  params.racks = static_cast<int>(state.range(0));
  params.hosts_per_rack = params.racks;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run_bisection(FabricUnderTest::kQuartz, ThroughputPattern::kPermutation, params));
  }
}
BENCHMARK(BM_MaxMinPermutation)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_MaxMinIncast(benchmark::State& state) {
  BisectionParams params;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run_bisection(FabricUnderTest::kQuartz, ThroughputPattern::kIncast, params));
  }
}
BENCHMARK(BM_MaxMinIncast)->Unit(benchmark::kMillisecond);

}  // namespace

QUARTZ_BENCH_MAIN(report)
