// Checkpoint cost model: what a .qsnap checkpoint costs the serve loop
// (pause while the state serializes and hits disk), how big the state
// is per switch, and that recovery is both fast and bit-exact.
//
// Emits BENCH_snapshot.json with three machine-checked claims:
//   * checkpoint_pause: wall-clock pause per periodic checkpoint of a
//     loaded serve loop (save_snapshot + atomic file write).  The p99
//     pause is QUARTZ_CHECKed < 10 ms — the bounded-pause budget that
//     makes in-band checkpointing viable for a live service;
//   * snapshot_size: bytes on disk per ring switch (the state-density
//     budget, QUARTZ_CHECKed < 64 KiB/switch so checkpoints stay cheap
//     as fabrics scale);
//   * recovery_fidelity: a loop restored from the last checkpoint
//     finishes with a report identical to the uninterrupted run, and a
//     mid-storm snapshot rehearsal reproduces the chaos harness's
//     delivery/drop digests exactly (both QUARTZ_CHECKed).
#include "report.hpp"

#include <chrono>
#include <cinttypes>
#include <filesystem>
#include <string>
#include <vector>

#include "chaos/soak.hpp"
#include "common/check.hpp"
#include "serve/serve_loop.hpp"
#include "snapshot/io.hpp"

namespace {

using namespace quartz;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

/// A loaded operating point: the quartz_serve CLI's shape (hot shift,
/// all defenses on) at an offered load near the knee.
serve::ServeConfig serve_config() {
  serve::ServeConfig config;
  config.ring.switches = 8;
  config.ring.hosts_per_switch = 2;
  config.ring.mesh_rate = gigabits_per_second(1);
  config.ring.links.host_rate = gigabits_per_second(1);
  config.duration = milliseconds(12);
  config.drain = milliseconds(6);
  config.arrivals_per_sec = 400'000.0;
  config.reply_size = bytes(100);
  config.timeout = microseconds(1500);
  config.max_retries = 2;
  config.classes = {{"gold", 0.2, milliseconds(2)},
                    {"silver", 0.3, milliseconds(2)},
                    {"bronze", 0.5, milliseconds(2)}};
  config.slo.window = microseconds(500);
  config.slo.budget_p99_us = 1200.0;
  config.slo.budget_p999_us = 1800.0;
  config.shifts = {{milliseconds(4), 0, 1, 0.9}};
  config.seed = 11;
  return config;
}

bool reports_equal(const serve::ServeReport& a, const serve::ServeReport& b) {
  return a.arrivals == b.arrivals && a.admitted == b.admitted && a.shed_class == b.shed_class &&
         a.shed_limit == b.shed_limit && a.completed == b.completed &&
         a.in_deadline == b.in_deadline && a.late == b.late && a.failed == b.failed &&
         a.retries == b.retries && a.budget_denied == b.budget_denied &&
         a.goodput_per_sec == b.goodput_per_sec && a.p50_us == b.p50_us && a.p99_us == b.p99_us &&
         a.p999_us == b.p999_us && a.windows_closed == b.windows_closed &&
         a.windows_breached == b.windows_breached && a.reconfigurations == b.reconfigurations &&
         a.pins_applied == b.pins_applied && a.conservation_ok && b.conservation_ok;
}

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  std::sort(sorted.begin(), sorted.end());
  const auto rank = static_cast<std::size_t>(p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

void run_report() {
  auto& report = quartz::bench::Report::instance();
  report.open("snapshot", "Checkpoint pause, state density and recovery fidelity");

  const std::string dir = (std::filesystem::temp_directory_path() / "bench_snapshot_ckpt").string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  // --- checkpoint_pause: drive the loop on a 1 ms cadence, timing each
  // save + atomic write as the pause the service would observe.
  const serve::ServeConfig config = serve_config();
  const TimePs cadence = milliseconds(1);
  const TimePs end = config.duration + config.drain;
  serve::ServeLoop loop(config);
  loop.start();
  std::vector<double> pause_ms;
  std::uint64_t snapshot_bytes = 0;
  std::uint64_t sequence = 0;
  for (TimePs next = cadence; next < end; next += cadence) {
    loop.run_to(next);
    const auto t0 = std::chrono::steady_clock::now();
    snapshot::Writer writer;
    loop.save_snapshot(writer);
    ++sequence;
    snapshot::write_file_atomic(snapshot::checkpoint_path(dir, sequence), writer, sequence);
    pause_ms.push_back(seconds_since(t0) * 1e3);
    snapshot_bytes = snapshot::file_bytes(writer, sequence).size();
  }
  const serve::ServeReport interrupted = loop.finish();
  const double pause_p50 = percentile(pause_ms, 0.50);
  const double pause_p99 = percentile(pause_ms, 0.99);
  const double pause_max = percentile(pause_ms, 1.0);

  // --- recovery_fidelity (serve): a fresh loop restored from the last
  // checkpoint must finish with the uninterrupted run's report.
  serve::ServeLoop recovered(serve_config());
  std::string warnings;
  const auto t_restore = std::chrono::steady_clock::now();
  const auto restored_sequence = recovered.restore_latest(dir, &warnings);
  const double restore_ms = seconds_since(t_restore) * 1e3;
  QUARTZ_CHECK(restored_sequence.has_value(), "no intact checkpoint to restore");
  QUARTZ_CHECK(warnings.empty(), "checkpoint scan warned: " + warnings);
  const serve::ServeReport resumed = recovered.finish();

  serve::ServeLoop uninterrupted(serve_config());
  const serve::ServeReport reference = uninterrupted.run();
  const bool serve_match = reports_equal(reference, resumed) && reports_equal(reference, interrupted);

  // --- recovery_fidelity (chaos): the storm harness's own mid-storm
  // snapshot rehearsal, digest-compared against the plain run.
  chaos::StormParams storm;
  storm.seed = 23;
  storm.packets = 10'000;
  storm.storm_start = milliseconds(10);
  storm.storm_end = milliseconds(40);
  storm.quiesce_at = milliseconds(60);
  storm.run_until = milliseconds(110);
  const chaos::StormReport plain = chaos::run_storm(storm);
  chaos::StormParams rehearsed = storm;
  rehearsed.restore_rehearsal = true;
  const chaos::StormReport rehearsal = chaos::run_storm(rehearsed);
  const bool storm_match = plain.delivery_digest == rehearsal.delivery_digest &&
                           plain.drop_digest == rehearsal.drop_digest &&
                           plain.events_dispatched == rehearsal.events_dispatched &&
                           plain.passed() && rehearsal.passed();

  const double bytes_per_switch =
      static_cast<double>(snapshot_bytes) / static_cast<double>(config.ring.switches);
  Table table({"metric", "value"});
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.3f", pause_p50);
  table.add_row({"pause_p50_ms", buffer});
  std::snprintf(buffer, sizeof(buffer), "%.3f", pause_p99);
  table.add_row({"pause_p99_ms", buffer});
  std::snprintf(buffer, sizeof(buffer), "%.3f", pause_max);
  table.add_row({"pause_max_ms", buffer});
  table.add_row({"checkpoints", std::to_string(sequence)});
  table.add_row({"snapshot_bytes", std::to_string(snapshot_bytes)});
  std::snprintf(buffer, sizeof(buffer), "%.1f", bytes_per_switch);
  table.add_row({"bytes_per_switch", buffer});
  std::snprintf(buffer, sizeof(buffer), "%.3f", restore_ms);
  table.add_row({"restore_ms", buffer});
  table.add_row({"serve_report_match", serve_match ? "1" : "0"});
  table.add_row({"storm_digest_match", storm_match ? "1" : "0"});
  report.add_table("snapshot_summary", table);

  report.note("pause = save_snapshot + atomic tmp/rename write, measured in-band on a "
              "loaded 8-switch serve loop at a 1 ms cadence");
  report.note("recovery fidelity: restored serve report and rehearsed storm digests are "
              "compared field-for-field against the uninterrupted runs");

  // The budgets this artifact exists to defend.
  QUARTZ_CHECK(pause_p99 < 10.0, "checkpoint pause p99 exceeds the 10 ms budget");
  QUARTZ_CHECK(bytes_per_switch < 64.0 * 1024.0,
               "snapshot density exceeds the 64 KiB/switch budget");
  QUARTZ_CHECK(serve_match, "restored serve run diverged from the uninterrupted run");
  QUARTZ_CHECK(storm_match, "storm snapshot rehearsal diverged from the plain storm");

  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Micro-measurements on a mid-run serve state held in memory.

struct FrozenState {
  FrozenState() : loop(serve_config()) {
    loop.start();
    loop.run_to(milliseconds(6));
    snapshot::Writer writer;
    loop.save_snapshot(writer);
    bytes = snapshot::file_bytes(writer, 1);
  }
  serve::ServeLoop loop;
  std::vector<std::byte> bytes;
};

FrozenState& frozen() {
  static FrozenState state;
  return state;
}

void BM_SaveSnapshot(benchmark::State& state) {
  FrozenState& f = frozen();
  for (auto _ : state) {
    snapshot::Writer writer;
    f.loop.save_snapshot(writer);
    benchmark::DoNotOptimize(writer.buffer().data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.bytes.size()));
}
BENCHMARK(BM_SaveSnapshot)->Unit(benchmark::kMicrosecond);

void BM_RestoreSnapshot(benchmark::State& state) {
  FrozenState& f = frozen();
  for (auto _ : state) {
    std::string error;
    auto reader = snapshot::Reader::from_bytes(f.bytes, &error);
    QUARTZ_CHECK(reader.has_value(), "frozen snapshot invalid: " + error);
    serve::ServeLoop fresh(serve_config());
    fresh.restore_snapshot(*reader);
    benchmark::DoNotOptimize(fresh.network().now());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.bytes.size()));
}
BENCHMARK(BM_RestoreSnapshot)->Unit(benchmark::kMicrosecond);

void BM_ValidateBytes(benchmark::State& state) {
  FrozenState& f = frozen();
  for (auto _ : state) {
    std::string error;
    auto reader = snapshot::Reader::from_bytes(f.bytes, &error);
    benchmark::DoNotOptimize(reader.has_value());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.bytes.size()));
}
BENCHMARK(BM_ValidateBytes)->Unit(benchmark::kMicrosecond);

}  // namespace

QUARTZ_BENCH_MAIN(run_report)
