// Table 9: analytic comparison of five ~1k-port candidate design
// elements — zero-load latency, switch count, wiring complexity and
// path diversity.
#include "report.hpp"

#include "common/table.hpp"
#include "sim/sweep.hpp"
#include "topo/properties.hpp"

namespace {

using namespace quartz;
using namespace quartz::topo;

void report() {
  bench::Report::instance().open("table09", "Network structures with ~1k servers");

  struct Row {
    std::string name;
    BuiltTopology topo;
  };
  std::vector<Row> rows;

  {
    TwoTierParams p;  // 16 ToRs x 48 hosts + 1 agg (switches at 64 ports)
    p.tors = 16;
    p.hosts_per_tor = 48;
    p.agg_model.port_count = 64;
    rows.push_back({"2-tier tree", two_tier_tree(p)});
  }
  {
    FatTreeParams p;  // 32 leaves x 16 spines x 2 links: 1024 hosts
    rows.push_back({"fat-tree (folded clos)", fat_tree_clos(p)});
  }
  {
    BCubeParams p;
    p.n = 32;  // 1024 dual-homed hosts, 64 switches
    rows.push_back({"bcube(1)", bcube1(p)});
  }
  {
    DCellParams p;
    p.n = 32;  // 1056 dual-homed hosts, 33 mini-switches
    rows.push_back({"dcell(1)", dcell1(p)});
  }
  {
    JellyfishParams p;
    p.switches = 24;
    p.hosts_per_switch = 44;
    p.inter_switch_ports = 20;  // 24 x 44 = 1056 hosts, degree 20
    rows.push_back({"jellyfish", jellyfish(p)});
  }
  {
    QuartzRingParams p;
    p.switches = 33;
    p.hosts_per_switch = 32;  // 1056 hosts, the paper's flagship mesh
    rows.push_back({"mesh (quartz)", quartz_ring(p)});
  }

  // analyze() runs an exact max-flow per topology — the expensive part —
  // so each structure is one sweep point.
  sim::SweepRunner runner({bench::Report::instance().jobs(), 9});
  const std::vector<TopologyProperties> props_by_row =
      runner.run(rows, [](const Row& row) { return analyze(row.topo); });

  Table table({"structure", "zero-load latency", "switch hops", "server hops", "switches",
               "hosts", "wiring complexity", "path diversity"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const TopologyProperties& props = props_by_row[i];
    table.add_row({rows[i].name, format_time(props.zero_load_latency),
                   std::to_string(props.switch_hops), std::to_string(props.server_hops),
                   std::to_string(props.switch_count), std::to_string(props.host_count),
                   std::to_string(props.wiring_complexity),
                   std::to_string(props.path_diversity)});
  }
  bench::Report::instance().add_table("structures", table);
  bench::print_note(
      "paper (with 0.5us switches): 2-tier 1.5us/17 sw/16 links/div 1; "
      "fat-tree 1.5us/48/1024/32; bcube 16us/2 hops + server hop/div 2; "
      "jellyfish 1.5us/24/240/<=32; mesh 1.0us/33/528/32.  We use the "
      "ULL's 380ns and measure diversity by exact max-flow");
}

void BM_AnalyzeMesh(benchmark::State& state) {
  QuartzRingParams p;
  p.switches = 33;
  p.hosts_per_switch = 8;
  const BuiltTopology t = quartz_ring(p);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyze(t));
  }
}
BENCHMARK(BM_AnalyzeMesh)->Unit(benchmark::kMillisecond);

void BM_PathDiversityMaxFlow(benchmark::State& state) {
  QuartzRingParams p;
  p.switches = 33;
  p.hosts_per_switch = 2;
  const BuiltTopology t = quartz_ring(p);
  for (auto _ : state) {
    benchmark::DoNotOptimize(path_diversity_between(t.graph, t.tors[0], t.tors[16]));
  }
}
BENCHMARK(BM_PathDiversityMaxFlow);

}  // namespace

QUARTZ_BENCH_MAIN(report)
