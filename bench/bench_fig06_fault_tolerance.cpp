// Figure 6: bandwidth loss and partition probability of a 33-switch
// Quartz network under random fiber failures, for 1-4 physical rings.
#include "report.hpp"

#include "core/fault.hpp"
#include "common/table.hpp"
#include "sim/sweep.hpp"

namespace {

using namespace quartz;
using namespace quartz::core;

void report() {
  bench::Report::instance().open("fig06", "Fault tolerance of multi-ring Quartz (33 switches)");

  struct Point {
    int rings;
    int fails;
  };
  std::vector<Point> points;
  for (int rings = 1; rings <= 4; ++rings) {
    for (int fails = 1; fails <= 4; ++fails) points.push_back({rings, fails});
  }
  sim::SweepRunner runner({bench::Report::instance().jobs(), 33});
  const std::vector<FaultResult> results = runner.run(points, [](const Point& p) {
    FaultParams params;
    params.switches = 33;
    params.physical_rings = p.rings;
    params.failed_links = p.fails;
    params.trials = 20'000;
    return analyze_faults(params);
  });

  Table loss({"rings", "1 failure", "2 failures", "3 failures", "4 failures"});
  Table part({"rings", "1 failure", "2 failures", "3 failures", "4 failures"});
  std::size_t at = 0;
  for (int rings = 1; rings <= 4; ++rings) {
    std::vector<std::string> loss_row{std::to_string(rings)};
    std::vector<std::string> part_row{std::to_string(rings)};
    for (int fails = 1; fails <= 4; ++fails) {
      const FaultResult& r = results[at++];
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.1f%%", 100.0 * r.mean_bandwidth_loss);
      loss_row.push_back(buf);
      std::snprintf(buf, sizeof(buf), "%.4f", r.partition_probability);
      part_row.push_back(buf);
    }
    loss.add_row(loss_row);
    part.add_row(part_row);
  }
  std::printf("top: mean bandwidth loss\n");
  bench::Report::instance().add_table("mean_bandwidth_loss", loss);
  std::printf("\nbottom: probability of network partition\n");
  bench::Report::instance().add_table("partition_probability", part);
  bench::print_note(
      "paper: one ring loses ~20%% per failure and partitions (>90%%) at "
      ">=2 failures; two rings partition with probability 0.0024 even at "
      "four failures");
}

void BM_FaultTrial(benchmark::State& state) {
  const auto plan = quartz::wavelength::greedy_assign(33);
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluate_failures(plan, 2, {{0, 3}, {1, 17}}));
  }
}
BENCHMARK(BM_FaultTrial);

void BM_MonteCarlo1k(benchmark::State& state) {
  for (auto _ : state) {
    FaultParams params;
    params.physical_rings = static_cast<int>(state.range(0));
    params.failed_links = 4;
    params.trials = 1'000;
    benchmark::DoNotOptimize(analyze_faults(params));
  }
}
BENCHMARK(BM_MonteCarlo1k)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

QUARTZ_BENCH_MAIN(report)
