// Factory sheets: §3.1 notes that wavelength planning is a one-time,
// design-time event that "can be performed by the device manufacturer
// at the factory".  This tool emits exactly those artifacts for a ring:
// the full channel map and, per switch, the transceiver tuning sheet a
// manufacturer would label the mux ports with.
//
//   $ ./factory_sheets [switches] [show_switch]
//
// Pass "ilp" as the third argument to also dump the paper's Eq. 1-6
// ILP in CPLEX LP format (runnable with cbc/gurobi/HiGHS).
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/table.hpp"
#include "optical/grid.hpp"
#include "wavelength/assign.hpp"
#include "wavelength/factory_plan.hpp"
#include "wavelength/ilp_export.hpp"
#include "wavelength/multiring.hpp"

int main(int argc, char** argv) {
  using namespace quartz;
  using namespace quartz::wavelength;

  const int switches = argc > 1 ? std::atoi(argv[1]) : 12;
  const int show_switch = argc > 2 ? std::atoi(argv[2]) : 0;
  if (switches < 2 || switches > kMaxRingSize || show_switch < 0 ||
      show_switch >= switches) {
    std::printf("usage: %s <switches in [2,64]> [switch to print]\n", argv[0]);
    return 1;
  }

  const Assignment plan = greedy_assign(switches);
  const int rings =
      rings_required(plan.channels_used, static_cast<int>(optical::kMaxChannelsPerMux));
  const auto grid = optical::WavelengthGrid::dwdm(optical::kMaxChannelsPerMux);
  const auto sheets = factory_plan(plan, grid, rings);

  std::printf("Factory wavelength plan: %d switches, %d channels, %d physical ring(s)\n\n",
              switches, plan.channels_used, rings);

  Table channel_map({"pair", "direction", "ring", "ITU slot", "wavelength"});
  for (const auto& e : sheets) {
    char nm[16];
    std::snprintf(nm, sizeof(nm), "%.2f nm", e.wavelength_nm);
    channel_map.add_row({std::to_string(e.src) + "-" + std::to_string(e.dst),
                         e.dir == Direction::kClockwise ? "cw" : "ccw",
                         std::to_string(e.physical_ring), std::to_string(e.grid_index), nm});
  }
  std::printf("channel map (%zu lightpaths):\n%s\n", sheets.size(),
              channel_map.to_text().c_str());

  Table sheet({"peer switch", "ring", "ITU slot", "tune transceiver to"});
  for (const auto& e : tuning_sheet(sheets, show_switch)) {
    char nm[16];
    std::snprintf(nm, sizeof(nm), "%.2f nm", e.wavelength_nm);
    sheet.add_row({std::to_string(e.src == show_switch ? e.dst : e.src),
                   std::to_string(e.physical_ring), std::to_string(e.grid_index), nm});
  }
  std::printf("tuning sheet for switch %d (%d transceivers):\n%s", show_switch, switches - 1,
              sheet.to_text().c_str());

  if (argc > 3 && std::string(argv[3]) == "ilp") {
    const auto dims = ilp_dimensions(switches);
    std::printf("\n%% ILP model: %d variables, %d constraints\n%s",
                dims.variables, dims.constraints, write_ilp_lp(switches).c_str());
  }
  return 0;
}
