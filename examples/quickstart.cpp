// Quickstart: plan a Quartz ring with the core library, inspect the
// wavelength plan and optical bill of materials, then push a few RPCs
// through the packet simulator.
//
//   $ ./quickstart [switches] [server_ports_per_switch]
//   $ ./quickstart --switches=8 --server-ports=16
#include <cstdio>
#include <cstdlib>

#include "common/flags.hpp"
#include "common/table.hpp"
#include "core/design.hpp"
#include "routing/oracle.hpp"
#include "sim/workloads.hpp"
#include "topo/builders.hpp"
#include "wavelength/multiring.hpp"

int main(int argc, char** argv) {
  using namespace quartz;

  const Flags flags = Flags::parse(argc, argv);
  for (const auto& key : flags.unknown_keys({"switches", "server-ports"})) {
    std::fprintf(stderr, "unknown flag --%s\n", key.c_str());
    std::fprintf(stderr, "usage: %s [switches] [server_ports_per_switch]\n"
                         "       %s [--switches=N] [--server-ports=N]\n",
                 argv[0], argv[0]);
    return 1;
  }
  const auto& positional = flags.positional();
  int switches = positional.size() > 0 ? std::atoi(positional[0].c_str()) : 8;
  int server_ports = positional.size() > 1 ? std::atoi(positional[1].c_str()) : 16;
  switches = static_cast<int>(flags.get_int("switches", switches));
  server_ports = static_cast<int>(flags.get_int("server-ports", server_ports));

  // ---- 1. Plan the design -------------------------------------------------
  core::DesignParams params;
  params.switches = switches;
  params.server_ports_per_switch = server_ports;
  const core::QuartzDesign design = core::plan_design(params);
  if (!design.feasible) {
    std::printf("infeasible: %s\n", design.infeasible_reason.c_str());
    return 1;
  }

  std::printf("Quartz ring: %d switches x %d server ports = %d ports total\n",
              params.switches, params.server_ports_per_switch, design.total_server_ports);
  std::printf("  wavelength channels : %d (lower bound %d)\n",
              design.channels.channels_used, wavelength::channel_lower_bound(switches));
  std::printf("  physical fiber rings: %d (mux carries %d channels)\n", design.physical_rings,
              params.channels_per_mux);
  std::printf("  transceivers/switch : %d\n", design.transceivers_per_switch);
  std::printf("  amplifiers          : %zu (exact power walk), %zu (paper rule)\n",
              design.amplifiers.amplifier_count(),
              optical::paper_rule_amplifier_count(static_cast<std::size_t>(switches)));
  std::printf("  oversubscription n:k: %.2f\n", design.oversubscription());

  // Optical sanity: worst-case receive power and OSNR.
  optical::RingBudgetParams budget;
  budget.ring_size = static_cast<std::size_t>(switches);
  const auto worst_osnr = optical::worst_case_osnr_db(budget, design.amplifiers);
  std::printf("  worst-case OSNR     : %.1f dB (10G OOK floor: %.0f dB)\n\n",
              worst_osnr, optical::kRequiredOsnrDb10G);

  // ---- 2. Show a slice of the channel plan --------------------------------
  Table table({"pair", "direction", "channel", "physical ring", "segments crossed"});
  int shown = 0;
  for (const auto& path : design.channels.paths) {
    if (shown++ == 10) break;
    std::string segments;
    for (int seg : wavelength::segments_for(switches, path.src, path.dst, path.dir)) {
      segments += (segments.empty() ? "" : ",") + std::to_string(seg);
    }
    table.add_row({std::to_string(path.src) + "-" + std::to_string(path.dst),
                   path.dir == wavelength::Direction::kClockwise ? "cw" : "ccw",
                   std::to_string(path.channel),
                   std::to_string(wavelength::ring_for_channel(path.channel,
                                                               design.physical_rings)),
                   segments});
  }
  std::printf("first %d lightpaths of the channel plan:\n%s\n", shown - 1,
              table.to_text().c_str());

  // ---- 3. Simulate a serial RPC on the built fabric -----------------------
  topo::QuartzRingParams ring;
  ring.switches = switches;
  ring.hosts_per_switch = std::min(server_ports, 4);  // keep the demo small
  const topo::BuiltTopology topo = topo::quartz_ring(ring);

  routing::EcmpRouting routing(topo.graph);
  routing::EcmpOracle oracle(routing);
  sim::Network net(topo, oracle);
  Rng rng(1);
  sim::RpcParams rpc_params;
  rpc_params.calls = 1000;
  sim::RpcWorkload rpc(net, topo.hosts.front(), topo.hosts.back(), rpc_params, rng);
  net.run_until(seconds(1));

  std::printf("simulated %zu serial RPCs across the ring:\n", rpc.rtt_us().count());
  std::printf("  mean RTT %.2f us, p99 %.2f us (two cut-through hops each way)\n",
              rpc.rtt_us().mean(), rpc.rtt_us().percentile(99));
  return 0;
}
