// quartz-simulate: the packet simulator as a standalone tool.  Pick a
// fabric and a workload from flags and get a CSV-able result row — the
// entry point a downstream user scripts parameter sweeps with.
//
//   $ ./simulate --fabric=quartz-edge-core --pattern=scatter --tasks=4
//   $ ./simulate --fabric=three-tier --pattern=gather --tasks=8 --csv
//   $ ./simulate --list
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <exception>
#include <fstream>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "chaos/sharded_storm.hpp"
#include "common/flags.hpp"
#include "sim/experiments.hpp"
#include "topo/composite.hpp"
#include "telemetry/binary_stream.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace {

using namespace quartz;
using namespace quartz::sim;

const std::vector<std::pair<std::string, Fabric>> kFabrics = {
    {"three-tier", Fabric::kThreeTierTree},
    {"jellyfish", Fabric::kJellyfish},
    {"quartz-core", Fabric::kQuartzInCore},
    {"quartz-edge", Fabric::kQuartzInEdge},
    {"quartz-edge-core", Fabric::kQuartzInEdgeAndCore},
    {"quartz-jellyfish", Fabric::kQuartzInJellyfish},
};

const std::vector<std::pair<std::string, Pattern>> kPatterns = {
    {"scatter", Pattern::kScatter},
    {"gather", Pattern::kGather},
    {"scatter-gather", Pattern::kScatterGather},
};

int usage(const char* argv0) {
  std::printf(
      "usage: %s [--fabric=NAME] [--topology=composite:SPEC] [--pattern=NAME]\n"
      "          [--tasks=N] [--fanout=N] [--rate-mbps=R] [--duration-ms=D]\n"
      "          [--seed=S] [--localized] [--vlb=K] [--fib=on|off] [--csv]\n"
      "          [--list] [--replicas=N] [--jobs=N] [--shards=N] [--trace]\n"
      "          [--sample-every=N] [--metrics-out=FILE]\n"
      "          [--telemetry=binary|jsonl|off]\n"
      "\n"
      "  --topology=composite:SPEC  hierarchical composed fabric instead of a\n"
      "                named --fabric; SPEC is kind:D0xD1[...][@h][+m], e.g.\n"
      "                composite:ring-of-rings:8x8@2 (see docs/scale.md)\n"
      "  --telemetry=binary  capture the full event stream as compact binary\n"
      "                records in <metrics-out>.qtz (decode with quartz_decode)\n"
      "  --telemetry=jsonl   mirror every event as one JSON line in\n"
      "                <metrics-out>.events.jsonl (requires --jobs=1)\n"
      "  --fib=on|off  route through the compiled FIB (default on); results\n"
      "                are bit-identical either way, only speed differs\n"
      "  --replicas=N  run N independent repetitions (seeds derived from\n"
      "                --seed) and report across-replica statistics\n"
      "  --jobs=N      worker threads for the replica sweep (0 = all\n"
      "                hardware threads); results are byte-identical for\n"
      "                every value\n"
      "  --shards=N    intra-run sharding: partition ONE simulation across\n"
      "                N cores (conservative time windows; see\n"
      "                docs/performance.md).  Needs --topology=composite:SPEC\n"
      "                and runs the shard-invariant uniform workload — task\n"
      "                patterns are sequential state machines and stay on the\n"
      "                serial engine.  Results are byte-identical at every N\n",
      argv0);
  return 1;
}

}  // namespace

int run(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);

  if (flags.get_bool("list")) {
    std::printf("fabrics:");
    for (const auto& [name, fabric] : kFabrics) std::printf(" %s", name.c_str());
    std::printf("\npatterns:");
    for (const auto& [name, pattern] : kPatterns) std::printf(" %s", name.c_str());
    std::printf("\n");
    return 0;
  }
  const auto unknown = flags.unknown_keys(
      {"fabric", "topology", "pattern", "tasks", "fanout", "rate-mbps", "duration-ms", "seed",
       "csv", "localized", "vlb", "fib", "list", "trace", "sample-every", "metrics-out",
       "replicas", "jobs", "shards", "telemetry"});
  if (!unknown.empty()) {
    for (const auto& key : unknown) std::printf("unknown flag --%s\n", key.c_str());
    return usage(argv[0]);
  }

  std::string fabric_name = flags.get("fabric", "quartz-edge-core");
  const std::string pattern_name = flags.get("pattern", "scatter");
  Fabric fabric = Fabric::kQuartzInEdgeAndCore;
  Pattern pattern = Pattern::kScatter;
  std::string composite_spec;
  bool found = false;
  if (flags.has("topology")) {
    // --topology=composite:<spec> builds a hierarchical composed fabric
    // (topo::CompositeSpec grammar), e.g. composite:ring-of-rings:8x8@2.
    const std::string topology = flags.get("topology");
    constexpr std::string_view kPrefix = "composite:";
    if (topology.rfind(kPrefix, 0) != 0) {
      std::printf("--topology only knows composite:<spec>, got '%s'\n", topology.c_str());
      return usage(argv[0]);
    }
    composite_spec = topology.substr(kPrefix.size());
    std::string error;
    if (!topo::CompositeSpec::parse(composite_spec, &error).has_value()) {
      std::printf("bad composite spec '%s': %s\n", composite_spec.c_str(), error.c_str());
      return usage(argv[0]);
    }
    fabric = Fabric::kComposite;
    fabric_name = topology;
    found = true;
  }
  for (const auto& [name, value] : kFabrics) {
    if (!found && name == fabric_name) {
      fabric = value;
      found = true;
    }
  }
  if (!found) {
    std::printf("unknown fabric '%s' (try --list)\n", fabric_name.c_str());
    return usage(argv[0]);
  }
  found = false;
  for (const auto& [name, value] : kPatterns) {
    if (name == pattern_name) {
      pattern = value;
      found = true;
    }
  }
  if (!found) {
    std::printf("unknown pattern '%s' (try --list)\n", pattern_name.c_str());
    return usage(argv[0]);
  }

  FabricConfig config;
  if (!composite_spec.empty()) config.composite = composite_spec;
  config.vlb_fraction = flags.get_double("vlb", 0.0);
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const std::string fib_mode = flags.get("fib", "on");
  if (fib_mode != "on" && fib_mode != "off") {
    std::printf("--fib must be 'on' or 'off', got '%s'\n", fib_mode.c_str());
    return usage(argv[0]);
  }
  config.use_fib = fib_mode == "on";

  TaskExperimentParams params;
  params.pattern = pattern;
  params.tasks = static_cast<int>(flags.get_int("tasks", 4));
  params.fanout = static_cast<int>(flags.get_int("fanout", 15));
  params.per_flow_rate = megabits_per_second(flags.get_double("rate-mbps", 200.0));
  params.duration = milliseconds(flags.get_int("duration-ms", 10));
  params.localized = flags.get_bool("localized");
  params.seed = config.seed * 31 + 7;
  if (params.tasks < 1 || params.fanout < 1 || flags.get_int("duration-ms", 10) < 1 ||
      flags.get_double("rate-mbps", 200.0) <= 0.0 || flags.get_int("sample-every", 1) < 1) {
    std::printf("--tasks, --fanout, --duration-ms, --rate-mbps and --sample-every "
                "must be positive\n");
    return usage(argv[0]);
  }

  const int replicas = static_cast<int>(flags.get_int("replicas", 1));
  const int jobs = static_cast<int>(flags.get_int("jobs", 1));
  if (replicas < 1 || jobs < 0) {
    std::printf("--replicas must be positive, --jobs non-negative\n");
    return usage(argv[0]);
  }
  const int shards = static_cast<int>(flags.get_int("shards", 1));
  if (shards < 1) {
    std::printf("--shards must be positive, got %d\n", shards);
    return usage(argv[0]);
  }
  if (shards > 1) {
    // Intra-run sharding: ONE simulation partitioned across cores.
    // The partition planner needs a composed fabric (one shard per
    // top-level element), and the sharded engine runs the
    // shard-invariant uniform workload, so the sequential experiment
    // options below do not apply.
    if (composite_spec.empty()) {
      std::printf("--shards=%d needs --topology=composite:SPEC (the partition planner\n"
                  "shards one composed element per core; named fabrics stay serial)\n",
                  shards);
      return usage(argv[0]);
    }
    if (replicas > 1 || flags.has("metrics-out") || flags.get_bool("trace") ||
        flags.get("telemetry", "off") != "off") {
      std::printf("--shards is the intra-run engine: combine with --replicas/--jobs by\n"
                  "running one process per replica; --metrics-out, --trace and\n"
                  "--telemetry are serial-engine options\n");
      return usage(argv[0]);
    }
    chaos::ShardedStormParams storm;
    storm.composite = composite_spec;
    storm.shards = shards;
    storm.seed = config.seed;
    storm.cuts = 0;
    storm.gray_links = 0;
    storm.flapping_links = 0;
    storm.storm_start = 0;
    storm.storm_end = 0;
    storm.run_until = milliseconds(flags.get_int("duration-ms", 10));
    // Per-host send cadence from the requested per-flow rate.
    const double rate_mbps = flags.get_double("rate-mbps", 200.0);
    storm.packet_gap = std::max<TimePs>(
        1, static_cast<TimePs>(static_cast<double>(storm.packet_size) * 1e6 / rate_mbps));
    storm.packets_per_host =
        static_cast<int>(std::min<std::int64_t>(100000, storm.run_until / storm.packet_gap));
    const auto wall_start = std::chrono::steady_clock::now();
    const chaos::ShardedStormResult result = chaos::run_sharded_storm(storm);
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
    const double events_per_s =
        wall_s > 0.0 ? static_cast<double>(result.events) / wall_s : 0.0;
    if (flags.get_bool("csv")) {
      std::printf("fabric,shards,strategy,lookahead_ns,mean_us,p99_us,deliveries,drops,events,"
                  "events_per_sec,delivery_digest\n");
      std::printf("%s,%d,%s,%.3f,%.4f,%.4f,%llu,%llu,%llu,%.0f,%016llx\n", fabric_name.c_str(),
                  result.shards, result.strategy.c_str(),
                  static_cast<double>(result.lookahead) * 1e-3, result.mean_latency_us,
                  result.p99_latency_us, static_cast<unsigned long long>(result.deliveries),
                  static_cast<unsigned long long>(result.drops),
                  static_cast<unsigned long long>(result.events), events_per_s,
                  static_cast<unsigned long long>(result.delivery_digest));
    } else {
      std::printf("%s, sharded engine (%d shards, %s partition, lookahead %.0f ns):\n",
                  fabric_name.c_str(), result.shards, result.strategy.c_str(),
                  static_cast<double>(result.lookahead) * 1e-3);
      std::printf("  mean %.2f us   p99 %.2f us   (uniform shard-invariant workload)\n",
                  result.mean_latency_us, result.p99_latency_us);
      std::printf("  %llu delivered, %llu dropped, %llu events (%.0f events/s, %llu "
                  "cross-shard)\n",
                  static_cast<unsigned long long>(result.deliveries),
                  static_cast<unsigned long long>(result.drops),
                  static_cast<unsigned long long>(result.events), events_per_s,
                  static_cast<unsigned long long>(result.mail_posted));
      std::printf("  delivery digest %016llx (byte-identical at every --shards)\n",
                  static_cast<unsigned long long>(result.delivery_digest));
    }
    return 0;
  }

  telemetry::MetricRegistry metrics(flags.has("metrics-out"));
  params.telemetry.trace = flags.get_bool("trace");
  params.telemetry.trace_sample_every =
      static_cast<std::uint32_t>(flags.get_int("sample-every", 1));
  params.telemetry.metrics = metrics.enabled() ? &metrics : nullptr;
  if (params.telemetry.metrics != nullptr && replicas > 1 && resolve_jobs(jobs) > 1) {
    // A MetricRegistry is thread-confined; replica workers cannot share it.
    std::printf("--metrics-out requires --jobs=1 when --replicas > 1\n");
    return usage(argv[0]);
  }

  const std::string telemetry_mode = flags.get("telemetry", "off");
  if (telemetry_mode != "off" && telemetry_mode != "binary" && telemetry_mode != "jsonl") {
    std::printf("--telemetry must be binary, jsonl or off, got '%s'\n", telemetry_mode.c_str());
    return usage(argv[0]);
  }
  if (telemetry_mode != "off" && !flags.has("metrics-out")) {
    std::printf("--telemetry=%s needs --metrics-out to derive its output path\n",
                telemetry_mode.c_str());
    return usage(argv[0]);
  }
  std::ofstream stream_os;
  std::unique_ptr<telemetry::StreamFile> stream_file;
  std::ofstream events_os;
  std::string stream_path;
  std::string events_path;
  if (telemetry_mode == "binary") {
    stream_path = flags.get("metrics-out") + ".qtz";
    stream_os.open(stream_path, std::ios::binary);
    if (!stream_os) {
      std::fprintf(stderr, "cannot open %s\n", stream_path.c_str());
      return 1;
    }
    // StreamFile serializes page appends, so every replica (even across
    // sweep workers) can share this one file; each run tags its pages
    // with its replica index and the decoder merges deterministically.
    stream_file = std::make_unique<telemetry::StreamFile>(stream_os);
    params.telemetry.stream = stream_file.get();
    params.telemetry.stream_background = true;
  } else if (telemetry_mode == "jsonl") {
    if (replicas > 1 && resolve_jobs(jobs) > 1) {
      std::printf("--telemetry=jsonl requires --jobs=1 when --replicas > 1\n");
      return usage(argv[0]);
    }
    events_path = flags.get("metrics-out") + ".events.jsonl";
    events_os.open(events_path);
    if (!events_os) {
      std::fprintf(stderr, "cannot open %s\n", events_path.c_str());
      return 1;
    }
    params.telemetry.events_jsonl = &events_os;
  }

  if (replicas > 1) {
    SweepOptions sweep;
    sweep.jobs = jobs;
    sweep.root_seed = config.seed;
    const ReplicaSweepResult sweep_result =
        run_task_replicas(fabric, config, params, replicas, sweep);
    if (flags.get_bool("csv")) {
      std::printf(
          "fabric,pattern,tasks,localized,replicas,mean_us,mean_stddev_us,p99_us,packets,"
          "drops\n");
      std::printf("%s,%s,%d,%d,%d,%.4f,%.4f,%.4f,%llu,%llu\n", fabric_name.c_str(),
                  pattern_name.c_str(), params.tasks, params.localized ? 1 : 0, replicas,
                  sweep_result.mean_latency_us.mean(), sweep_result.mean_latency_us.stddev(),
                  sweep_result.p99_latency_us.mean(),
                  static_cast<unsigned long long>(sweep_result.packets_measured),
                  static_cast<unsigned long long>(sweep_result.packets_dropped));
    } else {
      std::printf("%s / %s, %d task(s)%s, %d replicas (%d job%s):\n", fabric_name.c_str(),
                  pattern_name.c_str(), params.tasks, params.localized ? " (localized)" : "",
                  replicas, resolve_jobs(jobs), resolve_jobs(jobs) == 1 ? "" : "s");
      std::printf("  mean %.2f us (+/- %.2f us across replicas)   p99 %.2f us\n",
                  sweep_result.mean_latency_us.mean(), sweep_result.mean_latency_us.stddev(),
                  sweep_result.p99_latency_us.mean());
      std::printf("  %llu packets measured, %llu dropped\n",
                  static_cast<unsigned long long>(sweep_result.packets_measured),
                  static_cast<unsigned long long>(sweep_result.packets_dropped));
    }
    if (metrics.enabled()) {
      const std::string path = flags.get("metrics-out");
      std::ofstream out(path);
      if (!out) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        return 1;
      }
      metrics.write_csv(out);
      std::printf("metrics: %s\n", path.c_str());
    }
    return 0;
  }

  const TaskExperimentResult result = run_task_experiment(fabric, config, params);

  if (flags.get_bool("csv")) {
    std::printf(
        "fabric,pattern,tasks,localized,mean_us,p99_us,ci95_us,queueing_us,packets,drops\n");
    std::printf("%s,%s,%d,%d,%.4f,%.4f,%.4f,%.4f,%llu,%llu\n", fabric_name.c_str(),
                pattern_name.c_str(), params.tasks, params.localized ? 1 : 0,
                result.mean_latency_us, result.p99_latency_us, result.ci95_us,
                result.mean_queueing_us,
                static_cast<unsigned long long>(result.packets_measured),
                static_cast<unsigned long long>(result.packets_dropped));
  } else {
    std::printf("%s / %s, %d task(s)%s:\n", fabric_name.c_str(), pattern_name.c_str(),
                params.tasks, params.localized ? " (localized)" : "");
    std::printf("  mean %.2f us   p99 %.2f us   (95%% CI +/- %.2f us)\n",
                result.mean_latency_us, result.p99_latency_us, result.ci95_us);
    std::printf("  of which queueing: %.2f us (%.0f%%)\n", result.mean_queueing_us,
                100.0 * result.mean_queueing_us / result.mean_latency_us);
    std::printf("  %llu packets measured, %llu dropped\n",
                static_cast<unsigned long long>(result.packets_measured),
                static_cast<unsigned long long>(result.packets_dropped));
  }

  if (params.telemetry.trace) {
    const auto& d = result.decomposition;
    std::printf(
        "latency decomposition (%llu sampled packets, mean us/packet):\n"
        "  host %.3f + queueing %.3f + serialization %.3f + switching %.3f"
        " + propagation %.3f = %.3f\n",
        static_cast<unsigned long long>(d.packets), d.host_us, d.queueing_us,
        d.serialization_us, d.switching_us, d.propagation_us, d.total_us);
  }
  if (metrics.enabled()) {
    const std::string path = flags.get("metrics-out");
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 1;
    }
    metrics.write_csv(out);
    std::printf("metrics: %s\n", path.c_str());
  }
  if (stream_file != nullptr) {
    stream_os.flush();
    std::printf("event stream: %s (%llu pages, %llu bytes)\n", stream_path.c_str(),
                static_cast<unsigned long long>(stream_file->pages()),
                static_cast<unsigned long long>(stream_file->bytes()));
  }
  if (params.telemetry.events_jsonl != nullptr) {
    events_os.flush();
    std::printf("events: %s\n", events_path.c_str());
  }
  return 0;
}

int main(int argc, char** argv) {
  // Examples never throw on bad argv: surface the parse error and the
  // usage text instead of an abort.
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
