// The §6 prototype, in software: four 48-port 1 Gb/s managed switches
// on a CWDM ring (Figs. 11-13), running the Thrift-style RPC under
// Nuttcp-style cross-traffic and comparing against the same switches
// rewired as a 2-tier tree (the Fig. 14 experiment).
//
//   $ ./prototype_testbed [--calls=N]
#include <cstdio>

#include "common/flags.hpp"
#include "common/table.hpp"
#include "optical/budget.hpp"
#include "optical/grid.hpp"
#include "sim/experiments.hpp"
#include "wavelength/assign.hpp"

int main(int argc, char** argv) {
  using namespace quartz;

  const Flags flags = Flags::parse(argc, argv);
  for (const auto& key : flags.unknown_keys({"calls"})) {
    std::fprintf(stderr, "unknown flag --%s\n", key.c_str());
    std::fprintf(stderr, "usage: %s [--calls=N]\n", argv[0]);
    return 1;
  }
  if (!flags.positional().empty()) {
    std::fprintf(stderr, "usage: %s [--calls=N]\n", argv[0]);
    return 1;
  }
  const int calls = static_cast<int>(flags.get_int("calls", 1'000));
  if (calls < 1) {
    std::fprintf(stderr, "--calls must be >= 1\n");
    return 1;
  }

  std::printf("Quartz prototype testbed (section 6)\n");
  std::printf("================================\n\n");

  // ---- Optical plan: 4 switches, CWDM like the real testbed ---------------
  const auto plan = wavelength::greedy_assign(4);
  std::printf("4-switch ring needs %d CWDM channels (testbed used 1470/1490/1510 nm)\n",
              plan.channels_used);
  const auto grid = optical::WavelengthGrid::cwdm(18);
  for (const auto& path : plan.paths) {
    // Map logical channels onto the prototype's CWDM bands (10..).
    std::printf("  switch %d <-> switch %d on %.0f nm\n", path.src + 1, path.dst + 1,
                grid.channel(static_cast<std::size_t>(10 + path.channel)).wavelength_nm);
  }

  optical::RingBudgetParams budget;
  budget.ring_size = 4;
  budget.transceiver = optical::TransceiverSpec::cwdm_1g();
  budget.mux = optical::MuxDemuxSpec::cwdm_4ch();
  const auto amps = optical::plan_ring_amplifiers(budget);
  std::printf("\nlink budget: amplifiers needed = %zu, attenuated drops = %zu\n",
              amps.amplifier_count(), amps.attenuator_nodes.size());
  std::printf("  (the real testbed also needed no amplifiers but did need attenuators)\n\n");

  // ---- Fig. 14: RPC latency vs cross-traffic -------------------------------
  Table table({"cross-traffic (Mb/s)", "tree RTT (us)", "quartz RTT (us)",
               "tree normalized", "quartz normalized"});
  double tree_base = 0.0;
  double quartz_base = 0.0;
  for (double mbps : {0.0, 50.0, 100.0, 150.0, 200.0}) {
    sim::CrossTrafficParams params;
    params.cross_mbps = mbps;
    params.rpc_calls = calls;
    const auto tree = sim::run_cross_traffic(sim::PrototypeFabric::kTwoTierTree, params);
    const auto quartz = sim::run_cross_traffic(sim::PrototypeFabric::kQuartz, params);
    if (mbps == 0.0) {
      tree_base = tree.mean_rtt_us;
      quartz_base = quartz.mean_rtt_us;
    }
    char t[16], q[16], tn[16], qn[16];
    std::snprintf(t, sizeof(t), "%.1f", tree.mean_rtt_us);
    std::snprintf(q, sizeof(q), "%.1f", quartz.mean_rtt_us);
    std::snprintf(tn, sizeof(tn), "%.2f", tree.mean_rtt_us / tree_base);
    std::snprintf(qn, sizeof(qn), "%.2f", quartz.mean_rtt_us / quartz_base);
    table.add_row({std::to_string(static_cast<int>(mbps)), t, q, tn, qn});
  }
  std::printf("RPC under cross-traffic (10,000-call runs in the paper; %d here):\n%s", calls,
              table.to_text().c_str());
  std::printf(
      "\nconclusion: the tree's shared agg->S3 link queues behind the bursts;\n"
      "the quartz ring keeps the RPC on its own lightpath and is unaffected.\n");
  return 0;
}
