// Overload-safe serving on a live Quartz ring.
//
// Keeps a small fabric alive on the event engine and streams an
// open-loop arrival process at it while three defenses guard the SLO:
// closed-loop admission (concurrency probed to the goodput knee,
// priority classes shed on sustained p99 breach), retry budgets with
// deadline propagation, and a make-before-break regroom reacting to a
// mid-run demand shift.
//
//   $ ./quartz_serve                          # defended run, hot shift at 2 ms
//   $ ./quartz_serve --arrivals=650000        # push well past the knee
//   $ ./quartz_serve --duel                   # replay the same arrivals undefended
//   $ ./quartz_serve --blackhole              # gray-fail one lightpath mid-run
//   $ ./quartz_serve --no-regroom --no-admission --no-retry-budget
//
// The loop is kill-resumable: --checkpoint-dir writes an atomic
// checkpoint every --checkpoint-every-ms of simulated time, and
// --restore resumes bit-exactly from the newest intact one — the
// resumed run prints the same report the uninterrupted run would have.
//
//   $ ./quartz_serve --checkpoint-dir=ckpt --kill-at-us=6000   # dies mid-run
//   $ ./quartz_serve --checkpoint-dir=ckpt --restore           # same report
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/flags.hpp"
#include "common/table.hpp"
#include "serve/serve_loop.hpp"
#include "snapshot/io.hpp"
#include "telemetry/binary_stream.hpp"
#include "telemetry/decode.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/stream_sink.hpp"

namespace {

using namespace quartz;

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--switches=N>=4] [--hosts=N>=1] [--arrivals=REQ_PER_SEC]\n"
      "          [--duration-ms=N] [--hot=FRACTION] [--shift-ms=N] [--seed=N]\n"
      "          [--no-admission] [--no-retry-budget] [--no-regroom]\n"
      "          [--blackhole] [--duel] [--metrics-out=FILE]\n"
      "          [--telemetry=binary|jsonl|off]\n"
      "          [--checkpoint-dir=DIR] [--checkpoint-every-ms=N] [--restore]\n"
      "          [--kill-at-us=N]\n"
      "  --blackhole  silently blackhole one mesh lightpath mid-run (gray failure)\n"
      "  --duel       replay the defended run's arrivals against an undefended loop\n"
      "  --checkpoint-dir  write an atomic checkpoint to DIR every\n"
      "               --checkpoint-every-ms (default 2) of simulated time\n"
      "  --restore    resume from the newest intact checkpoint in --checkpoint-dir\n"
      "  --kill-at-us _Exit(137) once simulated time reaches N us (crash drill;\n"
      "               needs --checkpoint-dir)\n"
      "  --telemetry=binary  capture the defended run's event stream in\n"
      "               <metrics-out>.qtz (decode with quartz_decode); jsonl\n"
      "               writes <metrics-out>.events.jsonl instead\n"
      "  --shards=1   accepted for CLI symmetry; the serve loop is a single\n"
      "               closed control loop and refuses --shards>1\n",
      argv0);
  return 1;
}

void print_report(const char* label, const serve::ServeReport& r) {
  std::printf("\n%s:\n", label);
  Table table({"counter", "value"});
  table.add_row({"arrivals", std::to_string(r.arrivals)});
  table.add_row({"admitted", std::to_string(r.admitted)});
  table.add_row({"shed (class / limit)",
                 std::to_string(r.shed_class) + " / " + std::to_string(r.shed_limit)});
  table.add_row({"completed in deadline", std::to_string(r.in_deadline)});
  table.add_row({"late", std::to_string(r.late)});
  table.add_row({"failed", std::to_string(r.failed)});
  table.add_row({"retries (denied / hopeless)",
                 std::to_string(r.retries) + " (" + std::to_string(r.budget_denied) + " / " +
                     std::to_string(r.hopeless_dropped) + ")"});
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.0f", r.goodput_per_sec);
  table.add_row({"goodput (req/s)", buffer});
  std::snprintf(buffer, sizeof(buffer), "%.1f / %.1f / %.1f", r.p50_us, r.p99_us, r.p999_us);
  table.add_row({"latency p50/p99/p99.9 (us)", buffer});
  std::snprintf(buffer, sizeof(buffer), "%.3f", r.retry_amplification);
  table.add_row({"retry amplification", buffer});
  table.add_row({"SLO windows breached",
                 std::to_string(r.windows_breached) + " of " + std::to_string(r.windows_closed)});
  table.add_row({"admission limit (final / knee)",
                 std::to_string(r.final_limit) + " / " + std::to_string(r.knee_limit)});
  table.add_row({"regrooms (pins applied / rejected)",
                 std::to_string(r.reconfigurations) + " (" + std::to_string(r.pins_applied) +
                     " / " + std::to_string(r.pins_rejected) + ")"});
  table.add_row({"conservation", r.conservation_ok ? "ok" : "VIOLATED"});
  std::printf("%s\n", table.to_text().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  for (const auto& key :
       flags.unknown_keys({"switches", "hosts", "arrivals", "duration-ms", "hot", "shift-ms",
                           "seed", "no-admission", "no-retry-budget", "no-regroom", "blackhole",
                           "duel", "metrics-out", "telemetry", "checkpoint-dir",
                           "checkpoint-every-ms", "restore", "kill-at-us", "shards"})) {
    std::fprintf(stderr, "unknown flag --%s\n", key.c_str());
    return usage(argv[0]);
  }
  if (!flags.positional().empty()) return usage(argv[0]);
  if (flags.get_int("shards", 1) != 1) {
    // The serve loop's admission controller, retry budgets and
    // re-groomer are one closed feedback loop over the whole fabric;
    // replicating them per shard would change admission decisions.
    // Intra-run sharding stays a simulate/latency_study capability.
    std::fprintf(stderr,
                 "--shards=%lld: the serve loop is a single closed control loop and "
                 "does not shard; use --shards on simulate/latency_study, or run "
                 "independent serve processes\n",
                 static_cast<long long>(flags.get_int("shards", 1)));
    return 1;
  }

  serve::ServeConfig config;
  config.ring.switches = static_cast<int>(flags.get_int("switches", 4));
  config.ring.hosts_per_switch = static_cast<int>(flags.get_int("hosts", 2));
  if (config.ring.switches < 4 || config.ring.hosts_per_switch < 1) return usage(argv[0]);
  config.ring.mesh_rate = gigabits_per_second(1);
  config.ring.links.host_rate = gigabits_per_second(1);
  if (flags.get_int("duration-ms", 10) < 1) return usage(argv[0]);
  config.duration = milliseconds(flags.get_int("duration-ms", 10));
  config.drain = milliseconds(8);
  config.arrivals_per_sec = flags.get_double("arrivals", 450'000.0);
  if (config.arrivals_per_sec <= 0.0) return usage(argv[0]);
  config.reply_size = bytes(100);
  config.timeout = microseconds(1500);
  config.max_retries = 2;
  config.classes = {{"gold", 0.2, milliseconds(2)},
                    {"silver", 0.3, milliseconds(2)},
                    {"bronze", 0.5, milliseconds(2)}};
  config.slo.window = microseconds(500);
  config.slo.budget_p99_us = 1200.0;
  config.slo.budget_p999_us = 1800.0;
  const double hot = flags.get_double("hot", 0.9);
  if (hot < 0.0 || hot > 1.0) return usage(argv[0]);
  if (hot > 0.0) {
    config.shifts = {{milliseconds(flags.get_int("shift-ms", 2)), 0, 1, hot}};
  }
  config.use_admission = !flags.get_bool("no-admission");
  config.use_retry_budget = !flags.get_bool("no-retry-budget");
  config.reconfigure_on_shift = !flags.get_bool("no-regroom");
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));

  const std::string checkpoint_dir = flags.get("checkpoint-dir", "");
  const long long checkpoint_every_ms = flags.get_int("checkpoint-every-ms", 2);
  const long long kill_at_us = flags.get_int("kill-at-us", 0);
  const bool restore = flags.get_bool("restore");
  if (checkpoint_dir.empty() && (restore || kill_at_us > 0)) {
    std::fprintf(stderr, "--restore and --kill-at-us need --checkpoint-dir\n");
    return usage(argv[0]);
  }
  if (!checkpoint_dir.empty() && checkpoint_every_ms < 1) return usage(argv[0]);
  if (!checkpoint_dir.empty() && flags.get_bool("blackhole")) {
    // The blackhole is scheduled as an engine closure, which a snapshot
    // cannot carry — script chaos through FaultScheduler instead.
    std::fprintf(stderr, "--blackhole cannot be combined with --checkpoint-dir\n");
    return usage(argv[0]);
  }

  std::printf("Quartz serve: %d switches x %d hosts, %.0f req/s offered for %.0f ms\n",
              config.ring.switches, config.ring.hosts_per_switch, config.arrivals_per_sec,
              to_microseconds(config.duration) / 1000.0);
  std::printf("  defenses: admission %s, retry budget %s, regroom on shift %s\n",
              config.use_admission ? "on" : "OFF", config.use_retry_budget ? "on" : "OFF",
              config.reconfigure_on_shift ? "on" : "OFF");
  if (!config.shifts.empty()) {
    std::printf("  demand shift: %.0f%% of arrivals onto switch pair 0->1 at %.1f ms\n",
                100.0 * hot, to_microseconds(config.shifts.front().at) / 1000.0);
  }

  const std::string telemetry_mode = flags.get("telemetry", "off");
  if (telemetry_mode != "off" && telemetry_mode != "binary" && telemetry_mode != "jsonl") {
    std::fprintf(stderr, "--telemetry must be binary, jsonl or off, got '%s'\n",
                 telemetry_mode.c_str());
    return usage(argv[0]);
  }
  if (telemetry_mode != "off" && !flags.has("metrics-out")) {
    std::fprintf(stderr, "--telemetry=%s needs --metrics-out to derive its output path\n",
                 telemetry_mode.c_str());
    return usage(argv[0]);
  }

  serve::ServeLoop loop(config);

  // Observability on the live loop: the binary stream rides the
  // devirtualized fast path with a background page drainer; the JSONL
  // mirror is the legacy direct-export sink.
  std::ofstream stream_os;
  std::unique_ptr<telemetry::StreamFile> stream_file;
  std::unique_ptr<telemetry::BinaryStream> stream;
  std::unique_ptr<telemetry::BinaryStreamSink> stream_sink;
  std::ofstream events_os;
  std::unique_ptr<telemetry::JsonlEventWriter> events_writer;
  std::string stream_path;
  std::string events_path;
  if (telemetry_mode == "binary") {
    stream_path = flags.get("metrics-out") + ".qtz";
    stream_os.open(stream_path, std::ios::binary);
    if (!stream_os) {
      std::fprintf(stderr, "cannot open %s\n", stream_path.c_str());
      return 1;
    }
    stream_file = std::make_unique<telemetry::StreamFile>(stream_os);
    telemetry::BinaryStream::Options stream_options;
    stream_options.background = true;
    stream = std::make_unique<telemetry::BinaryStream>(*stream_file, stream_options);
    stream_sink = std::make_unique<telemetry::BinaryStreamSink>(*stream);
    loop.network().set_stream_sink(stream_sink.get());
  } else if (telemetry_mode == "jsonl") {
    events_path = flags.get("metrics-out") + ".events.jsonl";
    events_os.open(events_path);
    if (!events_os) {
      std::fprintf(stderr, "cannot open %s\n", events_path.c_str());
      return 1;
    }
    events_writer = std::make_unique<telemetry::JsonlEventWriter>(events_os);
    loop.network().add_sink(events_writer.get());
  }

  if (flags.get_bool("blackhole")) {
    // Gray-fail the first mesh lightpath: the failure view never
    // learns, so only timeouts (and the retry budget) notice.
    for (const auto& link : loop.topology().graph.links()) {
      if (link.wdm_channel < 0) continue;
      const TimePs at = config.duration / 4;
      loop.network().at(at, [&loop, id = link.id] { loop.network().set_link_loss(id, 1.0); });
      std::printf("  gray failure: mesh link %u blackholed from %.1f ms\n", link.id,
                  to_microseconds(at) / 1000.0);
      break;
    }
  }
  serve::ServeReport defended;
  if (checkpoint_dir.empty()) {
    defended = loop.run();
  } else {
    // Checkpoint / restore notices go to stderr so a resumed run's
    // stdout diffs cleanly against the uninterrupted run's.
    std::filesystem::create_directories(checkpoint_dir);
    std::uint64_t start_sequence = 0;
    if (restore) {
      std::string warnings;
      const auto sequence = loop.restore_latest(checkpoint_dir, &warnings);
      if (!warnings.empty()) std::fprintf(stderr, "%s", warnings.c_str());
      if (sequence.has_value()) {
        start_sequence = *sequence;
        std::fprintf(stderr, "restored from checkpoint %llu at %.3f ms\n",
                     static_cast<unsigned long long>(start_sequence),
                     to_microseconds(loop.network().now()) / 1000.0);
      } else {
        std::fprintf(stderr, "no intact checkpoint in %s; starting fresh\n",
                     checkpoint_dir.c_str());
      }
    }
    serve::ServeLoop::CheckpointOptions options;
    options.dir = checkpoint_dir;
    options.every = milliseconds(checkpoint_every_ms);
    options.start_sequence = start_sequence;
    if (kill_at_us <= 0) {
      defended = loop.run_with_checkpoints(options);
    } else {
      // Crash drill: checkpoint on the cadence grid, then die abruptly
      // (no flush, no report) once simulated time reaches the kill mark.
      const TimePs kill_at = microseconds(kill_at_us);
      const TimePs end = config.duration + config.drain;
      if (loop.network().now() == 0 && start_sequence == 0) loop.start();
      std::uint64_t sequence = start_sequence;
      TimePs next = (loop.network().now() / options.every + 1) * options.every;
      while (next < end) {
        loop.run_to(std::min(next, kill_at));
        if (loop.network().now() >= kill_at) {
          std::fprintf(stderr, "simulated crash at %.3f ms after checkpoint %llu\n",
                       to_microseconds(loop.network().now()) / 1000.0,
                       static_cast<unsigned long long>(sequence));
          std::_Exit(137);
        }
        snapshot::Writer writer;
        loop.save_snapshot(writer);
        ++sequence;
        snapshot::write_file_atomic(snapshot::checkpoint_path(checkpoint_dir, sequence), writer,
                                    sequence);
        next += options.every;
      }
      loop.run_to(std::min(end, kill_at));
      if (loop.network().now() >= kill_at && kill_at < end) {
        std::fprintf(stderr, "simulated crash at %.3f ms after checkpoint %llu\n",
                     to_microseconds(loop.network().now()) / 1000.0,
                     static_cast<unsigned long long>(sequence));
        std::_Exit(137);
      }
      defended = loop.finish();
    }
  }
  if (stream != nullptr) {
    loop.network().set_stream_sink(nullptr);
    stream->finish();
    stream_os.flush();
    std::printf("event stream: %s (%llu pages, %llu bytes)\n", stream_path.c_str(),
                static_cast<unsigned long long>(stream_file->pages()),
                static_cast<unsigned long long>(stream_file->bytes()));
  }
  if (events_writer != nullptr) {
    loop.network().remove_sink(events_writer.get());
    events_os.flush();
    std::printf("events: %s\n", events_path.c_str());
  }
  print_report("defended run", defended);

  if (flags.get_bool("duel")) {
    serve::ServeConfig raw = config;
    raw.use_admission = false;
    raw.use_retry_budget = false;
    raw.reconfigure_on_shift = false;
    const std::vector<serve::TraceEvent> trace = loop.trace();
    raw.replay = &trace;
    serve::ServeLoop undefended(raw);
    const serve::ServeReport baseline = undefended.run();
    print_report("undefended replay (same arrivals)", baseline);
    std::printf("duel: defended delivered %llu in-deadline vs %llu undefended (%.2fx)\n",
                static_cast<unsigned long long>(defended.in_deadline),
                static_cast<unsigned long long>(baseline.in_deadline),
                baseline.in_deadline == 0
                    ? 0.0
                    : static_cast<double>(defended.in_deadline) /
                          static_cast<double>(baseline.in_deadline));
  }

  if (flags.has("metrics-out")) {
    telemetry::MetricRegistry metrics;
    loop.publish_metrics(metrics, "serve");
    const std::string path = flags.get("metrics-out");
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 1;
    }
    metrics.write_csv(out);
    std::printf("metrics: %s\n", path.c_str());
  }
  return 0;
}
