// quartz-decode: turn .qtz binary event streams back into JSONL / CSV.
//
// The simulator's hot path writes compact binary records (see
// telemetry/binary_stream.hpp); everything human- or jq-facing happens
// here, after the fact.  Multiple files (and multiple streams inside
// one file — replica sweeps) are merged deterministically by
// (sim time, stream, record seq), so the decoded output is
// byte-identical no matter how many workers produced the pages.
//
//   $ ./quartz_decode run.csv.qtz                        # JSONL to stdout
//   $ ./quartz_decode --format=csv --out=ev.csv run.csv.qtz
//   $ ./quartz_decode --format=summary run.csv.qtz       # counts + gaps
//   $ ./quartz_decode --digest run.csv.qtz               # FNV-1a of the JSONL
#include <cinttypes>
#include <cstdio>
#include <exception>
#include <fstream>
#include <map>
#include <memory>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/flags.hpp"
#include "sim/packet.hpp"
#include "telemetry/decode.hpp"
#include "telemetry/sink.hpp"

namespace {

using namespace quartz;
using namespace quartz::telemetry;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--format=jsonl|csv|summary] [--canonical] [--out=FILE] [--digest] "
               "FILE.qtz...\n"
               "  --format=jsonl    one JSON object per event (default)\n"
               "  --format=csv      one row per event, sparse columns\n"
               "  --format=summary  per-event counts, stream stats and gaps\n"
               "  --canonical       shard-invariant merge order: a capture taken at\n"
               "                    --shards=N decodes byte-identical to --shards=1\n"
               "  --out=FILE        write there instead of stdout\n"
               "  --digest          also print fnv1a:<hex> of the formatted output\n",
               argv0);
  return 1;
}

/// Sparse-column CSV: every event type shares one header row; fields
/// that do not apply to an event stay empty.  Times are picoseconds.
class CsvEventWriter final : public TelemetrySink {
 public:
  explicit CsvEventWriter(std::ostream& os) : os_(&os) {
    *os_ << "ev,t,packet,task,src,dst,size_bits,node,link,dir,t2,t3,detail\n";
  }

  void on_send(const sim::Packet& p, TimePs ready) override {
    *os_ << "send," << p.created << ',' << p.id << ',' << p.task << ',' << p.key.src << ','
         << p.key.dst << ',' << p.size << ",,,," << ready << ",,\n";
  }
  void on_transmit(const sim::Packet& p, topo::NodeId from, topo::LinkId link, int direction,
                   TimePs ready, TimePs start, TimePs finish) override {
    *os_ << "transmit," << ready << ',' << p.id << ',' << p.task << ",,,," << from << ',' << link
         << ',' << direction << ',' << start << ',' << finish << ",\n";
  }
  void on_arrival(const sim::Packet& p, topo::NodeId node, TimePs first_bit,
                  TimePs last_bit) override {
    *os_ << "arrival," << first_bit << ',' << p.id << ',' << p.task << ",,,," << node << ",,,"
         << last_bit << ",,\n";
  }
  void on_forward(const sim::Packet& p, topo::NodeId node, HopKind kind, TimePs first_bit,
                  TimePs last_bit, TimePs decision_ready) override {
    *os_ << "forward," << first_bit << ',' << p.id << ',' << p.task << ",,,," << node << ",,,"
         << last_bit << ',' << decision_ready << ',' << hop_kind_name(kind) << '\n';
  }
  void on_delivery(const sim::Packet& p, TimePs delivered, TimePs latency) override {
    *os_ << "delivery," << delivered << ',' << p.id << ',' << p.task << ",,,,,,,," << latency
         << ",\n";
  }
  void on_drop(const sim::Packet& p, DropReason reason, TimePs when) override {
    *os_ << "drop," << when << ',' << p.id << ',' << p.task << ",,,,,,,,,"
         << drop_reason_name(reason) << '\n';
  }
  void on_link_state(topo::LinkId link, bool up, TimePs when) override {
    *os_ << "link_state," << when << ",,,,,,," << link << ",,,," << (up ? "up" : "down") << '\n';
  }
  void on_link_detected(topo::LinkId link, bool dead, TimePs when) override {
    *os_ << "link_detected," << when << ",,,,,,," << link << ",,,,"
         << (dead ? "dead" : "recovered") << '\n';
  }
  void on_link_degraded(topo::LinkId link, double loss_rate, TimePs when) override {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", loss_rate);
    *os_ << "link_degraded," << when << ",,,,,,," << link << ",,,," << buf << '\n';
  }
  void on_probe(topo::LinkId link, bool delivered, TimePs when) override {
    *os_ << "probe," << when << ",,,,,,," << link << ",,,," << (delivered ? "delivered" : "lost")
         << '\n';
  }
  void on_health_transition(topo::LinkId link, routing::LinkHealth from, routing::LinkHealth to,
                            TimePs when) override {
    *os_ << "health_transition," << when << ",,,,,,," << link << ",,,," << static_cast<int>(from)
         << "->" << static_cast<int>(to) << '\n';
  }
  void on_flap_damped(topo::LinkId link, TimePs suppressed_until, TimePs when) override {
    *os_ << "flap_damped," << when << ",,,,,,," << link << ",,," << suppressed_until << ",\n";
  }

 private:
  std::ostream* os_;
};

/// Counts events by type for --format=summary.
class CountingSink final : public TelemetrySink {
 public:
  void on_send(const sim::Packet&, TimePs) override { ++counts_["send"]; }
  void on_transmit(const sim::Packet&, topo::NodeId, topo::LinkId, int, TimePs, TimePs,
                   TimePs) override {
    ++counts_["transmit"];
  }
  void on_arrival(const sim::Packet&, topo::NodeId, TimePs, TimePs) override {
    ++counts_["arrival"];
  }
  void on_forward(const sim::Packet&, topo::NodeId, HopKind, TimePs, TimePs, TimePs) override {
    ++counts_["forward"];
  }
  void on_delivery(const sim::Packet&, TimePs, TimePs) override { ++counts_["delivery"]; }
  void on_drop(const sim::Packet&, DropReason, TimePs) override { ++counts_["drop"]; }
  void on_link_state(topo::LinkId, bool, TimePs) override { ++counts_["link_state"]; }
  void on_link_detected(topo::LinkId, bool, TimePs) override { ++counts_["link_detected"]; }
  void on_link_degraded(topo::LinkId, double, TimePs) override { ++counts_["link_degraded"]; }
  void on_probe(topo::LinkId, bool, TimePs) override { ++counts_["probe"]; }
  void on_health_transition(topo::LinkId, routing::LinkHealth, routing::LinkHealth,
                            TimePs) override {
    ++counts_["health_transition"];
  }
  void on_flap_damped(topo::LinkId, TimePs, TimePs) override { ++counts_["flap_damped"]; }

  const std::map<std::string, std::uint64_t>& counts() const { return counts_; }

 private:
  std::map<std::string, std::uint64_t> counts_;
};

void report_gaps(const DecodeStats& stats) {
  for (const StreamGap& gap : stats.gaps) {
    std::fprintf(stderr, "gap: file %zu offset %zu: %s\n", gap.file_index, gap.byte_offset,
                 gap.reason.c_str());
  }
}

}  // namespace

int run(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  const auto unknown = flags.unknown_keys({"format", "canonical", "out", "digest", "help"});
  if (!unknown.empty() || flags.get_bool("help")) {
    for (const auto& key : unknown) std::fprintf(stderr, "unknown flag --%s\n", key.c_str());
    return usage(argv[0]);
  }
  const std::string format = flags.get("format", "jsonl");
  if (format != "jsonl" && format != "csv" && format != "summary") {
    std::fprintf(stderr, "--format must be jsonl, csv or summary, got '%s'\n", format.c_str());
    return usage(argv[0]);
  }
  if (flags.positional().empty()) {
    std::fprintf(stderr, "no input files\n");
    return usage(argv[0]);
  }

  std::vector<std::ifstream> files;
  std::vector<std::istream*> inputs;
  for (const std::string& path : flags.positional()) {
    files.emplace_back(path, std::ios::binary);
    if (!files.back()) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 1;
    }
  }
  for (std::ifstream& f : files) inputs.push_back(&f);

  // Decode into a buffer first so --digest hashes exactly the bytes the
  // user receives, whatever the destination.
  std::ostringstream buffer;
  DecodeStats stats;
  CountingSink counter;
  DecodeOptions options;
  options.canonical = flags.get_bool("canonical");
  if (format == "jsonl") {
    JsonlEventWriter writer(buffer);
    std::vector<TelemetrySink*> sinks = {&writer};
    stats = decode_streams(inputs, sinks, options);
  } else if (format == "csv") {
    CsvEventWriter writer(buffer);
    std::vector<TelemetrySink*> sinks = {&writer};
    stats = decode_streams(inputs, sinks, options);
  } else {
    std::vector<TelemetrySink*> sinks = {&counter};
    stats = decode_streams(inputs, sinks, options);
    buffer << "streams: " << stats.streams << "\npages: " << stats.pages
           << "\nrecords: " << stats.records << "\nrecord_bytes: " << stats.record_bytes
           << "\norphan_records: " << stats.orphan_records << "\ngaps: " << stats.gaps.size()
           << '\n';
    for (const auto& [name, count] : counter.counts()) {
      buffer << "event." << name << ": " << count << '\n';
    }
  }
  report_gaps(stats);

  const std::string text = buffer.str();
  if (flags.has("out")) {
    const std::string path = flags.get("out");
    std::ofstream out(path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 1;
    }
    out.write(text.data(), static_cast<std::streamsize>(text.size()));
  } else {
    std::fwrite(text.data(), 1, text.size(), stdout);
  }
  if (flags.get_bool("digest")) {
    std::fprintf(stderr, "fnv1a:%016" PRIx64 "\n", fnv1a(text.data(), text.size()));
  }
  // Gaps are recoverable (that is the point of the page format), but a
  // stream that needed recovery should not look pristine in scripts.
  return stats.gaps.empty() ? 0 : 2;
}

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
