// Fault drill: what happens to a Quartz deployment when fibers break?
// Sweeps redundancy (1-4 physical rings) against simultaneous fiber
// cuts and reports bandwidth loss and partition risk (§3.5 / Fig. 6),
// plus a worked single-scenario narrative.
//
//   $ ./fault_drill [switches] [trials]
#include <cstdio>
#include <cstdlib>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "routing/oracle.hpp"
#include "sim/network.hpp"
#include "topo/failures.hpp"
#include "core/fault.hpp"
#include "wavelength/assign.hpp"
#include "wavelength/multiring.hpp"

int main(int argc, char** argv) {
  using namespace quartz;
  const int switches = argc > 1 ? std::atoi(argv[1]) : 33;
  const int trials = argc > 2 ? std::atoi(argv[2]) : 20'000;

  std::printf("Fault drill: %d-switch Quartz mesh, %d Monte Carlo trials/cell\n\n", switches,
              trials);

  Table table({"rings", "cuts", "bandwidth loss", "partition probability"});
  for (int rings = 1; rings <= 4; ++rings) {
    for (int cuts = 1; cuts <= 4; ++cuts) {
      core::FaultParams params;
      params.switches = switches;
      params.physical_rings = rings;
      params.failed_links = cuts;
      params.trials = trials;
      const auto r = core::analyze_faults(params);
      char loss[16], part[16];
      std::snprintf(loss, sizeof(loss), "%.1f%%", 100.0 * r.mean_bandwidth_loss);
      std::snprintf(part, sizeof(part), "%.4f", r.partition_probability);
      table.add_row({std::to_string(rings), std::to_string(cuts), loss, part});
    }
  }
  std::printf("%s\n", table.to_text().c_str());

  // A concrete scenario: cut segment 0 of ring 0 and see who suffers.
  const auto plan = wavelength::greedy_assign(switches);
  const int rings = wavelength::rings_required(plan.channels_used, 80);
  const auto trial = core::evaluate_failures(plan, rings, {{0, 0}});
  std::printf("concrete scenario: %d physical rings, one cut on ring 0 segment 0\n", rings);
  std::printf("  lightpaths lost: %d of %d (%.1f%%), partitioned: %s\n", trial.lost_lightpaths,
              trial.total_lightpaths,
              100.0 * trial.lost_lightpaths / trial.total_lightpaths,
              trial.partitioned ? "YES" : "no");
  std::printf(
      "  surviving pairs reach each other over multi-hop mesh routes;\n"
      "  §3.5's prescription: one extra ring makes partition negligible.\n\n");

  // Packet-level view of the same cut: rebuild the degraded fabric and
  // measure how much latency the multi-hop reroutes actually cost.
  if (switches <= 16) {
    topo::QuartzRingParams ring_params;
    ring_params.switches = switches;
    ring_params.hosts_per_switch = 2;
    const topo::BuiltTopology healthy = topo::quartz_ring(ring_params);
    const topo::BuiltTopology degraded = topo::survive_fiber_cuts(healthy, {{0, 0}});

    auto measure = [](const topo::BuiltTopology& fabric) {
      routing::EcmpRouting routing(fabric.graph);
      routing::EcmpOracle oracle(routing);
      sim::Network net(fabric, oracle);
      SampleSet samples;
      const int task = net.new_task(
          [&samples](const sim::Packet&, TimePs l) { samples.add(to_microseconds(l)); });
      Rng rng(7);
      for (int i = 0; i < 2'000; ++i) {
        net.at(microseconds(2) * i, [&net, &fabric, &rng, task] {
          const auto src = fabric.hosts[rng.next_below(fabric.hosts.size())];
          auto dst = fabric.hosts[rng.next_below(fabric.hosts.size())];
          while (dst == src) dst = fabric.hosts[rng.next_below(fabric.hosts.size())];
          net.send(src, dst, bytes(400), task, rng.next_u64());
        });
      }
      net.run_until(milliseconds(20));
      return std::pair{samples.mean(), samples.max()};
    };
    const auto [healthy_mean, healthy_max] = measure(healthy);
    const auto [degraded_mean, degraded_max] = measure(degraded);
    std::printf("packet-level cost of the cut (random traffic, ECMP reroute):\n");
    std::printf("  healthy : mean %.2f us, worst %.2f us\n", healthy_mean, healthy_max);
    std::printf("  degraded: mean %.2f us, worst %.2f us\n", degraded_mean, degraded_max);
    std::printf("  every packet still delivered; affected pairs pay one extra\n"
                "  cut-through hop (~0.4-0.7 us), nobody else pays anything.\n");
  }
  return 0;
}
