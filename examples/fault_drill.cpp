// Fault drill: what happens to a Quartz deployment when fibers break?
// Sweeps redundancy (1-4 physical rings) against simultaneous fiber
// cuts and reports bandwidth loss and partition risk (§3.5 / Fig. 6),
// plus a worked single-scenario narrative — first statically (rebuild
// the degraded fabric), then live (inject the cut into a running
// simulation and watch detection, reroute and repair).
//
// Two optional drills cover the failures a fixed-delay liveness
// detector cannot express: --gray ages a transceiver into a partially
// corrupting lightpath, --flap oscillates one faster than detection
// converges; both duel the probe-based HealthMonitor against the
// fixed-delay baseline.
//
//   $ ./fault_drill [--switches=N] [--trials=N] [--metrics-out=FILE] [--gray] [--flap]
//   $ ./fault_drill 8 1000          # positional form still accepted
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <functional>

#include "common/flags.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "optical/budget.hpp"
#include "routing/health_monitor.hpp"
#include "routing/oracle.hpp"
#include "sim/fault_injection.hpp"
#include "sim/network.hpp"
#include "sim/probes.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/sampler.hpp"
#include "topo/failures.hpp"
#include "core/fault.hpp"
#include "wavelength/assign.hpp"
#include "wavelength/multiring.hpp"

namespace {

bool parse_int_at_least(const char* text, int minimum, int* out) {
  char* end = nullptr;
  const long value = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || value < minimum || value > 1'000'000'000) return false;
  *out = static_cast<int>(value);
  return true;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--switches=N>=4] [--trials=N>=1] [--metrics-out=FILE]"
               " [--gray] [--flap]\n"
               "       %s [switches >= 4] [trials >= 1]\n"
               "  --gray  drill a transceiver aging into partial corruption\n"
               "  --flap  drill a lightpath flapping faster than detection\n",
               argv0, argv0);
  return 1;
}

struct DuelResult {
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t deaths = 0;
  std::uint64_t damped = 0;
  std::uint64_t lossy = 0;
};

quartz::topo::NodeId first_host(const quartz::topo::BuiltTopology& t, quartz::topo::NodeId sw) {
  for (const auto& adj : t.graph.neighbors(sw)) {
    if (t.graph.is_host(adj.peer)) return adj.peer;
  }
  return quartz::topo::kInvalidNode;
}

/// One 2000-packet flow pinned across ring 0 segment 0, routed either
/// by the probe-based HealthMonitor (monitored) or by the 500 us
/// fixed-delay failure view; the caller injects the fault.
DuelResult run_health_duel(
    const quartz::topo::BuiltTopology& t, bool monitored, int dead_after_misses,
    const std::function<void(quartz::sim::FaultScheduler&, quartz::topo::LinkId)>& inject) {
  using namespace quartz;
  routing::EcmpRouting ecmp(t.graph);
  routing::EcmpOracle oracle(ecmp);
  sim::SimConfig config;
  if (!monitored) config.failure_detection_delay = microseconds(500);
  sim::Network net(t, oracle, config);

  routing::HealthMonitorConfig mc;
  mc.dead_after_misses = dead_after_misses;
  mc.hold_down = microseconds(200);
  mc.hold_down_cap = milliseconds(20);
  mc.flap_memory = milliseconds(10);
  routing::HealthMonitor monitor(t.graph.link_count(), mc);
  telemetry::FaultTimeline timeline;
  net.add_sink(&timeline);
  sim::ProbePlane::Options po;
  po.interval = microseconds(10);
  po.stop = milliseconds(120);
  sim::ProbePlane probes(net, monitor, po);
  if (monitored) {
    oracle.attach_failure_view(&monitor.view());
    oracle.attach_loss_view(&monitor);
    probes.start();
  } else {
    oracle.attach_failure_view(&net.failure_view());
  }

  const topo::LinkId victim = topo::severed_links(t, {{0, 0}}).front();
  const topo::Link& link = t.graph.link(victim);
  const topo::NodeId src = first_host(t, link.a);
  const topo::NodeId dst = first_host(t, link.b);
  const int task = net.new_task({});
  for (int i = 0; i < 2'000; ++i) {
    net.at(microseconds(50) * i, [&net, src, dst, task] {
      net.send(src, dst, bytes(400), task, 99);  // one flow, stable hash
    });
  }
  sim::FaultScheduler faults(net);
  inject(faults, victim);
  net.run_until(milliseconds(200));
  return {net.packets_delivered(), net.packets_dropped(), monitor.deaths(),
          monitor.damped_recoveries(), timeline.lossy_detections()};
}

}  // namespace

int run(int argc, char** argv) {
  using namespace quartz;
  const Flags flags = Flags::parse(argc, argv);
  for (const auto& key : flags.unknown_keys({"switches", "trials", "metrics-out", "gray", "flap"})) {
    std::fprintf(stderr, "unknown flag --%s\n", key.c_str());
    return usage(argv[0]);
  }
  int switches = 33;
  int trials = 20'000;
  // The redundancy sweep cuts up to 4 fibers of a single ring, so the
  // ring needs at least 4 segments.  Positional [switches] [trials]
  // stays accepted alongside the flag form.
  const auto& positional = flags.positional();
  if ((positional.size() > 0 && !parse_int_at_least(positional[0].c_str(), 4, &switches)) ||
      (positional.size() > 1 && !parse_int_at_least(positional[1].c_str(), 1, &trials)) ||
      positional.size() > 2) {
    return usage(argv[0]);
  }
  if (flags.has("switches")) switches = static_cast<int>(flags.get_int("switches", switches));
  if (flags.has("trials")) trials = static_cast<int>(flags.get_int("trials", trials));
  if (switches < 4 || trials < 1) return usage(argv[0]);
  telemetry::MetricRegistry metrics(flags.has("metrics-out"));

  std::printf("Fault drill: %d-switch Quartz mesh, %d Monte Carlo trials/cell\n\n", switches,
              trials);

  Table table({"rings", "cuts", "bandwidth loss", "partition probability"});
  for (int rings = 1; rings <= 4; ++rings) {
    for (int cuts = 1; cuts <= 4; ++cuts) {
      core::FaultParams params;
      params.switches = switches;
      params.physical_rings = rings;
      params.failed_links = cuts;
      params.trials = trials;
      const auto r = core::analyze_faults(params);
      char loss[16], part[16];
      std::snprintf(loss, sizeof(loss), "%.1f%%", 100.0 * r.mean_bandwidth_loss);
      std::snprintf(part, sizeof(part), "%.4f", r.partition_probability);
      table.add_row({std::to_string(rings), std::to_string(cuts), loss, part});
    }
  }
  std::printf("%s\n", table.to_text().c_str());

  // A concrete scenario: cut segment 0 of ring 0 and see who suffers.
  const auto plan = wavelength::greedy_assign(switches);
  const int rings = wavelength::rings_required(plan.channels_used, 80);
  const auto trial = core::evaluate_failures(plan, rings, {{0, 0}});
  std::printf("concrete scenario: %d physical rings, one cut on ring 0 segment 0\n", rings);
  std::printf("  lightpaths lost: %d of %d (%.1f%%), partitioned: %s\n", trial.lost_lightpaths,
              trial.total_lightpaths,
              100.0 * trial.lost_lightpaths / trial.total_lightpaths,
              trial.partitioned ? "YES" : "no");
  std::printf(
      "  surviving pairs reach each other over multi-hop mesh routes;\n"
      "  §3.5's prescription: one extra ring makes partition negligible.\n\n");

  // Packet-level view of the same cut: rebuild the degraded fabric and
  // measure how much latency the multi-hop reroutes actually cost.
  if (switches <= 16) {
    topo::QuartzRingParams ring_params;
    ring_params.switches = switches;
    ring_params.hosts_per_switch = 2;
    const topo::BuiltTopology healthy = topo::quartz_ring(ring_params);
    topo::SurvivalOutcome outcome = topo::try_survive_fiber_cuts(healthy, {{0, 0}});
    std::printf("packet-level cost of the cut (random traffic, ECMP reroute):\n");
    std::printf("  the cut severs %zu lightpaths; mesh %s (%d component%s)\n", outcome.severed,
                outcome.partitioned ? "PARTITIONED" : "still connected", outcome.components,
                outcome.components == 1 ? "" : "s");
    if (outcome.partitioned) {
      std::printf("  cannot measure reroutes on a partitioned mesh; add a ring.\n");
    } else {
      auto measure = [](const topo::BuiltTopology& fabric) {
        routing::EcmpRouting routing(fabric.graph);
        routing::EcmpOracle oracle(routing);
        sim::Network net(fabric, oracle);
        SampleSet samples;
        const int task = net.new_task(
            [&samples](const sim::Packet&, TimePs l) { samples.add(to_microseconds(l)); });
        Rng rng(7);
        for (int i = 0; i < 2'000; ++i) {
          net.at(microseconds(2) * i, [&net, &fabric, &rng, task] {
            const auto src = fabric.hosts[rng.next_below(fabric.hosts.size())];
            auto dst = fabric.hosts[rng.next_below(fabric.hosts.size())];
            while (dst == src) dst = fabric.hosts[rng.next_below(fabric.hosts.size())];
            net.send(src, dst, bytes(400), task, rng.next_u64());
          });
        }
        net.run_until(milliseconds(20));
        return std::pair{samples.mean(), samples.max()};
      };
      const auto [healthy_mean, healthy_max] = measure(healthy);
      const auto [degraded_mean, degraded_max] = measure(outcome.degraded);
      std::printf("  healthy : mean %.2f us, worst %.2f us\n", healthy_mean, healthy_max);
      std::printf("  degraded: mean %.2f us, worst %.2f us\n", degraded_mean, degraded_max);
      std::printf("  every packet still delivered; affected pairs pay one extra\n"
                  "  cut-through hop (~0.4-0.7 us), nobody else pays anything.\n\n");
    }

    // Live drill: the same cut injected into the RUNNING fabric — cut
    // at 1 s, detected 50 ms later, repaired at 3 s.  During the
    // detection window packets forwarded onto the severed lightpaths
    // are lost; afterwards flows ride two-hop detours until repair.
    routing::EcmpRouting live_routing(healthy.graph);
    routing::EcmpOracle live_oracle(live_routing);
    sim::SimConfig config;
    config.failure_detection_delay = milliseconds(50);
    sim::Network net(healthy, live_oracle, config);
    live_oracle.attach_failure_view(&net.failure_view());
    telemetry::FaultTimeline timeline;
    net.add_sink(&timeline);
    const int task = net.new_task({});
    Rng rng(11);
    for (int i = 0; i < 40'000; ++i) {
      net.at(microseconds(100) * i, [&net, &healthy, &rng, task] {
        const auto src = healthy.hosts[rng.next_below(healthy.hosts.size())];
        auto dst = healthy.hosts[rng.next_below(healthy.hosts.size())];
        while (dst == src) dst = healthy.hosts[rng.next_below(healthy.hosts.size())];
        net.send(src, dst, bytes(400), task, rng.next_u64());
      });
    }
    sim::FaultScheduler faults(net);
    faults.schedule_fiber_cut(seconds(1), {0, 0}, seconds(3));
    net.run_until(seconds(4));
    std::printf("live drill (cut at 1 s, 50 ms detection, repair at 3 s):\n");
    std::printf("  %llu link failures injected, %llu repairs\n",
                static_cast<unsigned long long>(net.link_failures()),
                static_cast<unsigned long long>(net.link_repairs()));
    std::printf("  sent %llu, delivered %llu, lost to the dead links %llu, overflow %llu\n",
                static_cast<unsigned long long>(net.packets_sent()),
                static_cast<unsigned long long>(net.packets_delivered()),
                static_cast<unsigned long long>(
                    net.packets_dropped(sim::DropReason::kLinkDown)),
                static_cast<unsigned long long>(
                    net.packets_dropped(sim::DropReason::kQueueOverflow)));
    std::printf("  loss is confined to the two 50 ms detection windows; the\n"
                "  self-healed detours carry everything else.\n");
    std::printf("  timeline: %llu cuts, %llu repairs, %llu detections,"
                " mean detection lag %.0f us\n",
                static_cast<unsigned long long>(timeline.cuts()),
                static_cast<unsigned long long>(timeline.repairs()),
                static_cast<unsigned long long>(timeline.detections()),
                timeline.mean_detection_lag_us());
    if (metrics.enabled()) {
      faults.publish_metrics(metrics, "drill");
      metrics.counter("drill.packets_sent").inc(net.packets_sent());
      metrics.counter("drill.packets_delivered").inc(net.packets_delivered());
      metrics.counter("drill.drops.link_down")
          .inc(net.packets_dropped(sim::DropReason::kLinkDown));
      metrics.gauge("drill.mean_detection_lag_us").set(timeline.mean_detection_lag_us());
    }
  }
  // Optional drills on the failures the fixed-delay detector cannot
  // express.  They run on a packet-simulable fabric: the requested size
  // when small enough, a representative 8-ring otherwise.
  const int drill_switches = switches <= 16 ? switches : 8;
  topo::QuartzRingParams drill_params;
  drill_params.switches = drill_switches;
  drill_params.hosts_per_switch = 2;

  if (flags.get_bool("gray")) {
    const topo::BuiltTopology fabric = topo::quartz_ring(drill_params);
    optical::RingBudgetParams op;
    op.ring_size = static_cast<std::size_t>(drill_switches);
    op.transceiver = optical::TransceiverSpec::dwdm_10g();
    op.mux = optical::MuxDemuxSpec::dwdm_80ch();
    op.amplifier = optical::AmplifierSpec::edfa_80ch();
    const optical::AmplifierPlan amp_plan = optical::plan_ring_amplifiers(op);
    if (!amp_plan.feasible) {
      std::fprintf(stderr, "optical budget for a %d-ring does not close\n", drill_switches);
      return 1;
    }
    const double margin = optical::worst_case_margin_db(op, amp_plan);
    const double drop_p = optical::degraded_drop_probability(op, amp_plan, margin + 2.5);
    std::printf("\ngray-failure drill (%d-switch fabric):\n", drill_switches);
    std::printf("  a transceiver ages 2.5 dB below sensitivity; the optical budget\n"
                "  (margin %.2f dB -> Q -> BER) prices that at drop probability %.3f.\n",
                margin, drop_p);
    const auto inject = [drop_p](sim::FaultScheduler& faults, topo::LinkId victim) {
      faults.schedule_transceiver_aging(milliseconds(5), victim, drop_p, milliseconds(120));
    };
    // 10-miss death so partial loss reads as lossy rather than dead.
    const DuelResult blind = run_health_duel(fabric, false, 10, inject);
    const DuelResult seen = run_health_duel(fabric, true, 10, inject);
    std::printf("  fixed-delay detector (loss-blind): delivered %llu / 2000, corrupted %llu\n",
                static_cast<unsigned long long>(blind.delivered),
                static_cast<unsigned long long>(blind.dropped));
    std::printf("  probe monitor: delivered %llu / 2000, corrupted %llu,"
                " %llu lossy detections\n",
                static_cast<unsigned long long>(seen.delivered),
                static_cast<unsigned long long>(seen.dropped),
                static_cast<unsigned long long>(seen.lossy));
    std::printf("  the monitor reads the loss EWMA off its probes and deflects the\n"
                "  flow onto clean two-hop detours; binary liveness never fires.\n");
    if (metrics.enabled()) {
      metrics.counter("drill.gray.blind_delivered").inc(blind.delivered);
      metrics.counter("drill.gray.monitor_delivered").inc(seen.delivered);
      metrics.counter("drill.gray.lossy_detections").inc(seen.lossy);
    }
  }

  if (flags.get_bool("flap")) {
    const topo::BuiltTopology fabric = topo::quartz_ring(drill_params);
    std::printf("\nflapping-lightpath drill (%d-switch fabric):\n", drill_switches);
    std::printf("  100 cycles of 300 us down / 200 us up against a 500 us detector.\n");
    const auto inject = [](sim::FaultScheduler& faults, topo::LinkId victim) {
      faults.schedule_flapping(milliseconds(5), victim, microseconds(300), microseconds(200),
                               100);
    };
    const DuelResult fixed = run_health_duel(fabric, false, 3, inject);
    const DuelResult damped = run_health_duel(fabric, true, 3, inject);
    std::printf("  fixed-delay detector (undamped): delivered %llu / 2000, blackholed %llu\n",
                static_cast<unsigned long long>(fixed.delivered),
                static_cast<unsigned long long>(fixed.dropped));
    std::printf("  probe monitor + damping: delivered %llu / 2000, dropped %llu\n"
                "  (%llu deaths, %llu recoveries suppressed by the doubling hold-down)\n",
                static_cast<unsigned long long>(damped.delivered),
                static_cast<unsigned long long>(damped.dropped),
                static_cast<unsigned long long>(damped.deaths),
                static_cast<unsigned long long>(damped.damped));
    std::printf("  damping pins the oscillating link dead so traffic rides stable\n"
                "  detours instead of blackholing every down window.\n");
    if (metrics.enabled()) {
      metrics.counter("drill.flap.fixed_delivered").inc(fixed.delivered);
      metrics.counter("drill.flap.damped_delivered").inc(damped.delivered);
      metrics.counter("drill.flap.damped_recoveries").inc(damped.damped);
    }
  }

  if (metrics.enabled()) {
    const std::string path = flags.get("metrics-out");
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 1;
    }
    metrics.write_csv(out);
    std::printf("metrics: %s\n", path.c_str());
  }
  return 0;
}

int main(int argc, char** argv) {
  // Examples never throw on bad argv: surface the parse error and the
  // usage text instead of an abort.
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
