// Latency study: run the §7 workloads (scatter / gather / RPC) on a
// three-tier tree and on Quartz-in-edge-and-core, side by side, and
// break the difference down — the paper's headline "Quartz halves
// end-to-end latency" demonstrated on the public API.
//
//   $ ./latency_study [--tasks=N] [--duration-ms=D]
//   $ ./latency_study --trace                # adds the per-component breakdown
//   $ ./latency_study --metrics-out=m.csv    # dumps the metric registry
#include <chrono>
#include <cstdio>
#include <exception>
#include <cstdlib>
#include <fstream>
#include <utility>

#include "chaos/sharded_storm.hpp"
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/flags.hpp"
#include "common/table.hpp"
#include "sim/experiments.hpp"
#include "topo/composite.hpp"
#include "sim/sweep.hpp"
#include "sim/workloads.hpp"
#include "telemetry/binary_stream.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "topo/properties.hpp"

namespace {

using namespace quartz;
using namespace quartz::sim;

std::string fmt(double v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

}  // namespace

int run(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  const auto unknown =
      flags.unknown_keys({"tasks", "duration-ms", "trace", "sample-every", "metrics-out",
                          "jobs", "shards", "fib", "telemetry", "topology", "help"});
  if (!unknown.empty() || flags.get_bool("help")) {
    for (const auto& key : unknown) std::printf("unknown flag --%s\n", key.c_str());
    std::printf(
        "usage: %s [--tasks=N] [--duration-ms=D] [--trace] [--sample-every=N]\n"
        "          [--metrics-out=FILE] [--jobs=N] [--shards=N] [--fib=on|off]\n"
        "          [--telemetry=binary|jsonl|off] [--topology=composite:SPEC]\n"
        "\n"
        "  --topology=composite:SPEC  add a hierarchical composed fabric as a\n"
        "            third study column; SPEC is kind:D0xD1[...][@h][+m], e.g.\n"
        "            composite:ring-of-rings:4x4@2 (see docs/scale.md)\n"
        "  --telemetry=binary  capture every cell's event stream as compact\n"
        "            binary records in <metrics-out>.qtz (decode with\n"
        "            quartz_decode)\n"
        "  --telemetry=jsonl   mirror events as JSON lines in\n"
        "            <metrics-out>.events.jsonl (needs --jobs=1)\n"
        "  --jobs=N  worker threads for the pattern x fabric sweep (0 = all\n"
        "            hardware threads); results are byte-identical for every\n"
        "            value.  --metrics-out needs --jobs=1 (the registry is\n"
        "            thread-confined).\n"
        "  --shards=N  append a parallel-engine cross-check: run the composite\n"
        "            column's fabric through the intra-run sharded engine at\n"
        "            1 and N shards and verify the delivery digests match\n"
        "            (needs --topology=composite:SPEC; see docs/performance.md)\n"
        "  --fib=on|off  route through the compiled FIB (default on); results\n"
        "            are bit-identical either way, only speed differs.\n",
        argv[0]);
    return unknown.empty() ? 0 : 1;
  }
  const std::string fib_mode = flags.get("fib", "on");
  if (fib_mode != "on" && fib_mode != "off") {
    std::printf("--fib must be 'on' or 'off', got '%s'\n", fib_mode.c_str());
    return 1;
  }
  std::string composite_spec;
  if (flags.has("topology")) {
    const std::string topology = flags.get("topology");
    constexpr std::string_view kPrefix = "composite:";
    if (topology.rfind(kPrefix, 0) != 0) {
      std::printf("--topology only knows composite:<spec>, got '%s'\n", topology.c_str());
      return 1;
    }
    composite_spec = topology.substr(kPrefix.size());
    std::string spec_error;
    if (!topo::CompositeSpec::parse(composite_spec, &spec_error).has_value()) {
      std::printf("bad composite spec '%s': %s\n", composite_spec.c_str(), spec_error.c_str());
      return 1;
    }
  }
  // Positional task count kept for compatibility with the old argv form.
  int positional_tasks = 4;
  if (!flags.positional().empty()) {
    char* end = nullptr;
    const long v = std::strtol(flags.positional().front().c_str(), &end, 10);
    if (end == flags.positional().front().c_str() || *end != '\0') {
      std::printf("task count must be an integer, got '%s'\n",
                  flags.positional().front().c_str());
      return 1;
    }
    positional_tasks = static_cast<int>(v);
  }
  const int tasks = static_cast<int>(flags.get_int("tasks", positional_tasks));
  const int shards = static_cast<int>(flags.get_int("shards", 1));
  if (shards < 1) {
    std::printf("--shards must be positive, got %d\n", shards);
    return 1;
  }
  if (shards > 1 && composite_spec.empty()) {
    std::printf("--shards=%d needs --topology=composite:SPEC (the sharded engine\n"
                "partitions one composed element per core)\n",
                shards);
    return 1;
  }
  const std::int64_t duration_ms = flags.get_int("duration-ms", 10);
  const bool trace = flags.get_bool("trace");
  const int jobs = static_cast<int>(flags.get_int("jobs", 1));
  if (tasks < 1 || duration_ms < 1 || flags.get_int("sample-every", 1) < 1 || jobs < 0) {
    std::printf("--tasks, --duration-ms and --sample-every must be positive\n");
    return 1;
  }
  telemetry::MetricRegistry metrics(flags.has("metrics-out"));
  if (metrics.enabled() && sim::resolve_jobs(jobs) > 1) {
    // A MetricRegistry is thread-confined; sweep workers cannot share it.
    std::printf("--metrics-out requires --jobs=1\n");
    return 1;
  }
  const std::string telemetry_mode = flags.get("telemetry", "off");
  if (telemetry_mode != "off" && telemetry_mode != "binary" && telemetry_mode != "jsonl") {
    std::printf("--telemetry must be binary, jsonl or off, got '%s'\n", telemetry_mode.c_str());
    return 1;
  }
  if (telemetry_mode != "off" && !flags.has("metrics-out")) {
    std::printf("--telemetry=%s needs --metrics-out to derive its output path\n",
                telemetry_mode.c_str());
    return 1;
  }
  if (telemetry_mode == "jsonl" && sim::resolve_jobs(jobs) > 1) {
    std::printf("--telemetry=jsonl requires --jobs=1\n");
    return 1;
  }
  std::ofstream stream_os;
  std::unique_ptr<telemetry::StreamFile> stream_file;
  std::ofstream events_os;
  std::string stream_path;
  std::string events_path;
  if (telemetry_mode == "binary") {
    stream_path = flags.get("metrics-out") + ".qtz";
    stream_os.open(stream_path, std::ios::binary);
    if (!stream_os) {
      std::fprintf(stderr, "cannot open %s\n", stream_path.c_str());
      return 1;
    }
    stream_file = std::make_unique<telemetry::StreamFile>(stream_os);
  } else if (telemetry_mode == "jsonl") {
    events_path = flags.get("metrics-out") + ".events.jsonl";
    events_os.open(events_path);
    if (!events_os) {
      std::fprintf(stderr, "cannot open %s\n", events_path.c_str());
      return 1;
    }
  }

  std::printf("Latency study: %d concurrent tasks per pattern, 64-host fabrics\n\n", tasks);

  // The studied fabrics, in column order; --topology appends a composed
  // fabric as a third column.
  struct StudyFabric {
    std::string label;
    Fabric fabric;
  };
  std::vector<StudyFabric> study = {{"three-tier tree", Fabric::kThreeTierTree},
                                    {"quartz edge+core", Fabric::kQuartzInEdgeAndCore}};
  if (!composite_spec.empty()) study.push_back({"composite", Fabric::kComposite});
  FabricConfig fabric_config;
  fabric_config.use_fib = fib_mode == "on";
  if (!composite_spec.empty()) fabric_config.composite = composite_spec;

  // ---- topology-level view --------------------------------------------
  {
    std::vector<std::string> header = {"metric"};
    for (const auto& f : study) header.push_back(f.label);
    Table table(header);
    std::vector<topo::TopologyProperties> props;
    for (const auto& f : study) props.push_back(topo::analyze(build_fabric(f.fabric, fabric_config).topo));
    auto row = [&](const std::string& metric, auto&& value) {
      std::vector<std::string> cells = {metric};
      for (const auto& p : props) cells.push_back(value(p));
      table.add_row(cells);
    };
    row("switches", [](const auto& p) { return std::to_string(p.switch_count); });
    row("worst switch hops", [](const auto& p) { return std::to_string(p.switch_hops); });
    row("zero-load latency", [](const auto& p) { return format_time(p.zero_load_latency); });
    row("path diversity", [](const auto& p) { return std::to_string(p.path_diversity); });
    std::printf("structure:\n%s\n", table.to_text().c_str());
  }

  // ---- workload-level view ---------------------------------------------
  std::vector<std::string> header = {"pattern"};
  for (const auto& f : study) header.push_back(f.label + " mean (us)");
  for (const auto& f : study) header.push_back(f.label + " p99");
  header.push_back("reduction");
  Table table(header);
  Table breakdown({"pattern", "fabric", "host (us)", "queueing (us)", "serialization (us)",
                   "switching (us)", "propagation (us)", "total (us)"});
  const std::vector<Pattern> patterns{Pattern::kScatter, Pattern::kGather,
                                      Pattern::kScatterGather};
  struct Cell {
    Pattern pattern;
    Fabric fabric;
  };
  std::vector<Cell> cells;
  for (Pattern pattern : patterns) {
    for (const auto& f : study) cells.push_back({pattern, f.fabric});
  }
  const std::uint32_t sample_every =
      static_cast<std::uint32_t>(flags.get_int("sample-every", 1));
  telemetry::MetricRegistry* registry = metrics.enabled() ? &metrics : nullptr;
  sim::SweepRunner runner({jobs, 1});
  const auto results = runner.run(cells, [&](const Cell& cell, sim::SweepContext ctx) {
    TaskExperimentParams params;
    params.pattern = cell.pattern;
    params.tasks = tasks;
    params.duration = milliseconds(duration_ms);
    params.telemetry.trace = trace;
    params.telemetry.trace_sample_every = sample_every;
    params.telemetry.metrics = registry;  // nonnull only when jobs == 1
    if (stream_file != nullptr) {
      // One stream per sweep cell; the shared StreamFile serializes page
      // appends, so any --jobs value writes the same decodable file.
      params.telemetry.stream = stream_file.get();
      params.telemetry.stream_id = static_cast<std::uint32_t>(ctx.index);
    }
    if (events_os.is_open()) params.telemetry.events_jsonl = &events_os;  // jobs == 1 only
    return run_task_experiment(cell.fabric, fabric_config, params);
  });
  const std::size_t columns = study.size();
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    const Pattern pattern = patterns[i];
    const auto* row = &results[columns * i];  // fabric-major within the pattern
    char red[16];
    // The headline reduction stays tree vs quartz edge+core.
    std::snprintf(red, sizeof(red), "%.0f%%",
                  100.0 * (1.0 - row[1].mean_latency_us / row[0].mean_latency_us));
    std::vector<std::string> line = {pattern_name(pattern)};
    for (std::size_t f = 0; f < columns; ++f) line.push_back(fmt(row[f].mean_latency_us));
    for (std::size_t f = 0; f < columns; ++f) line.push_back(fmt(row[f].p99_latency_us));
    line.push_back(red);
    table.add_row(line);
    if (trace) {
      for (std::size_t f = 0; f < columns; ++f) {
        const auto& d = row[f].decomposition;
        breakdown.add_row({pattern_name(pattern), study[f].label, fmt(d.host_us),
                           fmt(d.queueing_us), fmt(d.serialization_us), fmt(d.switching_us),
                           fmt(d.propagation_us), fmt(d.total_us)});
      }
    }
  }
  std::printf("workloads (mean latency per packet):\n%s\n", table.to_text().c_str());
  if (trace) {
    std::printf("per-packet latency decomposition (sampled 1/%lld packets):\n%s\n",
                static_cast<long long>(flags.get_int("sample-every", 1)),
                breakdown.to_text().c_str());
  }

  std::printf(
      "where the gap comes from: the tree's cross-pod paths traverse a 6 us\n"
      "store-and-forward core plus two shared aggregation hops; the Quartz\n"
      "design rides dedicated cut-through lightpaths end to end.\n");

  if (shards > 1) {
    // Parallel-engine cross-check: the composite fabric through the
    // intra-run sharded engine, serial vs sharded, digests compared.
    chaos::ShardedStormParams storm;
    storm.composite = composite_spec;
    storm.cuts = 0;
    storm.gray_links = 0;
    storm.flapping_links = 0;
    storm.storm_start = 0;
    storm.storm_end = 0;
    storm.shards = 1;
    auto timed = [&storm] {
      const auto start = std::chrono::steady_clock::now();
      const chaos::ShardedStormResult result = chaos::run_sharded_storm(storm);
      const double wall =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
      return std::make_pair(result, wall);
    };
    const auto [serial, serial_wall] = timed();
    storm.shards = shards;
    const auto [sharded, sharded_wall] = timed();
    const bool match = serial.delivery_digest == sharded.delivery_digest &&
                       serial.drop_digest == sharded.drop_digest;
    std::printf("\nparallel engine (%s, %s partition, lookahead %.0f ns):\n",
                composite_spec.c_str(), sharded.strategy.c_str(),
                static_cast<double>(sharded.lookahead) * 1e-3);
    std::printf("  shards=1: %.0f events/s   shards=%d: %.0f events/s\n",
                serial_wall > 0 ? static_cast<double>(serial.events) / serial_wall : 0.0,
                shards,
                sharded_wall > 0 ? static_cast<double>(sharded.events) / sharded_wall : 0.0);
    std::printf("  delivery digest %016llx %s\n",
                static_cast<unsigned long long>(sharded.delivery_digest),
                match ? "(byte-identical to serial)" : "(MISMATCH vs serial)");
    if (!match) return 1;
  }

  if (metrics.enabled()) {
    const std::string path = flags.get("metrics-out");
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 1;
    }
    metrics.write_csv(out);
    std::printf("metrics: %s\n", path.c_str());
  }
  if (stream_file != nullptr) {
    stream_os.flush();
    std::printf("event stream: %s (%llu pages, %llu bytes)\n", stream_path.c_str(),
                static_cast<unsigned long long>(stream_file->pages()),
                static_cast<unsigned long long>(stream_file->bytes()));
  }
  if (events_os.is_open()) {
    events_os.flush();
    std::printf("events: %s\n", events_path.c_str());
  }
  return 0;
}

int main(int argc, char** argv) {
  // Examples never throw on bad argv: surface the parse error and the
  // usage text instead of an abort.
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
