// Latency study: run the §7 workloads (scatter / gather / RPC) on a
// three-tier tree and on Quartz-in-edge-and-core, side by side, and
// break the difference down — the paper's headline "Quartz halves
// end-to-end latency" demonstrated on the public API.
//
//   $ ./latency_study [--tasks=N] [--duration-ms=D]
//   $ ./latency_study --trace                # adds the per-component breakdown
//   $ ./latency_study --metrics-out=m.csv    # dumps the metric registry
#include <cstdio>
#include <exception>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/flags.hpp"
#include "common/table.hpp"
#include "sim/experiments.hpp"
#include "sim/sweep.hpp"
#include "sim/workloads.hpp"
#include "telemetry/binary_stream.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "topo/properties.hpp"

namespace {

using namespace quartz;
using namespace quartz::sim;

std::string fmt(double v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

}  // namespace

int run(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  const auto unknown = flags.unknown_keys({"tasks", "duration-ms", "trace", "sample-every",
                                           "metrics-out", "jobs", "fib", "telemetry", "help"});
  if (!unknown.empty() || flags.get_bool("help")) {
    for (const auto& key : unknown) std::printf("unknown flag --%s\n", key.c_str());
    std::printf(
        "usage: %s [--tasks=N] [--duration-ms=D] [--trace] [--sample-every=N]\n"
        "          [--metrics-out=FILE] [--jobs=N] [--fib=on|off]\n"
        "          [--telemetry=binary|jsonl|off]\n"
        "\n"
        "  --telemetry=binary  capture every cell's event stream as compact\n"
        "            binary records in <metrics-out>.qtz (decode with\n"
        "            quartz_decode)\n"
        "  --telemetry=jsonl   mirror events as JSON lines in\n"
        "            <metrics-out>.events.jsonl (needs --jobs=1)\n"
        "  --jobs=N  worker threads for the pattern x fabric sweep (0 = all\n"
        "            hardware threads); results are byte-identical for every\n"
        "            value.  --metrics-out needs --jobs=1 (the registry is\n"
        "            thread-confined).\n"
        "  --fib=on|off  route through the compiled FIB (default on); results\n"
        "            are bit-identical either way, only speed differs.\n",
        argv[0]);
    return unknown.empty() ? 0 : 1;
  }
  const std::string fib_mode = flags.get("fib", "on");
  if (fib_mode != "on" && fib_mode != "off") {
    std::printf("--fib must be 'on' or 'off', got '%s'\n", fib_mode.c_str());
    return 1;
  }
  // Positional task count kept for compatibility with the old argv form.
  int positional_tasks = 4;
  if (!flags.positional().empty()) {
    char* end = nullptr;
    const long v = std::strtol(flags.positional().front().c_str(), &end, 10);
    if (end == flags.positional().front().c_str() || *end != '\0') {
      std::printf("task count must be an integer, got '%s'\n",
                  flags.positional().front().c_str());
      return 1;
    }
    positional_tasks = static_cast<int>(v);
  }
  const int tasks = static_cast<int>(flags.get_int("tasks", positional_tasks));
  const std::int64_t duration_ms = flags.get_int("duration-ms", 10);
  const bool trace = flags.get_bool("trace");
  const int jobs = static_cast<int>(flags.get_int("jobs", 1));
  if (tasks < 1 || duration_ms < 1 || flags.get_int("sample-every", 1) < 1 || jobs < 0) {
    std::printf("--tasks, --duration-ms and --sample-every must be positive\n");
    return 1;
  }
  telemetry::MetricRegistry metrics(flags.has("metrics-out"));
  if (metrics.enabled() && sim::resolve_jobs(jobs) > 1) {
    // A MetricRegistry is thread-confined; sweep workers cannot share it.
    std::printf("--metrics-out requires --jobs=1\n");
    return 1;
  }
  const std::string telemetry_mode = flags.get("telemetry", "off");
  if (telemetry_mode != "off" && telemetry_mode != "binary" && telemetry_mode != "jsonl") {
    std::printf("--telemetry must be binary, jsonl or off, got '%s'\n", telemetry_mode.c_str());
    return 1;
  }
  if (telemetry_mode != "off" && !flags.has("metrics-out")) {
    std::printf("--telemetry=%s needs --metrics-out to derive its output path\n",
                telemetry_mode.c_str());
    return 1;
  }
  if (telemetry_mode == "jsonl" && sim::resolve_jobs(jobs) > 1) {
    std::printf("--telemetry=jsonl requires --jobs=1\n");
    return 1;
  }
  std::ofstream stream_os;
  std::unique_ptr<telemetry::StreamFile> stream_file;
  std::ofstream events_os;
  std::string stream_path;
  std::string events_path;
  if (telemetry_mode == "binary") {
    stream_path = flags.get("metrics-out") + ".qtz";
    stream_os.open(stream_path, std::ios::binary);
    if (!stream_os) {
      std::fprintf(stderr, "cannot open %s\n", stream_path.c_str());
      return 1;
    }
    stream_file = std::make_unique<telemetry::StreamFile>(stream_os);
  } else if (telemetry_mode == "jsonl") {
    events_path = flags.get("metrics-out") + ".events.jsonl";
    events_os.open(events_path);
    if (!events_os) {
      std::fprintf(stderr, "cannot open %s\n", events_path.c_str());
      return 1;
    }
  }

  std::printf("Latency study: %d concurrent tasks per pattern, 64-host fabrics\n\n", tasks);

  // ---- topology-level view --------------------------------------------
  {
    const BuiltFabric tree = build_fabric(Fabric::kThreeTierTree);
    const BuiltFabric quartz = build_fabric(Fabric::kQuartzInEdgeAndCore);
    const auto tree_props = topo::analyze(tree.topo);
    const auto quartz_props = topo::analyze(quartz.topo);
    Table table({"metric", "three-tier tree", "quartz edge+core"});
    table.add_row({"switches", std::to_string(tree_props.switch_count),
                   std::to_string(quartz_props.switch_count)});
    table.add_row({"worst switch hops", std::to_string(tree_props.switch_hops),
                   std::to_string(quartz_props.switch_hops)});
    table.add_row({"zero-load latency", format_time(tree_props.zero_load_latency),
                   format_time(quartz_props.zero_load_latency)});
    table.add_row({"path diversity", std::to_string(tree_props.path_diversity),
                   std::to_string(quartz_props.path_diversity)});
    std::printf("structure:\n%s\n", table.to_text().c_str());
  }

  // ---- workload-level view ---------------------------------------------
  Table table({"pattern", "tree mean (us)", "quartz mean (us)", "tree p99", "quartz p99",
               "reduction"});
  Table breakdown({"pattern", "fabric", "host (us)", "queueing (us)", "serialization (us)",
                   "switching (us)", "propagation (us)", "total (us)"});
  const std::vector<Pattern> patterns{Pattern::kScatter, Pattern::kGather,
                                      Pattern::kScatterGather};
  struct Cell {
    Pattern pattern;
    Fabric fabric;
  };
  std::vector<Cell> cells;
  for (Pattern pattern : patterns) {
    for (Fabric fabric : {Fabric::kThreeTierTree, Fabric::kQuartzInEdgeAndCore}) {
      cells.push_back({pattern, fabric});
    }
  }
  const std::uint32_t sample_every =
      static_cast<std::uint32_t>(flags.get_int("sample-every", 1));
  telemetry::MetricRegistry* registry = metrics.enabled() ? &metrics : nullptr;
  sim::SweepRunner runner({jobs, 1});
  const auto results = runner.run(cells, [&](const Cell& cell, sim::SweepContext ctx) {
    TaskExperimentParams params;
    params.pattern = cell.pattern;
    params.tasks = tasks;
    params.duration = milliseconds(duration_ms);
    params.telemetry.trace = trace;
    params.telemetry.trace_sample_every = sample_every;
    params.telemetry.metrics = registry;  // nonnull only when jobs == 1
    if (stream_file != nullptr) {
      // One stream per sweep cell; the shared StreamFile serializes page
      // appends, so any --jobs value writes the same decodable file.
      params.telemetry.stream = stream_file.get();
      params.telemetry.stream_id = static_cast<std::uint32_t>(ctx.index);
    }
    if (events_os.is_open()) params.telemetry.events_jsonl = &events_os;  // jobs == 1 only
    FabricConfig fabric_config;
    fabric_config.use_fib = fib_mode == "on";
    return run_task_experiment(cell.fabric, fabric_config, params);
  });
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    const Pattern pattern = patterns[i];
    const auto& tree = results[2 * i];
    const auto& quartz = results[2 * i + 1];
    char red[16];
    std::snprintf(red, sizeof(red), "%.0f%%",
                  100.0 * (1.0 - quartz.mean_latency_us / tree.mean_latency_us));
    table.add_row({pattern_name(pattern), fmt(tree.mean_latency_us),
                   fmt(quartz.mean_latency_us), fmt(tree.p99_latency_us),
                   fmt(quartz.p99_latency_us), red});
    if (trace) {
      const std::vector<std::pair<std::string, telemetry::DecompositionSummary>> rows = {
          {"three-tier tree", tree.decomposition},
          {"quartz edge+core", quartz.decomposition}};
      for (const auto& [name, d] : rows) {
        breakdown.add_row({pattern_name(pattern), name, fmt(d.host_us), fmt(d.queueing_us),
                           fmt(d.serialization_us), fmt(d.switching_us), fmt(d.propagation_us),
                           fmt(d.total_us)});
      }
    }
  }
  std::printf("workloads (mean latency per packet):\n%s\n", table.to_text().c_str());
  if (trace) {
    std::printf("per-packet latency decomposition (sampled 1/%lld packets):\n%s\n",
                static_cast<long long>(flags.get_int("sample-every", 1)),
                breakdown.to_text().c_str());
  }

  std::printf(
      "where the gap comes from: the tree's cross-pod paths traverse a 6 us\n"
      "store-and-forward core plus two shared aggregation hops; the Quartz\n"
      "design rides dedicated cut-through lightpaths end to end.\n");

  if (metrics.enabled()) {
    const std::string path = flags.get("metrics-out");
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 1;
    }
    metrics.write_csv(out);
    std::printf("metrics: %s\n", path.c_str());
  }
  if (stream_file != nullptr) {
    stream_os.flush();
    std::printf("event stream: %s (%llu pages, %llu bytes)\n", stream_path.c_str(),
                static_cast<unsigned long long>(stream_file->pages()),
                static_cast<unsigned long long>(stream_file->bytes()));
  }
  if (events_os.is_open()) {
    events_os.flush();
    std::printf("events: %s\n", events_path.c_str());
  }
  return 0;
}

int main(int argc, char** argv) {
  // Examples never throw on bad argv: surface the parse error and the
  // usage text instead of an abort.
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
