// Latency study: run the §7 workloads (scatter / gather / RPC) on a
// three-tier tree and on Quartz-in-edge-and-core, side by side, and
// break the difference down — the paper's headline "Quartz halves
// end-to-end latency" demonstrated on the public API.
//
//   $ ./latency_study [tasks]
#include <cstdio>
#include <cstdlib>

#include "common/table.hpp"
#include "sim/experiments.hpp"
#include "sim/workloads.hpp"
#include "topo/properties.hpp"

int main(int argc, char** argv) {
  using namespace quartz;
  using namespace quartz::sim;
  const int tasks = argc > 1 ? std::atoi(argv[1]) : 4;

  std::printf("Latency study: %d concurrent tasks per pattern, 64-host fabrics\n\n", tasks);

  // ---- topology-level view --------------------------------------------
  {
    const BuiltFabric tree = build_fabric(Fabric::kThreeTierTree);
    const BuiltFabric quartz = build_fabric(Fabric::kQuartzInEdgeAndCore);
    const auto tree_props = topo::analyze(tree.topo);
    const auto quartz_props = topo::analyze(quartz.topo);
    Table table({"metric", "three-tier tree", "quartz edge+core"});
    table.add_row({"switches", std::to_string(tree_props.switch_count),
                   std::to_string(quartz_props.switch_count)});
    table.add_row({"worst switch hops", std::to_string(tree_props.switch_hops),
                   std::to_string(quartz_props.switch_hops)});
    table.add_row({"zero-load latency", format_time(tree_props.zero_load_latency),
                   format_time(quartz_props.zero_load_latency)});
    table.add_row({"path diversity", std::to_string(tree_props.path_diversity),
                   std::to_string(quartz_props.path_diversity)});
    std::printf("structure:\n%s\n", table.to_text().c_str());
  }

  // ---- workload-level view ---------------------------------------------
  Table table({"pattern", "tree mean (us)", "quartz mean (us)", "tree p99", "quartz p99",
               "reduction"});
  for (Pattern pattern : {Pattern::kScatter, Pattern::kGather, Pattern::kScatterGather}) {
    TaskExperimentParams params;
    params.pattern = pattern;
    params.tasks = tasks;
    params.duration = milliseconds(10);
    const auto tree = run_task_experiment(Fabric::kThreeTierTree, {}, params);
    const auto quartz = run_task_experiment(Fabric::kQuartzInEdgeAndCore, {}, params);
    char tm[16], qm[16], tp[16], qp[16], red[16];
    std::snprintf(tm, sizeof(tm), "%.2f", tree.mean_latency_us);
    std::snprintf(qm, sizeof(qm), "%.2f", quartz.mean_latency_us);
    std::snprintf(tp, sizeof(tp), "%.2f", tree.p99_latency_us);
    std::snprintf(qp, sizeof(qp), "%.2f", quartz.p99_latency_us);
    std::snprintf(red, sizeof(red), "%.0f%%",
                  100.0 * (1.0 - quartz.mean_latency_us / tree.mean_latency_us));
    table.add_row({pattern_name(pattern), tm, qm, tp, qp, red});
  }
  std::printf("workloads (mean latency per packet):\n%s\n", table.to_text().c_str());

  std::printf(
      "where the gap comes from: the tree's cross-pod paths traverse a 6 us\n"
      "store-and-forward core plus two shared aggregation hops; the Quartz\n"
      "design rides dedicated cut-through lightpaths end to end.\n");
  return 0;
}
