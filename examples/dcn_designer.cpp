// DCN designer: the §4.4 configurator as a command-line tool.  Give it
// a server count and a utilization level and it prices the candidate
// designs, estimates their latency, and prints the bill of materials of
// the recommended Quartz option.
//
//   $ ./dcn_designer 10000 high
//   $ ./dcn_designer --servers=10000 --utilization=high
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "common/flags.hpp"
#include "common/table.hpp"
#include "core/configurator.hpp"
#include "core/cost.hpp"
#include "core/design.hpp"

namespace {

using namespace quartz;
using namespace quartz::core;

void print_bom(const CostBreakdown& c) {
  Table bom({"component", "count", "subtotal"});
  const PriceCatalog catalog;
  auto line = [&](const char* name, int count, double unit) {
    if (count == 0) return;
    char sub[24];
    std::snprintf(sub, sizeof(sub), "$%.0f", count * unit);
    bom.add_row({name, std::to_string(count), sub});
  };
  line("64-port cut-through switch", c.ull_switches, catalog.ull_switch_usd);
  line("768-port core chassis", c.ccs_switches, catalog.ccs_switch_usd);
  line("10G DWDM transceiver", c.dwdm_transceivers, catalog.dwdm_transceiver_usd);
  line("10G short-reach transceiver", c.sr_transceivers, catalog.sr_transceiver_usd);
  line("80-channel mux/demux", c.muxes, catalog.mux_usd);
  line("EDFA amplifier", c.amplifiers, catalog.edfa_usd);
  line("cable run", c.cables, catalog.cable_usd);
  std::printf("%s", bom.to_text().c_str());
  std::printf("total $%.0f  ->  $%.0f per server\n", c.total_usd, c.per_server_usd);
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  const auto usage = [argv] {
    std::fprintf(stderr, "usage: %s <servers> [low|high]\n"
                         "       %s [--servers=N] [--utilization=low|high]\n",
                 argv[0], argv[0]);
    return 1;
  };
  for (const auto& key : flags.unknown_keys({"servers", "utilization"})) {
    std::fprintf(stderr, "unknown flag --%s\n", key.c_str());
    return usage();
  }
  const auto& positional = flags.positional();
  if (positional.size() > 2) return usage();
  int servers = positional.size() > 0 ? std::atoi(positional[0].c_str()) : 10'000;
  servers = static_cast<int>(flags.get_int("servers", servers));
  std::string level = positional.size() > 1 ? positional[1] : "low";
  level = flags.get("utilization", level);
  if (level != "low" && level != "high") return usage();
  const Utilization utilization = level == "high" ? Utilization::kHigh : Utilization::kLow;

  if (servers < 1) return usage();

  std::printf("DCN designer: %d servers, %s utilization\n", servers,
              utilization_name(utilization).c_str());
  std::printf("=============================================\n\n");

  // Candidate designs sized for this server count.
  struct Candidate {
    DesignChoice choice;
    CostBreakdown cost;
  };
  std::vector<Candidate> candidates;
  const PriceCatalog catalog;
  if (servers <= core::max_single_tor_ports(64)) {
    candidates.push_back({DesignChoice::kTwoTierTree, cost_two_tier(catalog, servers)});
    candidates.push_back(
        {DesignChoice::kSingleQuartzRing, cost_quartz_single_ring(catalog, servers)});
  }
  candidates.push_back({DesignChoice::kThreeTierTree, cost_three_tier(catalog, servers)});
  candidates.push_back({DesignChoice::kQuartzInEdge, cost_quartz_in_edge(catalog, servers)});
  candidates.push_back({DesignChoice::kQuartzInCore, cost_quartz_in_core(catalog, servers)});
  candidates.push_back(
      {DesignChoice::kQuartzInEdgeAndCore, cost_quartz_in_edge_and_core(catalog, servers)});

  Table table({"design", "cost/server", "est. latency (us)", "rings"});
  const Candidate* best = nullptr;
  double best_latency = 1e18;
  for (const auto& c : candidates) {
    const double latency = estimate_latency_us(c.choice, utilization);
    char cost[16], lat[16];
    std::snprintf(cost, sizeof(cost), "$%.0f", c.cost.per_server_usd);
    std::snprintf(lat, sizeof(lat), "%.2f", latency);
    table.add_row({design_choice_name(c.choice), cost, lat,
                   std::to_string(c.cost.quartz_rings)});
    if (latency < best_latency) {
      best_latency = latency;
      best = &c;
    }
  }
  std::printf("%s\n", table.to_text().c_str());

  std::printf("lowest-latency design: %s (%.2f us estimated)\n",
              design_choice_name(best->choice).c_str(), best_latency);
  std::printf("\nbill of materials:\n");
  print_bom(best->cost);
  return 0;
}
