// Hierarchical composition (topo/composite.hpp): spec grammar, the
// hand-countable 4x4 ring-of-rings, level-tagged metadata, analytic
// properties, flow-level bisection and per-element fiber-cut fate.
#include "topo/composite.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "flow/maxmin.hpp"
#include "routing/hierarchical.hpp"
#include "topo/failures.hpp"
#include "topo/properties.hpp"

namespace quartz::topo {
namespace {

TEST(CompositeSpec, ParseRoundTrips) {
  const char* specs[] = {
      "ring-of-rings:4x4",
      "ring-of-rings:8x8@2",
      "ring-of-rings:48x48x48+10",
      "ring-of-rings:4x4x4@1+10",
      "ring-of-trees:4x8@2",
  };
  for (const char* text : specs) {
    SCOPED_TRACE(text);
    std::string error;
    const auto spec = CompositeSpec::parse(text, &error);
    ASSERT_TRUE(spec.has_value()) << error;
    EXPECT_EQ(spec->to_string(), text);
    const auto again = CompositeSpec::parse(spec->to_string());
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(again->kind, spec->kind);
    EXPECT_EQ(again->dims, spec->dims);
    EXPECT_EQ(again->hosts_per_switch, spec->hosts_per_switch);
    EXPECT_EQ(again->modeled_hosts_per_switch, spec->modeled_hosts_per_switch);
  }
}

TEST(CompositeSpec, ParseFields) {
  const auto spec = CompositeSpec::parse("ring-of-rings:4x6x8@2+10");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->kind, "ring-of-rings");
  EXPECT_EQ(spec->dims, (std::vector<int>{4, 6, 8}));
  EXPECT_EQ(spec->hosts_per_switch, 2);
  EXPECT_EQ(spec->modeled_hosts_per_switch, 10);
  EXPECT_EQ(spec->levels(), 3);
  EXPECT_EQ(spec->switch_count(), 4 * 6 * 8);
}

TEST(CompositeSpec, RejectsMalformedSpecs) {
  const char* bad[] = {
      "",                        // empty
      "ring-of-rings",           // no colon
      "quartz:4x4",              // unknown kind
      "ring-of-rings:",          // no dims
      "ring-of-rings:1x4",       // dim below 2
      "ring-of-rings:4x5000",    // dim above 4096
      "ring-of-rings:4xfour",    // non-integer dim
      "ring-of-rings:4x4@0",     // zero hosts
      "ring-of-rings:4x4+0",     // zero modeled hosts
      "ring-of-rings:4x4@-1",    // negative hosts
  };
  for (const char* text : bad) {
    SCOPED_TRACE(text);
    std::string error;
    EXPECT_FALSE(CompositeSpec::parse(text, &error).has_value());
    EXPECT_FALSE(error.empty());
  }
}

/// The hand-countable fabric: a ring of 4 elements, each a 4-switch
/// Quartz ring, two hosts per switch.
BuiltTopology four_by_four() {
  const auto spec = CompositeSpec::parse("ring-of-rings:4x4@2");
  return build_composite(*spec);
}

TEST(Composite, FourByFourHandCounts) {
  const auto t = four_by_four();
  // 16 switches; 4 leaf full meshes of C(4,2)=6 lightpaths, C(4,2)=6
  // trunks between the 4 elements, and 32 host access links.
  EXPECT_EQ(t.tors.size(), 16u);
  EXPECT_EQ(t.hosts.size(), 32u);
  std::size_t mesh = 0, trunk = 0, host = 0;
  for (const auto& link : t.graph.links()) {
    const bool host_link = t.graph.is_host(link.a) || t.graph.is_host(link.b);
    if (host_link) {
      ++host;
    } else if (link.wdm_channel >= 0) {
      ++mesh;
    } else {
      ++trunk;
    }
  }
  EXPECT_EQ(mesh, 4u * 6u);
  EXPECT_EQ(trunk, 6u);
  EXPECT_EQ(host, 32u);
  EXPECT_EQ(t.graph.links().size(), 24u + 6u + 32u);
}

TEST(Composite, MetaIsLevelTagged) {
  const auto t = four_by_four();
  ASSERT_NE(t.composite, nullptr);
  const CompositeMeta& meta = *t.composite;
  EXPECT_TRUE(meta.uniform);
  EXPECT_EQ(meta.arity, (std::vector<int>{4, 4}));
  EXPECT_EQ(meta.levels(), 2);
  EXPECT_EQ(meta.parent_count, (std::vector<std::int64_t>{1, 4}));
  EXPECT_EQ(meta.group_universe(), 8);
  EXPECT_EQ(meta.leaf_members.size(), 16u);
  EXPECT_EQ(meta.modeled_hosts, 32);

  // Every switch carries a (element, slot) path; hosts inherit their
  // attachment switch's path.
  for (int e = 0; e < 4; ++e) {
    for (int s = 0; s < 4; ++s) {
      const NodeId node = meta.leaf_members[static_cast<std::size_t>(e * 4 + s)];
      EXPECT_EQ(meta.path_at(node, 0), e);
      EXPECT_EQ(meta.path_at(node, 1), s);
    }
  }

  // Trunks: every off-diagonal element pair has a live link, shared by
  // both directions; diagonal entries stay unset.
  std::set<LinkId> trunk_links;
  for (int from = 0; from < 4; ++from) {
    for (int to = 0; to < 4; ++to) {
      const TrunkEntry& entry = meta.trunk(0, 0, from, to);
      if (from == to) {
        EXPECT_EQ(entry.link, kInvalidLink);
        continue;
      }
      ASSERT_NE(entry.link, kInvalidLink);
      EXPECT_EQ(entry.link, meta.trunk(0, 0, to, from).link);
      EXPECT_EQ(meta.path_at(entry.gateway, 0), from);
      EXPECT_EQ(meta.path_at(entry.peer_gateway, 0), to);
      trunk_links.insert(entry.link);
    }
  }
  EXPECT_EQ(trunk_links.size(), 6u);

  // group_of: co-located pairs need no FIB entry; same-element pairs
  // key on the leaf level; cross-element pairs on the outer level.
  const NodeId a = meta.leaf_members[0];   // element 0, slot 0
  const NodeId b = meta.leaf_members[1];   // element 0, slot 1
  const NodeId c = meta.leaf_members[9];   // element 2, slot 1
  EXPECT_EQ(meta.group_of(a, a), -1);
  EXPECT_EQ(meta.group_of(a, b), 4 + 1);  // level_offset[1] + slot
  EXPECT_EQ(meta.group_of(a, c), 0 + 2);  // level_offset[0] + element
  EXPECT_EQ(meta.divergence_level(a, b), 1);
  EXPECT_EQ(meta.divergence_level(a, c), 0);
}

TEST(Composite, ModeledHostsAccountVirtualSlots) {
  const auto spec = CompositeSpec::parse("ring-of-rings:4x4@2+10");
  const auto t = build_composite(*spec);
  // 32 materialized + 10 virtual on each of 16 leaf switches.
  EXPECT_EQ(t.hosts.size(), 32u);
  ASSERT_NE(t.composite, nullptr);
  EXPECT_EQ(t.composite->modeled_hosts, 32 + 16 * 10);
  EXPECT_EQ(t.composite->virtual_hosts_per_switch, 10);
}

TEST(Composite, PropertiesMatchHandComputedDiameter) {
  const auto props = analyze(four_by_four());
  EXPECT_EQ(props.switch_count, 16);
  EXPECT_EQ(props.host_count, 32);
  // Worst pair: non-gateway switch -> leaf mesh hop to its gateway ->
  // trunk -> leaf mesh hop from the peer gateway -> non-gateway switch,
  // i.e. 4 switches on the path (diameter 3 switch-to-switch hops).
  EXPECT_EQ(props.switch_hops, 4);
  EXPECT_EQ(props.server_hops, 0);
  EXPECT_GT(props.zero_load_latency, 0);
  // Each element reaches the rest of the fabric over its 3 trunk
  // gateways (edge-disjoint), so the farthest pair still has 3
  // switch-disjoint paths.
  EXPECT_EQ(props.path_diversity, 3);
}

TEST(Composite, BisectionIsTrunkLimited) {
  // Two elements joined by a single 40G trunk: four greedy 10G host
  // flows crossing the trunk waterfill to exactly the trunk rate.
  const auto spec = CompositeSpec::parse("ring-of-rings:2x4@1");
  const auto t = build_composite(*spec);
  routing::HierOracle oracle(t);

  std::vector<flow::Flow> flows;
  for (std::size_t i = 0; i < 4; ++i) {
    flow::Flow f;
    f.src = t.hosts[i];          // element 0
    f.dst = t.hosts[4 + i];      // element 1
    const auto path = oracle.route(f.src, f.dst);
    flow::Route route;
    route.links = path.links;
    route.directions = path.directions;
    f.routes.push_back(std::move(route));
    flows.push_back(std::move(f));
  }
  const auto result = flow::max_min_fair(t.graph, flows);
  EXPECT_NEAR(result.aggregate, 4e10, 1e4);
  for (const double rate : result.flow_rate) EXPECT_NEAR(rate, 1e10, 1e4);
}

TEST(Composite, FiberCutsStayPerElement) {
  // The builder keeps each leaf ring's physical-ring range disjoint, so
  // a cut on one element's fiber severs only that element's lightpaths.
  const auto t = four_by_four();
  ASSERT_NE(t.composite, nullptr);
  for (int ring = 0; ring < 4; ++ring) {
    SCOPED_TRACE(ring);
    const auto severed = severed_links(t, {FiberCut{ring, 0}});
    ASSERT_FALSE(severed.empty());
    for (const LinkId id : severed) {
      const auto& link = t.graph.link(id);
      EXPECT_EQ(t.composite->path_at(link.a, 0), ring);
      EXPECT_EQ(t.composite->path_at(link.b, 0), ring);
    }
  }
}

TEST(Composite, SurvivesSingleElementCutConnected) {
  const auto t = four_by_four();
  const auto outcome = try_survive_fiber_cuts(t, {FiberCut{0, 0}});
  EXPECT_FALSE(outcome.partitioned);
  EXPECT_GT(outcome.severed, 0u);
  EXPECT_EQ(outcome.components, 1);
}

TEST(Composite, HeterogeneousComposeGetsSlotTags) {
  // Splicing different-size rings still tags every node with its slot,
  // but cannot promise the uniform closed-form gateway rule.
  QuartzRingParams small;
  small.switches = 4;
  small.hosts_per_switch = 1;
  QuartzRingParams big;
  big.switches = 6;
  big.hosts_per_switch = 1;
  std::vector<BuiltTopology> elements;
  elements.push_back(quartz_ring(small));
  elements.push_back(quartz_ring(big));
  const auto t = compose_in_ring(std::move(elements));

  ASSERT_NE(t.composite, nullptr);
  EXPECT_FALSE(t.composite->uniform);
  EXPECT_EQ(t.composite->levels(), 1);
  EXPECT_EQ(t.composite->arity, (std::vector<int>{2}));
  EXPECT_EQ(t.tors.size(), 10u);
  // Slot tags partition the switches 4 / 6.
  int slot0 = 0, slot1 = 0;
  for (const NodeId tor : t.tors) {
    (t.composite->path_at(tor, 0) == 0 ? slot0 : slot1) += 1;
  }
  EXPECT_EQ(slot0, 4);
  EXPECT_EQ(slot1, 6);
}

}  // namespace
}  // namespace quartz::topo
