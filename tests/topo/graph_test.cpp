#include "topo/graph.hpp"

#include <gtest/gtest.h>

namespace quartz::topo {
namespace {

Graph two_hosts_one_switch() {
  Graph g;
  const int model = g.add_model(SwitchModel::ull());
  const NodeId sw = g.add_switch(model, "sw0", 0);
  const NodeId h0 = g.add_host("h0", 0);
  const NodeId h1 = g.add_host("h1", 0);
  g.add_link(h0, sw, gigabits_per_second(10), nanoseconds(25));
  g.add_link(h1, sw, gigabits_per_second(10), nanoseconds(25));
  return g;
}

TEST(Graph, BasicConstruction) {
  const Graph g = two_hosts_one_switch();
  EXPECT_EQ(g.node_count(), 3u);
  EXPECT_EQ(g.link_count(), 2u);
  EXPECT_EQ(g.hosts().size(), 2u);
  EXPECT_EQ(g.switches().size(), 1u);
  EXPECT_NO_THROW(g.validate());
}

TEST(Graph, NeighborsAndDegree) {
  const Graph g = two_hosts_one_switch();
  const NodeId sw = g.switches()[0];
  EXPECT_EQ(g.degree(sw), 2u);
  EXPECT_EQ(g.neighbors(sw).size(), 2u);
  for (const auto& adj : g.neighbors(sw)) {
    EXPECT_TRUE(g.is_host(adj.peer));
    EXPECT_EQ(g.link(adj.link).other(sw), adj.peer);
  }
}

TEST(Graph, ModelOfSwitch) {
  const Graph g = two_hosts_one_switch();
  EXPECT_EQ(g.model_of(g.switches()[0]).latency, nanoseconds(380));
  EXPECT_THROW(g.model_of(g.hosts()[0]), std::invalid_argument);
}

TEST(Graph, RejectsSelfLoop) {
  Graph g;
  const NodeId h = g.add_host("h", 0);
  EXPECT_THROW(g.add_link(h, h, gigabits_per_second(1), 0), std::invalid_argument);
}

TEST(Graph, RejectsUnknownEndpoints) {
  Graph g;
  g.add_host("h", 0);
  EXPECT_THROW(g.add_link(0, 5, gigabits_per_second(1), 0), std::invalid_argument);
}

TEST(Graph, RejectsBadRates) {
  Graph g;
  const NodeId a = g.add_host("a", 0);
  const NodeId b = g.add_host("b", 0);
  EXPECT_THROW(g.add_link(a, b, 0, 0), std::invalid_argument);
  EXPECT_THROW(g.add_link(a, b, gigabits_per_second(1), -1), std::invalid_argument);
}

TEST(Graph, RejectsUnknownModel) {
  Graph g;
  EXPECT_THROW(g.add_switch(0, "sw"), std::invalid_argument);
}

TEST(Graph, ValidateCatchesPortOverflow) {
  Graph g;
  SwitchModel tiny = SwitchModel::ull();
  tiny.port_count = 1;
  const int model = g.add_model(tiny);
  const NodeId sw = g.add_switch(model, "sw");
  const NodeId h0 = g.add_host("h0", 0);
  const NodeId h1 = g.add_host("h1", 0);
  g.add_link(h0, sw, gigabits_per_second(1), 0);
  g.add_link(h1, sw, gigabits_per_second(1), 0);
  EXPECT_THROW(g.validate(), std::logic_error);
}

TEST(Graph, ValidateCatchesUnconnectedHost) {
  Graph g;
  g.add_host("orphan", 0);
  EXPECT_THROW(g.validate(), std::logic_error);
}

TEST(Graph, ValidateCatchesDisconnection) {
  Graph g;
  const int model = g.add_model(SwitchModel::ull());
  const NodeId s0 = g.add_switch(model, "s0");
  const NodeId s1 = g.add_switch(model, "s1");
  const NodeId h0 = g.add_host("h0", 0);
  const NodeId h1 = g.add_host("h1", 1);
  g.add_link(h0, s0, gigabits_per_second(1), 0);
  g.add_link(h1, s1, gigabits_per_second(1), 0);
  EXPECT_THROW(g.validate(), std::logic_error);
}

TEST(Graph, WdmMetadataStored) {
  Graph g;
  const int model = g.add_model(SwitchModel::ull());
  const NodeId s0 = g.add_switch(model, "s0");
  const NodeId s1 = g.add_switch(model, "s1");
  const LinkId l = g.add_link(s0, s1, gigabits_per_second(10), 0, /*wdm_ring=*/1,
                              /*wdm_channel=*/42);
  EXPECT_EQ(g.link(l).wdm_ring, 1);
  EXPECT_EQ(g.link(l).wdm_channel, 42);
}

TEST(SwitchModels, Table16Specs) {
  const SwitchModel ull = SwitchModel::ull();
  EXPECT_EQ(ull.latency, nanoseconds(380));
  EXPECT_TRUE(ull.cut_through);
  EXPECT_EQ(ull.port_count, 64);

  const SwitchModel ccs = SwitchModel::ccs();
  EXPECT_EQ(ccs.latency, microseconds(6));
  EXPECT_FALSE(ccs.cut_through);
  EXPECT_EQ(ccs.port_count, 768);
}

}  // namespace
}  // namespace quartz::topo
