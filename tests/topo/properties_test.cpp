#include "topo/properties.hpp"

#include <gtest/gtest.h>

namespace quartz::topo {
namespace {

TEST(Properties, TwoTierTreeDiversityIsOne) {
  TwoTierParams p;
  p.tors = 4;
  p.hosts_per_tor = 4;
  const TopologyProperties props = analyze(two_tier_tree(p));
  EXPECT_EQ(props.path_diversity, 1);
  EXPECT_EQ(props.switch_hops, 3);  // ToR - agg - ToR
  EXPECT_EQ(props.server_hops, 0);
}

TEST(Properties, MeshDiversityIsMMinusOne) {
  // Table 9: a full mesh of M switches has M-1 edge-disjoint paths
  // between any two switches (1 direct + M-2 two-hop).
  QuartzRingParams p;
  p.switches = 8;
  p.hosts_per_switch = 2;
  const TopologyProperties props = analyze(quartz_ring(p));
  EXPECT_EQ(props.path_diversity, 7);
  EXPECT_EQ(props.switch_hops, 2);
}

TEST(Properties, MeshZeroLoadLatencyIsTwoUllHops) {
  QuartzRingParams p;
  p.switches = 4;
  p.hosts_per_switch = 2;
  const TopologyProperties props = analyze(quartz_ring(p));
  // Table 9's "1.0us (2 switch hops)" uses 0.5us switches; with the
  // ULL's 380ns the mesh worst case is 760ns.
  EXPECT_EQ(props.zero_load_latency, nanoseconds(760));
}

TEST(Properties, FatTreeClosDiversityEqualsUplinks) {
  FatTreeParams p;
  p.leaves = 8;
  p.spines = 4;
  p.hosts_per_leaf = 8;
  p.links_per_leaf_spine = 2;
  const TopologyProperties props = analyze(fat_tree_clos(p));
  EXPECT_EQ(props.path_diversity, 8);  // 4 spines x 2 links
  EXPECT_EQ(props.switch_hops, 3);
}

TEST(Properties, BCubeUsesServerHop) {
  BCubeParams p;
  p.n = 4;
  const TopologyProperties props = analyze(bcube1(p));
  EXPECT_EQ(props.switch_hops, 2);
  EXPECT_EQ(props.server_hops, 1);
  // Dual-homed hosts: diversity is the two NICs.
  EXPECT_EQ(props.path_diversity, 2);
  // Zero-load latency includes one 15us server relay.
  EXPECT_GT(props.zero_load_latency, microseconds(15));
}

TEST(Properties, ThreeTierCrossPodLatencyDominatedByCore) {
  ThreeTierParams p;
  p.pods = 2;
  p.tors_per_pod = 2;
  p.hosts_per_tor = 2;
  const TopologyProperties props = analyze(three_tier_tree(p));
  EXPECT_EQ(props.switch_hops, 5);
  // 4 ULL + 1 CCS = 4 x 380ns + 6us = 7.52us.
  EXPECT_EQ(props.zero_load_latency, nanoseconds(4 * 380) + microseconds(6));
}

TEST(Properties, WiringComplexityCountsCrossRackLinks) {
  TwoTierParams p;
  p.tors = 4;
  p.hosts_per_tor = 4;
  const BuiltTopology t = two_tier_tree(p);
  // Host links are in-rack; ToR->agg links cross.
  EXPECT_EQ(cross_rack_links(t.graph), 4);
}

TEST(Properties, MeshWiringComplexityIsChooseTwo) {
  QuartzRingParams p;
  p.switches = 33;
  p.hosts_per_switch = 1;
  const TopologyProperties props = analyze(quartz_ring(p));
  EXPECT_EQ(props.wiring_complexity, 528);  // Table 9
}

TEST(Properties, DiversityBetweenSpecificNodes) {
  QuartzRingParams p;
  p.switches = 5;
  p.hosts_per_switch = 1;
  const BuiltTopology t = quartz_ring(p);
  EXPECT_EQ(path_diversity_between(t.graph, t.tors[0], t.tors[3]), 4);
  EXPECT_THROW(path_diversity_between(t.graph, t.tors[0], t.tors[0]), std::invalid_argument);
}

TEST(Properties, CountsMatchBuilders) {
  JellyfishParams p;
  const TopologyProperties props = analyze(jellyfish(p));
  EXPECT_EQ(props.switch_count, 16);
  EXPECT_EQ(props.host_count, 64);
  EXPECT_EQ(props.wiring_complexity, 32);  // 16 x 4 / 2
  EXPECT_LE(props.path_diversity, 4);      // bounded by switch degree
  EXPECT_GE(props.path_diversity, 1);
}

TEST(Properties, JellyfishDiameterSmall) {
  JellyfishParams p;
  const TopologyProperties props = analyze(jellyfish(p));
  // 16 switches with degree 4: diameter a few hops.
  EXPECT_LE(props.switch_hops, 5);
  EXPECT_GE(props.switch_hops, 2);
}

TEST(Properties, DualTorTwoSwitchWorstCase) {
  QuartzDualTorParams p;
  p.racks = 9;
  p.hosts_per_rack = 2;
  const TopologyProperties props = analyze(quartz_dual_tor(p));
  EXPECT_EQ(props.switch_hops, 2);
  EXPECT_EQ(props.server_hops, 0);
  EXPECT_EQ(props.zero_load_latency, nanoseconds(760));
  // Dual-homed hosts: diversity measured host-to-host is the 2 NICs.
  EXPECT_EQ(props.path_diversity, 2);
}

TEST(Properties, DCellMatchesServerCentricProfile) {
  DCellParams p;
  p.n = 6;
  const TopologyProperties props = analyze(dcell1(p));
  EXPECT_EQ(props.switch_hops, 2);
  EXPECT_EQ(props.server_hops, 2);  // two server relays worst case
  EXPECT_EQ(props.path_diversity, 2);
  EXPECT_GT(props.zero_load_latency, microseconds(30));
}

}  // namespace
}  // namespace quartz::topo
