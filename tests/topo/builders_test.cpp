#include "topo/builders.hpp"

#include <gtest/gtest.h>

#include <set>

namespace quartz::topo {
namespace {

int inter_switch_links(const Graph& g) {
  int count = 0;
  for (const auto& link : g.links()) {
    if (g.is_switch(link.a) && g.is_switch(link.b)) ++count;
  }
  return count;
}

TEST(Builders, TwoTierTree) {
  TwoTierParams p;
  p.tors = 4;
  p.hosts_per_tor = 8;
  const BuiltTopology t = two_tier_tree(p);
  EXPECT_EQ(t.hosts.size(), 32u);
  EXPECT_EQ(t.tors.size(), 4u);
  EXPECT_EQ(t.aggs.size(), 1u);
  EXPECT_EQ(inter_switch_links(t.graph), 4);
  EXPECT_EQ(t.host_groups.size(), 4u);
  EXPECT_NO_THROW(t.graph.validate());
}

TEST(Builders, ThreeTierTree) {
  ThreeTierParams p;  // 2 pods x 4 ToRs x 8 hosts, 2 aggs/pod, 2 cores
  const BuiltTopology t = three_tier_tree(p);
  EXPECT_EQ(t.hosts.size(), 64u);
  EXPECT_EQ(t.tors.size(), 8u);
  EXPECT_EQ(t.aggs.size(), 4u);
  EXPECT_EQ(t.cores.size(), 2u);
  // ToR->agg: 8 ToRs x 2 aggs; agg->core: 4 aggs x 2 cores.
  EXPECT_EQ(inter_switch_links(t.graph), 8 * 2 + 4 * 2);
  EXPECT_EQ(t.host_groups.size(), 2u);  // one per pod
  EXPECT_EQ(t.host_groups[0].size(), 32u);
}

TEST(Builders, FatTreeClosTable9Shape) {
  // The Table 9 "Fat-Tree" row: 32 leaves + 16 spines = 48 switches,
  // 1024 hosts, 1024 inter-switch links.
  FatTreeParams p;
  const BuiltTopology t = fat_tree_clos(p);
  EXPECT_EQ(t.graph.switches().size(), 48u);
  EXPECT_EQ(t.hosts.size(), 1024u);
  EXPECT_EQ(inter_switch_links(t.graph), 1024);
}

TEST(Builders, BCube1Shape) {
  BCubeParams p;
  p.n = 4;
  const BuiltTopology t = bcube1(p);
  EXPECT_EQ(t.hosts.size(), 16u);           // n^2
  EXPECT_EQ(t.graph.switches().size(), 8u);  // 2n
  // Every host has two NICs.
  for (NodeId h : t.hosts) EXPECT_EQ(t.graph.degree(h), 2u);
  EXPECT_EQ(inter_switch_links(t.graph), 0);
}

TEST(Builders, JellyfishRegularDegree) {
  JellyfishParams p;  // 16 switches, degree 4
  const BuiltTopology t = jellyfish(p);
  EXPECT_EQ(t.hosts.size(), 64u);
  EXPECT_EQ(inter_switch_links(t.graph), 16 * 4 / 2);
  for (NodeId sw : t.tors) {
    EXPECT_EQ(t.graph.degree(sw), static_cast<std::size_t>(4 + 4));
  }
  EXPECT_NO_THROW(t.graph.validate());
}

TEST(Builders, JellyfishNoParallelInterSwitchLinks) {
  JellyfishParams p;
  p.seed = 7;
  const BuiltTopology t = jellyfish(p);
  std::set<std::pair<NodeId, NodeId>> seen;
  for (const auto& link : t.graph.links()) {
    if (!t.graph.is_switch(link.a) || !t.graph.is_switch(link.b)) continue;
    const auto key = std::minmax(link.a, link.b);
    EXPECT_TRUE(seen.insert(key).second) << "parallel link " << link.a << "-" << link.b;
  }
}

TEST(Builders, JellyfishDeterministicPerSeed) {
  JellyfishParams p;
  p.seed = 42;
  const BuiltTopology a = jellyfish(p);
  const BuiltTopology b = jellyfish(p);
  EXPECT_EQ(a.graph.link_count(), b.graph.link_count());
  for (std::size_t i = 0; i < a.graph.link_count(); ++i) {
    EXPECT_EQ(a.graph.link(static_cast<LinkId>(i)).a, b.graph.link(static_cast<LinkId>(i)).a);
    EXPECT_EQ(a.graph.link(static_cast<LinkId>(i)).b, b.graph.link(static_cast<LinkId>(i)).b);
  }
}

TEST(Builders, QuartzRingIsFullMesh) {
  QuartzRingParams p;
  p.switches = 6;
  p.hosts_per_switch = 4;
  const BuiltTopology t = quartz_ring(p);
  EXPECT_EQ(t.hosts.size(), 24u);
  EXPECT_EQ(t.quartz_rings.size(), 1u);
  EXPECT_EQ(t.quartz_rings[0].size(), 6u);
  // Full mesh: C(6,2) = 15 lightpath links.
  EXPECT_EQ(inter_switch_links(t.graph), 15);
}

TEST(Builders, QuartzRingLinksCarryWdmMetadata) {
  QuartzRingParams p;
  p.switches = 5;
  const BuiltTopology t = quartz_ring(p);
  std::set<int> channels;
  for (const auto& link : t.graph.links()) {
    if (!t.graph.is_switch(link.a) || !t.graph.is_switch(link.b)) continue;
    EXPECT_GE(link.wdm_channel, 0);
    EXPECT_EQ(link.wdm_ring, 0);  // 5-ring fits one mux
    channels.insert(link.wdm_channel);
  }
  // Each pair has a dedicated channel; with reuse across disjoint arcs
  // the distinct count is <= pairs but >= the lower bound.
  EXPECT_LE(static_cast<int>(channels.size()), 10);
  EXPECT_GE(static_cast<int>(channels.size()), 3);
}

TEST(Builders, QuartzInCoreReplacesCores) {
  QuartzCoreParams p;
  const BuiltTopology t = quartz_in_core(p);
  EXPECT_EQ(t.cores.size(), 4u);  // ring switches act as the core
  EXPECT_EQ(t.quartz_rings.size(), 1u);
  EXPECT_EQ(t.hosts.size(), 64u);
  // Core ring is meshed: C(4,2) = 6 lightpaths.
  int mesh_links = 0;
  for (const auto& link : t.graph.links()) {
    if (link.wdm_channel >= 0) ++mesh_links;
  }
  EXPECT_EQ(mesh_links, 6);
  EXPECT_NO_THROW(t.graph.validate());
}

TEST(Builders, QuartzInEdgeHostsMatchTree) {
  QuartzEdgeParams p;  // 2 pods x 4 ring switches x 8 hosts
  const BuiltTopology t = quartz_in_edge(p);
  EXPECT_EQ(t.hosts.size(), 64u);
  EXPECT_EQ(t.quartz_rings.size(), 2u);
  EXPECT_EQ(t.cores.size(), 2u);
  EXPECT_EQ(t.host_groups.size(), 2u);
  EXPECT_EQ(t.host_groups[0].size(), 32u);
}

TEST(Builders, QuartzInEdgeAndCoreHasAllRings) {
  QuartzEdgeCoreParams p;
  const BuiltTopology t = quartz_in_edge_and_core(p);
  EXPECT_EQ(t.quartz_rings.size(), 3u);  // core ring + 2 edge rings
  EXPECT_EQ(t.hosts.size(), 64u);
  EXPECT_EQ(t.cores.size(), 4u);
  EXPECT_NO_THROW(t.graph.validate());
}

TEST(Builders, QuartzInJellyfishShape) {
  QuartzJellyfishParams p;  // 4 rings x 4 switches x 4 hosts
  const BuiltTopology t = quartz_in_jellyfish(p);
  EXPECT_EQ(t.hosts.size(), 64u);
  EXPECT_EQ(t.quartz_rings.size(), 4u);
  // Inter-ring random links: 4 rings x 4 stubs / 2.
  int inter_ring = 0;
  for (const auto& link : t.graph.links()) {
    if (t.graph.is_switch(link.a) && t.graph.is_switch(link.b) && link.wdm_channel < 0) {
      ++inter_ring;
    }
  }
  EXPECT_EQ(inter_ring, 8);
  EXPECT_NO_THROW(t.graph.validate());
}

TEST(Builders, SingleSwitch) {
  SingleSwitchParams p;
  p.hosts = 16;
  const BuiltTopology t = single_switch(p);
  EXPECT_EQ(t.hosts.size(), 16u);
  EXPECT_EQ(t.graph.switches().size(), 1u);
  EXPECT_EQ(t.cores.size(), 1u);
}

TEST(Builders, PortBudgetsRespectedEverywhere) {
  // Every builder output must pass graph validation (which checks the
  // per-model port budget).
  BCubeParams bcube_params;
  bcube_params.n = 8;
  EXPECT_NO_THROW(two_tier_tree({}).graph.validate());
  EXPECT_NO_THROW(three_tier_tree({}).graph.validate());
  EXPECT_NO_THROW(bcube1(bcube_params).graph.validate());
  EXPECT_NO_THROW(dcell1({}).graph.validate());
  EXPECT_NO_THROW(jellyfish({}).graph.validate());
  EXPECT_NO_THROW(quartz_ring({}).graph.validate());
  EXPECT_NO_THROW(quartz_dual_tor({}).graph.validate());
  EXPECT_NO_THROW(quartz_in_core({}).graph.validate());
  EXPECT_NO_THROW(quartz_in_edge({}).graph.validate());
  EXPECT_NO_THROW(quartz_in_edge_and_core({}).graph.validate());
  EXPECT_NO_THROW(quartz_in_jellyfish({}).graph.validate());
}

TEST(Builders, RejectsInvalidParams) {
  QuartzRingParams tiny_ring;
  tiny_ring.switches = 1;
  EXPECT_THROW(quartz_ring(tiny_ring), std::invalid_argument);
  TwoTierParams no_tors;
  no_tors.tors = 0;
  EXPECT_THROW(two_tier_tree(no_tors), std::invalid_argument);
  ThreeTierParams no_pods;
  no_pods.pods = 0;
  EXPECT_THROW(three_tier_tree(no_pods), std::invalid_argument);
  BCubeParams tiny_bcube;
  tiny_bcube.n = 1;
  EXPECT_THROW(bcube1(tiny_bcube), std::invalid_argument);
}

TEST(Builders, DualTorReachesPaperScale) {
  // §3.2: 64-port switches, 32 hosts/rack, 65 racks -> 2080 ports and
  // every rack pair one lightpath with a 2-switch longest path.
  QuartzDualTorParams p;
  p.racks = 9;
  p.hosts_per_rack = 4;
  const BuiltTopology t = quartz_dual_tor(p);
  EXPECT_EQ(t.hosts.size(), 36u);
  EXPECT_EQ(t.graph.switches().size(), 18u);
  // Every host dual-homed.
  for (NodeId h : t.hosts) EXPECT_EQ(t.graph.degree(h), 2u);
  // Inter-switch links: one per rack pair.
  EXPECT_EQ(inter_switch_links(t.graph), 9 * 8 / 2);
  // Every switch carries exactly (racks-1)/2 mesh ports.
  for (NodeId sw : t.tors) {
    EXPECT_EQ(t.graph.degree(sw), static_cast<std::size_t>(4 + 4));
  }
  EXPECT_NO_THROW(t.graph.validate());
}

TEST(Builders, DualTorRequiresOddRacks) {
  QuartzDualTorParams p;
  p.racks = 8;
  EXPECT_THROW(quartz_dual_tor(p), std::invalid_argument);
  p.racks = 1;
  EXPECT_THROW(quartz_dual_tor(p), std::invalid_argument);
}

TEST(Builders, DualTorEveryRackPairDirect) {
  QuartzDualTorParams p;
  p.racks = 7;
  p.hosts_per_rack = 2;
  const BuiltTopology t = quartz_dual_tor(p);
  // For each rack pair there must be a switch-to-switch link whose
  // endpoints live in those two racks.
  std::set<std::pair<int, int>> covered;
  for (const auto& link : t.graph.links()) {
    if (!t.graph.is_switch(link.a) || !t.graph.is_switch(link.b)) continue;
    const auto pair = std::minmax(t.graph.node(link.a).rack, t.graph.node(link.b).rack);
    covered.insert(pair);
  }
  EXPECT_EQ(covered.size(), 7u * 6u / 2u);
}

TEST(Builders, DCellShape) {
  DCellParams p;
  p.n = 4;
  const BuiltTopology t = dcell1(p);
  EXPECT_EQ(t.hosts.size(), 20u);           // n(n+1)
  EXPECT_EQ(t.graph.switches().size(), 5u);  // n+1 cells
  // Every host has a switch NIC and an inter-cell NIC.
  for (NodeId h : t.hosts) EXPECT_EQ(t.graph.degree(h), 2u);
  // Inter-cell host-host links: C(n+1, 2).
  int host_host = 0;
  for (const auto& link : t.graph.links()) {
    if (t.graph.is_host(link.a) && t.graph.is_host(link.b)) ++host_host;
  }
  EXPECT_EQ(host_host, 10);
  EXPECT_NO_THROW(t.graph.validate());
}

TEST(Builders, DCellPaperScaleCounts) {
  DCellParams p;
  p.n = 32;
  const BuiltTopology t = dcell1(p);
  EXPECT_EQ(t.hosts.size(), 1056u);  // same port count as the 33-switch mesh
  EXPECT_EQ(t.graph.switches().size(), 33u);
}

class QuartzRingSizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(QuartzRingSizeSweep, MeshEdgeCountIsChooseTwo) {
  QuartzRingParams p;
  p.switches = GetParam();
  p.hosts_per_switch = 1;
  const BuiltTopology t = quartz_ring(p);
  EXPECT_EQ(inter_switch_links(t.graph), GetParam() * (GetParam() - 1) / 2);
}

INSTANTIATE_TEST_SUITE_P(Sizes, QuartzRingSizeSweep, ::testing::Values(2, 3, 4, 8, 16, 24, 33));

}  // namespace
}  // namespace quartz::topo
