#include "topo/failures.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>

#include "routing/oracle.hpp"
#include "sim/network.hpp"
#include "wavelength/assign.hpp"

namespace quartz::topo {
namespace {

BuiltTopology eight_ring() {
  QuartzRingParams p;
  p.switches = 8;
  p.hosts_per_switch = 2;
  return quartz_ring(p);
}

TEST(Failures, NoCutsIsIdentityShaped) {
  const BuiltTopology t = eight_ring();
  const BuiltTopology s = survive_fiber_cuts(t, {});
  EXPECT_EQ(s.graph.node_count(), t.graph.node_count());
  EXPECT_EQ(s.graph.link_count(), t.graph.link_count());
}

TEST(Failures, SingleCutRemovesCrossingLightpaths) {
  const BuiltTopology t = eight_ring();
  const auto severed = severed_lightpaths(t, {{0, 0}});
  EXPECT_GT(severed.size(), 0u);
  const BuiltTopology s = survive_fiber_cuts(t, {{0, 0}});
  EXPECT_EQ(s.graph.link_count(), t.graph.link_count() - severed.size());
  // Severed count matches segment 0's load in the deterministic plan.
  const auto plan = wavelength::greedy_assign(8);
  EXPECT_EQ(static_cast<int>(severed.size()), wavelength::segment_loads(plan)[0]);
}

TEST(Failures, SurvivorStillDeliversEverythingMultiHop) {
  // §3.5: multi-hop paths keep the mesh connected after one cut; the
  // packet simulator must deliver every packet on the survivor, some
  // over two-hop routes.
  const BuiltTopology t = eight_ring();
  const BuiltTopology s = survive_fiber_cuts(t, {{0, 3}});

  routing::EcmpRouting routing(s.graph);
  routing::EcmpOracle oracle(routing);
  sim::Network net(s, oracle);
  int max_hops = 0;
  const int task = net.new_task([&max_hops](const sim::Packet& p, TimePs) {
    max_hops = std::max(max_hops, p.hops);
  });
  Rng rng(3);
  for (int i = 0; i < 300; ++i) {
    const auto src = s.hosts[rng.next_below(s.hosts.size())];
    auto dst = s.hosts[rng.next_below(s.hosts.size())];
    while (dst == src) dst = s.hosts[rng.next_below(s.hosts.size())];
    net.send(src, dst, bytes(400), task, rng.next_u64());
  }
  net.run_until(milliseconds(10));
  EXPECT_EQ(net.packets_delivered(), 300u);
  EXPECT_EQ(net.packets_dropped(), 0u);
  // Some pairs detour over two (or, when a detour's own leg is also
  // severed, three) mesh hops.
  EXPECT_GE(max_hops, 3);
  EXPECT_LE(max_hops, 4);
}

TEST(Failures, DegradedLatencyOnlyForAffectedPairs) {
  const BuiltTopology t = eight_ring();
  const auto severed = severed_lightpaths(t, {{0, 0}});
  ASSERT_FALSE(severed.empty());
  const BuiltTopology s = survive_fiber_cuts(t, {{0, 0}});

  routing::EcmpRouting healthy(t.graph);
  routing::EcmpRouting degraded(s.graph);
  // Every severed switch pair is now two mesh hops apart; every other
  // pair keeps its direct lightpath.
  for (const auto& [a, b] : severed) {
    const topo::NodeId host_b = [&] {
      for (const auto& adj : s.graph.neighbors(b)) {
        if (s.graph.is_host(adj.peer)) return adj.peer;
      }
      return topo::kInvalidNode;
    }();
    ASSERT_NE(host_b, topo::kInvalidNode);
    EXPECT_EQ(healthy.distance(a, host_b), 2);
    EXPECT_EQ(degraded.distance(a, host_b), 3);
  }
}

TEST(Failures, PartitioningCutsAreRejected) {
  // Two cuts on the single physical ring of a small mesh partition it;
  // the surgery must refuse rather than return a broken fabric.
  QuartzRingParams p;
  p.switches = 6;
  p.hosts_per_switch = 1;
  const BuiltTopology t = quartz_ring(p);
  EXPECT_THROW(survive_fiber_cuts(t, {{0, 0}, {0, 3}}), std::logic_error);
}

TEST(Failures, TwoRingPlanSurvivesTwoCuts) {
  // A 33-switch mesh stripes over two rings; cuts on different rings
  // leave the mesh connected (the Fig. 6 headline).
  QuartzRingParams p;
  p.switches = 33;
  p.hosts_per_switch = 1;
  const BuiltTopology t = quartz_ring(p);
  const BuiltTopology s = survive_fiber_cuts(t, {{0, 4}, {1, 20}});
  EXPECT_NO_THROW(s.graph.validate());
  EXPECT_LT(s.graph.link_count(), t.graph.link_count());
}

TEST(Failures, TryVariantReportsPartitionInsteadOfThrowing) {
  QuartzRingParams p;
  p.switches = 6;
  p.hosts_per_switch = 1;
  const BuiltTopology t = quartz_ring(p);
  const SurvivalOutcome outcome = try_survive_fiber_cuts(t, {{0, 0}, {0, 3}});
  EXPECT_TRUE(outcome.partitioned);
  EXPECT_GT(outcome.components, 1);
  EXPECT_GT(outcome.severed, 0u);
  // The throwing wrapper still refuses the same cuts.
  EXPECT_THROW(survive_fiber_cuts(t, {{0, 0}, {0, 3}}), std::logic_error);
}

TEST(Failures, TryVariantMatchesThrowingOnSurvivableCuts) {
  const BuiltTopology t = eight_ring();
  const SurvivalOutcome outcome = try_survive_fiber_cuts(t, {{0, 1}});
  EXPECT_FALSE(outcome.partitioned);
  EXPECT_EQ(outcome.components, 1);
  EXPECT_EQ(outcome.severed, severed_lightpaths(t, {{0, 1}}).size());
  const BuiltTopology s = survive_fiber_cuts(t, {{0, 1}});
  EXPECT_EQ(outcome.degraded.graph.link_count(), s.graph.link_count());
}

TEST(Failures, SeveredLinksMapBackToOriginalTopology) {
  const BuiltTopology t = eight_ring();
  const auto links = severed_links(t, {{0, 0}});
  const auto pairs = severed_lightpaths(t, {{0, 0}});
  ASSERT_EQ(links.size(), pairs.size());
  for (const LinkId id : links) {
    const Link& link = t.graph.link(id);
    EXPECT_EQ(link.wdm_ring, 0);
    const bool listed =
        std::any_of(pairs.begin(), pairs.end(), [&](const std::pair<NodeId, NodeId>& pair) {
          return (pair.first == link.a && pair.second == link.b) ||
                 (pair.first == link.b && pair.second == link.a);
        });
    EXPECT_TRUE(listed) << "link " << id << " not in the severed lightpath list";
  }
}

TEST(Failures, MultiRingCutsSeverDisjointPerRingSets) {
  // A 33-switch plan stripes lightpaths over two physical rings; a cut
  // only severs lightpaths carried by its own ring.
  QuartzRingParams p;
  p.switches = 33;
  p.hosts_per_switch = 1;
  const BuiltTopology t = quartz_ring(p);
  const auto ring0 = severed_links(t, {{0, 4}});
  const auto ring1 = severed_links(t, {{1, 20}});
  ASSERT_FALSE(ring0.empty());
  ASSERT_FALSE(ring1.empty());
  for (const LinkId id : ring0) EXPECT_EQ(t.graph.link(id).wdm_ring, 0);
  for (const LinkId id : ring1) EXPECT_EQ(t.graph.link(id).wdm_ring, 1);
  for (const LinkId id : ring0) {
    EXPECT_EQ(std::count(ring1.begin(), ring1.end(), id), 0);
  }
  // Both cuts together sever exactly the union.
  const auto both = severed_links(t, {{0, 4}, {1, 20}});
  EXPECT_EQ(both.size(), ring0.size() + ring1.size());
}

TEST(Failures, RejectsOutOfRangeCuts) {
  const BuiltTopology t = eight_ring();
  EXPECT_THROW(survive_fiber_cuts(t, {{5, 0}}), std::invalid_argument);
  EXPECT_THROW(survive_fiber_cuts(t, {{0, 8}}), std::invalid_argument);
}

}  // namespace
}  // namespace quartz::topo
