#include "topo/dot.hpp"

#include <gtest/gtest.h>

namespace quartz::topo {
namespace {

TEST(Dot, RendersNodesAndLinks) {
  QuartzRingParams p;
  p.switches = 3;
  p.hosts_per_switch = 1;
  const BuiltTopology t = quartz_ring(p);
  const std::string dot = to_dot(t);
  EXPECT_NE(dot.find("graph \"quartz-ring\""), std::string::npos);
  // 6 node declarations (3 switches + 3 hosts) and 3 labelled mesh
  // edges carry attribute blocks; plain host links do not.
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '['), 9);
  EXPECT_NE(dot.find("shape=circle"), std::string::npos);
  EXPECT_NE(dot.find("shape=box"), std::string::npos);
  // Mesh edges labelled with channels.
  EXPECT_NE(dot.find("ch 0 @ ring 0"), std::string::npos);
}

TEST(Dot, HostsCanBeOmitted) {
  QuartzRingParams p;
  p.switches = 4;
  p.hosts_per_switch = 8;
  const BuiltTopology t = quartz_ring(p);
  DotOptions options;
  options.include_hosts = false;
  const std::string dot = to_dot(t, options);
  EXPECT_EQ(dot.find("shape=box"), std::string::npos);
  EXPECT_NE(dot.find("shape=circle"), std::string::npos);
}

TEST(Dot, ChannelLabelsCanBeOmitted) {
  QuartzRingParams p;
  p.switches = 3;
  const BuiltTopology t = quartz_ring(p);
  DotOptions options;
  options.label_channels = false;
  const std::string dot = to_dot(t, options);
  EXPECT_EQ(dot.find("ch "), std::string::npos);
}

TEST(Dot, WellFormedBraces) {
  const BuiltTopology t = three_tier_tree({});
  const std::string dot = to_dot(t);
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'), 1);
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '}'), 1);
  EXPECT_EQ(dot.back(), '\n');
}

}  // namespace
}  // namespace quartz::topo
