// Fig. 10's qualitative claims as assertions.
#include "flow/bisection.hpp"

#include <gtest/gtest.h>

namespace quartz::flow {
namespace {

BisectionParams small_params() {
  BisectionParams p;
  p.racks = 8;
  p.hosts_per_rack = 8;
  return p;
}

TEST(Bisection, FullBisectionPermutationIsIdeal) {
  const auto r =
      run_bisection(FabricUnderTest::kFullBisection, ThroughputPattern::kPermutation,
                    small_params());
  EXPECT_NEAR(r.normalized_throughput, 1.0, 1e-9);
}

TEST(Bisection, HalfAndQuarterScaleAsNamed) {
  const auto half = run_bisection(FabricUnderTest::kHalfBisection,
                                  ThroughputPattern::kPermutation, small_params());
  const auto quarter = run_bisection(FabricUnderTest::kQuarterBisection,
                                     ThroughputPattern::kPermutation, small_params());
  // Permutation traffic is mostly cross-rack; uplinks cap throughput
  // near the bisection fraction.
  // With 8 racks, 1/8 of permutation traffic stays in-rack and is not
  // uplink-limited, lifting both numbers slightly above the fraction.
  EXPECT_NEAR(half.normalized_throughput, 0.55, 0.12);
  EXPECT_NEAR(quarter.normalized_throughput, 0.33, 0.12);
  EXPECT_GT(half.normalized_throughput, quarter.normalized_throughput);
}

TEST(Bisection, QuartzBeatsHalfBisectionEverywhere) {
  // The paper's conclusion from Fig. 10: Quartz sits between 1/2 and
  // full bisection for all three patterns.
  for (auto pattern : {ThroughputPattern::kPermutation, ThroughputPattern::kIncast,
                       ThroughputPattern::kRackShuffle}) {
    const auto quartz = run_bisection(FabricUnderTest::kQuartz, pattern, small_params());
    const auto half = run_bisection(FabricUnderTest::kHalfBisection, pattern, small_params());
    const auto full =
        run_bisection(FabricUnderTest::kFullBisection, pattern, small_params());
    EXPECT_GT(quartz.normalized_throughput, half.normalized_throughput)
        << throughput_pattern_name(pattern);
    EXPECT_LE(quartz.normalized_throughput, full.normalized_throughput + 1e-9)
        << throughput_pattern_name(pattern);
  }
}

TEST(Bisection, QuartzPermutationNearFull) {
  // Fig. 10: ~0.9 of full bisection for random permutation.
  const auto r = run_bisection(FabricUnderTest::kQuartz, ThroughputPattern::kPermutation,
                               small_params());
  EXPECT_GT(r.normalized_throughput, 0.75);
}

TEST(Bisection, QuartzIncastNearFull) {
  const auto quartz =
      run_bisection(FabricUnderTest::kQuartz, ThroughputPattern::kIncast, small_params());
  const auto full =
      run_bisection(FabricUnderTest::kFullBisection, ThroughputPattern::kIncast, small_params());
  EXPECT_GT(quartz.normalized_throughput, 0.85 * full.normalized_throughput);
}

TEST(Bisection, TwoHopRoutingRescuesShuffle) {
  // §3.4: concentrated rack-to-rack traffic needs VLB; direct-only
  // routing collapses to the single lightpath's share.
  const auto direct = run_bisection(FabricUnderTest::kQuartzDirectOnly,
                                    ThroughputPattern::kRackShuffle, small_params());
  const auto vlb =
      run_bisection(FabricUnderTest::kQuartz, ThroughputPattern::kRackShuffle, small_params());
  EXPECT_GT(vlb.normalized_throughput, direct.normalized_throughput * 1.2);
}

TEST(Bisection, FlowCountsMatchPattern) {
  const auto perm = run_bisection(FabricUnderTest::kQuartz, ThroughputPattern::kPermutation,
                                  small_params());
  EXPECT_EQ(perm.flows, 64);
  BisectionParams p = small_params();
  p.incast_fan_in = 5;
  const auto inc = run_bisection(FabricUnderTest::kQuartz, ThroughputPattern::kIncast, p);
  EXPECT_EQ(inc.flows, 64 * 5);
}

TEST(Bisection, DeterministicForSeed) {
  const auto a =
      run_bisection(FabricUnderTest::kQuartz, ThroughputPattern::kRackShuffle, small_params());
  const auto b =
      run_bisection(FabricUnderTest::kQuartz, ThroughputPattern::kRackShuffle, small_params());
  EXPECT_DOUBLE_EQ(a.normalized_throughput, b.normalized_throughput);
}

TEST(Bisection, RejectsTinyFabric) {
  BisectionParams p;
  p.racks = 1;
  EXPECT_THROW(
      run_bisection(FabricUnderTest::kQuartz, ThroughputPattern::kPermutation, p),
      std::invalid_argument);
}

class BisectionPatternSweep
    : public ::testing::TestWithParam<std::tuple<FabricUnderTest, ThroughputPattern>> {};

TEST_P(BisectionPatternSweep, NormalizedThroughputInUnitRange) {
  const auto [fabric, pattern] = GetParam();
  const auto r = run_bisection(fabric, pattern, small_params());
  EXPECT_GT(r.normalized_throughput, 0.0);
  EXPECT_LE(r.normalized_throughput, 1.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, BisectionPatternSweep,
    ::testing::Combine(::testing::Values(FabricUnderTest::kFullBisection,
                                         FabricUnderTest::kQuartz,
                                         FabricUnderTest::kQuartzDirectOnly,
                                         FabricUnderTest::kHalfBisection,
                                         FabricUnderTest::kQuarterBisection),
                       ::testing::Values(ThroughputPattern::kPermutation,
                                         ThroughputPattern::kIncast,
                                         ThroughputPattern::kRackShuffle)));

}  // namespace
}  // namespace quartz::flow
