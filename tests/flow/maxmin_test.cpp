#include "flow/maxmin.hpp"

#include <gtest/gtest.h>

#include "flow/patterns.hpp"
#include "topo/builders.hpp"

namespace quartz::flow {
namespace {

using topo::NodeId;

topo::BuiltTopology dumbbell() {
  // Two hosts on each of two switches joined by one 10G link.
  topo::QuartzRingParams p;
  p.switches = 2;
  p.hosts_per_switch = 2;
  p.mesh_rate = gigabits_per_second(10);
  p.links.host_rate = gigabits_per_second(10);
  return topo::quartz_ring(p);
}

TEST(MaxMin, SingleFlowGetsLineRate) {
  const auto t = dumbbell();
  Flow flow;
  flow.src = t.host_groups[0][0];
  flow.dst = t.host_groups[1][0];
  flow.routes = {shortest_route(t.graph, flow.src, flow.dst)};
  const auto result = max_min_fair(t.graph, {flow});
  EXPECT_NEAR(result.flow_rate[0], 1e10, 1);
  EXPECT_NEAR(result.aggregate, 1e10, 1);
}

TEST(MaxMin, TwoFlowsShareBottleneckEqually) {
  const auto t = dumbbell();
  std::vector<Flow> flows(2);
  flows[0].src = t.host_groups[0][0];
  flows[0].dst = t.host_groups[1][0];
  flows[1].src = t.host_groups[0][1];
  flows[1].dst = t.host_groups[1][1];
  for (auto& f : flows) f.routes = {shortest_route(t.graph, f.src, f.dst)};
  const auto result = max_min_fair(t.graph, flows);
  // Shared 10G mesh link: 5G each.
  EXPECT_NEAR(result.flow_rate[0], 5e9, 1e3);
  EXPECT_NEAR(result.flow_rate[1], 5e9, 1e3);
}

TEST(MaxMin, UnequalPathsGetMaxMinNotEqual) {
  // Classic 3-flow example: flows A (long) and B, C (short) where A
  // shares both links. With unit capacities: A = C1 shared with B,
  // C2 shared with C -> A gets 0.5, B gets 0.5, C gets 0.5.
  const auto t = dumbbell();
  // Build on the quartz mesh of 3 switches instead for two segments.
  topo::QuartzRingParams p;
  p.switches = 3;
  p.hosts_per_switch = 2;
  p.mesh_rate = gigabits_per_second(10);
  const auto tri = topo::quartz_ring(p);

  // Long flow 0->2 via detour through 1 (forced two-segment route),
  // competing with direct flows 0->1 and 1->2.
  Flow long_flow;
  long_flow.src = tri.host_groups[0][0];
  long_flow.dst = tri.host_groups[2][0];
  long_flow.routes = quartz_routes(tri.graph, tri.quartz_rings[0], long_flow.src, long_flow.dst,
                                   /*two_hop=*/true);
  // Keep only the detour route (drop the direct lightpath).
  long_flow.routes.erase(long_flow.routes.begin());
  ASSERT_EQ(long_flow.routes.size(), 1u);

  Flow f01, f12;
  f01.src = tri.host_groups[0][1];
  f01.dst = tri.host_groups[1][0];
  f01.routes = {shortest_route(tri.graph, f01.src, f01.dst)};
  f12.src = tri.host_groups[1][1];
  f12.dst = tri.host_groups[2][1];
  f12.routes = {shortest_route(tri.graph, f12.src, f12.dst)};

  const auto result = max_min_fair(tri.graph, {long_flow, f01, f12});
  EXPECT_NEAR(result.flow_rate[0], 5e9, 1e3);
  EXPECT_NEAR(result.flow_rate[1], 5e9, 1e3);
  EXPECT_NEAR(result.flow_rate[2], 5e9, 1e3);
}

TEST(MaxMin, MultipathSumsSubflows) {
  topo::QuartzRingParams p;
  p.switches = 4;
  p.hosts_per_switch = 1;
  p.mesh_rate = gigabits_per_second(10);
  p.links.host_rate = gigabits_per_second(40);  // NIC is not the bottleneck
  const auto t = topo::quartz_ring(p);
  Flow flow;
  flow.src = t.hosts[0];
  flow.dst = t.hosts[1];
  flow.routes = quartz_routes(t.graph, t.quartz_rings[0], flow.src, flow.dst, true);
  ASSERT_EQ(flow.routes.size(), 3u);  // direct + 2 detours
  const auto result = max_min_fair(t.graph, {flow});
  // 10G direct + 2 x 10G detours = 30G.
  EXPECT_NEAR(result.flow_rate[0], 3e10, 1e4);
}

TEST(MaxMin, LineUsedAccountsAllocations) {
  const auto t = dumbbell();
  Flow flow;
  flow.src = t.host_groups[0][0];
  flow.dst = t.host_groups[1][0];
  flow.routes = {shortest_route(t.graph, flow.src, flow.dst)};
  const auto result = max_min_fair(t.graph, {flow});
  double used = 0;
  for (double u : result.line_used) used += u;
  // 3 directed lines each carry the full 10G.
  EXPECT_NEAR(used, 3e10, 10);
}

TEST(MaxMin, ResidualStageSeesLeftoverOnly) {
  const auto t = dumbbell();
  Flow first;
  first.src = t.host_groups[0][0];
  first.dst = t.host_groups[1][0];
  first.routes = {shortest_route(t.graph, first.src, first.dst)};
  const auto stage1 = max_min_fair(t.graph, {first});

  Flow second;
  second.src = t.host_groups[0][1];
  second.dst = t.host_groups[1][1];
  second.routes = {shortest_route(t.graph, second.src, second.dst)};
  const auto stage2 = max_min_fair(t.graph, {second}, stage1.line_used);
  // The mesh link is fully consumed by stage 1.
  EXPECT_NEAR(stage2.flow_rate[0], 0.0, 1.0);
}

TEST(MaxMin, AdaptiveNeverBelowDirectOnly) {
  topo::QuartzRingParams p;
  p.switches = 6;
  p.hosts_per_switch = 3;
  const auto t = topo::quartz_ring(p);
  std::vector<Flow> flows;
  // Hot pair: all hosts of rack 0 send to rack 1.
  for (int i = 0; i < 3; ++i) {
    Flow f;
    f.src = t.host_groups[0][static_cast<std::size_t>(i)];
    f.dst = t.host_groups[1][static_cast<std::size_t>(i)];
    f.routes = quartz_routes(t.graph, t.quartz_rings[0], f.src, f.dst, true);
    flows.push_back(std::move(f));
  }
  const auto adaptive = quartz_adaptive_allocate(t.graph, flows);

  std::vector<Flow> direct_only = flows;
  for (auto& f : direct_only) f.routes.resize(1);
  const auto direct = max_min_fair(t.graph, direct_only);

  EXPECT_GE(adaptive.aggregate, direct.aggregate * 0.999);
  // The hot rack pair overflows its single 10G lightpath; VLB spillover
  // must add real throughput.
  EXPECT_GT(adaptive.aggregate, direct.aggregate * 1.5);
}

TEST(MaxMin, RejectsMalformedInput) {
  const auto t = dumbbell();
  Flow empty;
  empty.src = t.hosts[0];
  empty.dst = t.hosts[1];
  EXPECT_THROW(max_min_fair(t.graph, {empty}), std::invalid_argument);

  Flow bad_initial;
  bad_initial.src = t.hosts[0];
  bad_initial.dst = t.hosts[1];
  bad_initial.routes = {shortest_route(t.graph, bad_initial.src, bad_initial.dst)};
  EXPECT_THROW(max_min_fair(t.graph, {bad_initial}, std::vector<double>{1.0}),
               std::invalid_argument);
}

TEST(Routes, ShortestRouteEndsAtHosts) {
  const auto t = dumbbell();
  const Route r = shortest_route(t.graph, t.host_groups[0][0], t.host_groups[1][1]);
  EXPECT_EQ(r.hops(), 3u);  // host link, mesh link, host link
  EXPECT_THROW(shortest_route(t.graph, t.hosts[0], t.hosts[0]), std::invalid_argument);
}

TEST(Routes, QuartzRoutesSameSwitchPair) {
  topo::QuartzRingParams p;
  p.switches = 3;
  p.hosts_per_switch = 2;
  const auto t = topo::quartz_ring(p);
  const auto routes = quartz_routes(t.graph, t.quartz_rings[0], t.host_groups[0][0],
                                    t.host_groups[0][1], true);
  ASSERT_EQ(routes.size(), 1u);  // same ToR: no mesh traversal
  EXPECT_EQ(routes[0].hops(), 2u);
}

TEST(Routes, DetourCountIsRingMinusTwo) {
  topo::QuartzRingParams p;
  p.switches = 8;
  p.hosts_per_switch = 1;
  const auto t = topo::quartz_ring(p);
  const auto routes =
      quartz_routes(t.graph, t.quartz_rings[0], t.hosts[0], t.hosts[5], true);
  EXPECT_EQ(routes.size(), 1u + 6u);
  EXPECT_EQ(routes[0].hops(), 3u);
  for (std::size_t i = 1; i < routes.size(); ++i) EXPECT_EQ(routes[i].hops(), 4u);
}

TEST(MaxMinSolver, MatchesFreeFunctionAndReuses) {
  const auto t = dumbbell();
  std::vector<Flow> flows(2);
  flows[0].src = t.host_groups[0][0];
  flows[0].dst = t.host_groups[1][0];
  flows[1].src = t.host_groups[0][1];
  flows[1].dst = t.host_groups[1][1];
  for (auto& f : flows) f.routes = {shortest_route(t.graph, f.src, f.dst)};

  const auto reference = max_min_fair(t.graph, flows);
  MaxMinSolver solver(t.graph);
  // Repeated solves on one instance reuse the flat workspaces; every
  // solve must still match the one-shot free function exactly.
  for (int round = 0; round < 3; ++round) {
    const auto& result = solver.solve(flows);
    ASSERT_EQ(result.flow_rate.size(), reference.flow_rate.size());
    for (std::size_t i = 0; i < result.flow_rate.size(); ++i) {
      EXPECT_EQ(result.flow_rate[i], reference.flow_rate[i]);
    }
    EXPECT_EQ(result.aggregate, reference.aggregate);
  }
}

TEST(MaxMinSolver, PermutationStableThroughBottleneckTies) {
  // Four flows pinned to the same 10G mesh lightpath freeze in an exact
  // four-way bottleneck tie (2.5G each).  The solver promises rates are
  // a function of the flow *set*, not the input order — bit for bit,
  // even through the tie.
  topo::QuartzRingParams p;
  p.switches = 2;
  p.hosts_per_switch = 4;
  p.mesh_rate = gigabits_per_second(10);
  p.links.host_rate = gigabits_per_second(10);
  const auto t = topo::quartz_ring(p);

  std::vector<Flow> flows(4);
  for (std::size_t i = 0; i < 4; ++i) {
    flows[i].src = t.host_groups[0][i];
    flows[i].dst = t.host_groups[1][i];
    flows[i].routes = {shortest_route(t.graph, flows[i].src, flows[i].dst)};
  }

  MaxMinSolver solver(t.graph);
  const auto base = solver.solve(flows);  // copy: next solve invalidates
  const std::vector<double> base_rates = base.flow_rate;

  const std::vector<std::vector<std::size_t>> orders = {
      {3, 2, 1, 0}, {1, 3, 0, 2}, {2, 0, 3, 1}};
  for (const auto& order : orders) {
    std::vector<Flow> permuted;
    for (const std::size_t i : order) permuted.push_back(flows[i]);
    const auto& result = solver.solve(permuted);
    for (std::size_t slot = 0; slot < order.size(); ++slot) {
      EXPECT_EQ(result.flow_rate[slot], base_rates[order[slot]])
          << "flow " << order[slot] << " changed rate when solved at slot " << slot;
    }
  }
}

TEST(MaxMinSolver, DemandCapFreezesFlowEarly) {
  // A capped flow stops rising at its offered load; the freed capacity
  // goes to the greedy flow sharing its bottleneck.
  const auto t = dumbbell();
  std::vector<Flow> flows(2);
  flows[0].src = t.host_groups[0][0];
  flows[0].dst = t.host_groups[1][0];
  flows[0].demand = 2e9;
  flows[1].src = t.host_groups[0][1];
  flows[1].dst = t.host_groups[1][1];
  for (auto& f : flows) f.routes = {shortest_route(t.graph, f.src, f.dst)};

  MaxMinSolver solver(t.graph);
  const auto& result = solver.solve(flows);
  EXPECT_NEAR(result.flow_rate[0], 2e9, 1e3);
  EXPECT_NEAR(result.flow_rate[1], 8e9, 1e3);
  EXPECT_NEAR(result.aggregate, 1e10, 1e3);
}

TEST(MaxMinSolver, UsedLinesCoverOnlyTheRouteFootprint) {
  // One flow crosses host link, mesh link, host link — exactly three
  // directed lines; the compact used-line set must not touch the rest.
  const auto t = dumbbell();
  Flow flow;
  flow.src = t.host_groups[0][0];
  flow.dst = t.host_groups[1][0];
  flow.routes = {shortest_route(t.graph, flow.src, flow.dst)};

  MaxMinSolver solver(t.graph);
  const auto& result = solver.solve({flow});
  EXPECT_EQ(solver.used_lines().size(), 3u);
  for (const std::size_t line : solver.used_lines()) {
    EXPECT_NEAR(result.line_used[line], 1e10, 1);
  }
}

class MaxMinInvariantSweep
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(MaxMinInvariantSweep, NoLineExceedsCapacityAndAllocationIsMaximal) {
  // Solver invariants across fabric sizes and pattern seeds:
  //  (1) no directed line carries more than its capacity;
  //  (2) every flow has at least one saturated line on every route
  //      (max-min maximality: nothing can be raised unilaterally).
  const auto [racks, seed] = GetParam();
  topo::QuartzRingParams p;
  p.switches = racks;
  p.hosts_per_switch = 4;
  const auto t = topo::quartz_ring(p);
  Rng rng(seed);
  const auto pairs = random_permutation(t.hosts, rng);

  std::vector<Flow> flows;
  for (const auto& pair : pairs) {
    Flow f;
    f.src = pair.src;
    f.dst = pair.dst;
    f.routes = quartz_routes(t.graph, t.quartz_rings[0], pair.src, pair.dst, true);
    flows.push_back(std::move(f));
  }
  const auto result = max_min_fair(t.graph, flows);

  // (1) capacity respected.
  for (const auto& link : t.graph.links()) {
    EXPECT_LE(result.line_used[static_cast<std::size_t>(link.id) * 2], link.rate * 1.0001);
    EXPECT_LE(result.line_used[static_cast<std::size_t>(link.id) * 2 + 1],
              link.rate * 1.0001);
  }

  // (2) maximality: every subflow crosses a saturated line.
  std::size_t sub = 0;
  for (const auto& flow : flows) {
    for (const auto& route : flow.routes) {
      bool saturated = false;
      for (std::size_t i = 0; i < route.links.size(); ++i) {
        const std::size_t line = static_cast<std::size_t>(route.links[i]) * 2 +
                                 static_cast<std::size_t>(route.directions[i]);
        const double cap = t.graph.link(route.links[i]).rate;
        if (result.line_used[line] >= cap * 0.999) saturated = true;
      }
      EXPECT_TRUE(saturated) << "subflow " << sub << " could be raised";
      ++sub;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Fabrics, MaxMinInvariantSweep,
                         ::testing::Combine(::testing::Values(4, 8, 12),
                                            ::testing::Values(1u, 2u, 3u)));

}  // namespace
}  // namespace quartz::flow
