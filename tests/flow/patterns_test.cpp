#include "flow/patterns.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace quartz::flow {
namespace {

using topo::NodeId;

std::vector<NodeId> make_hosts(int n) {
  std::vector<NodeId> hosts;
  for (int i = 0; i < n; ++i) hosts.push_back(i);
  return hosts;
}

std::vector<std::vector<NodeId>> make_racks(int racks, int per_rack) {
  std::vector<std::vector<NodeId>> out;
  NodeId next = 0;
  for (int r = 0; r < racks; ++r) {
    std::vector<NodeId> rack;
    for (int i = 0; i < per_rack; ++i) rack.push_back(next++);
    out.push_back(std::move(rack));
  }
  return out;
}

TEST(Permutation, EveryoneSendsAndReceivesOnce) {
  Rng rng(1);
  const auto hosts = make_hosts(50);
  const auto pairs = random_permutation(hosts, rng);
  ASSERT_EQ(pairs.size(), 50u);
  std::set<NodeId> sources, sinks;
  for (const auto& p : pairs) {
    EXPECT_NE(p.src, p.dst) << "fixed point";
    sources.insert(p.src);
    sinks.insert(p.dst);
  }
  EXPECT_EQ(sources.size(), 50u);
  EXPECT_EQ(sinks.size(), 50u);
}

TEST(Permutation, NoFixedPointsAcrossSeeds) {
  const auto hosts = make_hosts(17);
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    Rng rng(seed);
    for (const auto& p : random_permutation(hosts, rng)) {
      EXPECT_NE(p.src, p.dst) << "seed " << seed;
    }
  }
}

TEST(Permutation, RejectsTooFewHosts) {
  Rng rng(1);
  EXPECT_THROW(random_permutation(make_hosts(1), rng), std::invalid_argument);
}

TEST(Incast, EveryHostReceivesFanIn) {
  Rng rng(2);
  const auto hosts = make_hosts(30);
  const auto pairs = incast(hosts, 10, rng);
  EXPECT_EQ(pairs.size(), 300u);
  std::map<NodeId, std::set<NodeId>> senders_of;
  for (const auto& p : pairs) {
    EXPECT_NE(p.src, p.dst);
    senders_of[p.dst].insert(p.src);
  }
  for (NodeId h : hosts) {
    EXPECT_EQ(senders_of[h].size(), 10u) << "host " << h;
  }
}

TEST(Incast, RejectsFanInTooLarge) {
  Rng rng(3);
  EXPECT_THROW(incast(make_hosts(5), 5, rng), std::invalid_argument);
  EXPECT_THROW(incast(make_hosts(5), 0, rng), std::invalid_argument);
}

TEST(RackShuffle, EverySourceSendsOnce) {
  Rng rng(4);
  const auto racks = make_racks(8, 4);
  const auto pairs = rack_shuffle(racks, 4, rng);
  EXPECT_EQ(pairs.size(), 32u);
  std::set<NodeId> sources;
  for (const auto& p : pairs) sources.insert(p.src);
  EXPECT_EQ(sources.size(), 32u);
}

TEST(RackShuffle, DestinationsOutsideSourceRack) {
  Rng rng(5);
  const auto racks = make_racks(6, 5);
  for (const auto& p : rack_shuffle(racks, 3, rng)) {
    const int src_rack = static_cast<int>(p.src) / 5;
    const int dst_rack = static_cast<int>(p.dst) / 5;
    EXPECT_NE(src_rack, dst_rack);
  }
}

TEST(RackShuffle, UsesRequestedTargetCount) {
  Rng rng(6);
  const auto racks = make_racks(10, 8);
  const auto pairs = rack_shuffle(racks, 2, rng);
  // Each source rack's flows land in exactly 2 destination racks.
  std::map<int, std::set<int>> targets_of;
  for (const auto& p : pairs) {
    targets_of[static_cast<int>(p.src) / 8].insert(static_cast<int>(p.dst) / 8);
  }
  for (const auto& [rack, targets] : targets_of) {
    EXPECT_EQ(targets.size(), 2u) << "rack " << rack;
  }
}

TEST(RackShuffle, ReceiversMostlyDistinct) {
  Rng rng(7);
  const auto racks = make_racks(8, 8);
  const auto pairs = rack_shuffle(racks, 4, rng);
  std::map<NodeId, int> incoming;
  for (const auto& p : pairs) ++incoming[p.dst];
  // Collision-free where possible: no receiver should see more than a
  // few incoming flows (perfect balance would be exactly 1 on average).
  for (const auto& [host, count] : incoming) {
    EXPECT_LE(count, 4) << "host " << host;
  }
}

TEST(RackShuffle, RejectsBadArguments) {
  Rng rng(8);
  EXPECT_THROW(rack_shuffle(make_racks(1, 4), 1, rng), std::invalid_argument);
  EXPECT_THROW(rack_shuffle(make_racks(4, 4), 4, rng), std::invalid_argument);
  EXPECT_THROW(rack_shuffle(make_racks(4, 4), 0, rng), std::invalid_argument);
}

}  // namespace
}  // namespace quartz::flow
