#include "wavelength/assign.hpp"

#include <gtest/gtest.h>

namespace quartz::wavelength {
namespace {

TEST(Greedy, TrivialRings) {
  EXPECT_EQ(greedy_assign(2).channels_used, 1);
  EXPECT_EQ(greedy_assign(3).channels_used, 1);
}

TEST(Greedy, CoversEveryPairOnce) {
  const Assignment a = greedy_assign(9);
  EXPECT_EQ(static_cast<int>(a.paths.size()), pair_count(9));
  std::string error;
  EXPECT_TRUE(verify(a, &error)) << error;
}

TEST(Greedy, RespectsLowerBound) {
  for (int m = 2; m <= 40 && m <= kMaxRingSize; ++m) {
    EXPECT_GE(greedy_assign(m).channels_used, channel_lower_bound(m)) << "M=" << m;
  }
}

TEST(Greedy, NearOptimalVsLowerBound) {
  // Fig. 5: the greedy heuristic tracks the optimum closely; allow 25%
  // over the (itself conservative) lower bound.
  for (int m = 4; m <= 40; ++m) {
    const int lb = channel_lower_bound(m);
    const int greedy = greedy_assign(m).channels_used;
    EXPECT_LE(greedy, lb + std::max(2, lb / 4)) << "M=" << m;
  }
}

TEST(Greedy, RandomStartOffsetsStayValid) {
  Rng rng(123);
  for (int trial = 0; trial < 20; ++trial) {
    const Assignment a = greedy_assign(12, rng);
    std::string error;
    EXPECT_TRUE(verify(a, &error)) << error;
  }
}

TEST(Greedy, DeterministicWithoutRng) {
  const Assignment a = greedy_assign(15);
  const Assignment b = greedy_assign(15);
  EXPECT_EQ(a.channels_used, b.channels_used);
  ASSERT_EQ(a.paths.size(), b.paths.size());
  for (std::size_t i = 0; i < a.paths.size(); ++i) EXPECT_EQ(a.paths[i], b.paths[i]);
}

TEST(Greedy, PaperHeadlineNumbers) {
  // Fig. 5: at 160 channels per fiber the maximum ring size is 35.
  EXPECT_EQ(max_ring_size(160), 35);
  // §3.5: a 33-switch ring needs ~137 channels (greedy lands within a
  // few channels of the paper's figure).
  const int ch33 = greedy_assign(33).channels_used;
  EXPECT_GE(ch33, 130);
  EXPECT_LE(ch33, 145);
}

TEST(Greedy, MaxRingSizeMonotone) {
  EXPECT_LE(max_ring_size(80), max_ring_size(160));
  EXPECT_GE(max_ring_size(1), 1);
}

TEST(Greedy, RejectsBadRingSize) {
  EXPECT_THROW(greedy_assign(1), std::invalid_argument);
  EXPECT_THROW(greedy_assign(kMaxRingSize + 1), std::invalid_argument);
}

TEST(Exact, SmallRingOptima) {
  // Hand-verifiable optima (single-fiber model: a channel is unique per
  // physical segment regardless of direction).
  struct Case {
    int ring;
    int optimum;
  };
  // Odd rings meet the load lower bound exactly; even rings exceed it
  // by one (the single-fiber constraint).
  for (const Case c : {Case{2, 1}, Case{3, 1}, Case{4, 3}, Case{5, 3}, Case{6, 5}, Case{7, 6},
                       Case{9, 10}, Case{11, 15}, Case{13, 21}}) {
    const ExactResult r = exact_assign(c.ring);
    ASSERT_TRUE(r.proved_optimal) << "M=" << c.ring;
    EXPECT_EQ(r.assignment.channels_used, c.optimum) << "M=" << c.ring;
  }
}

TEST(Exact, ProducesVerifiableAssignments) {
  for (int m = 2; m <= 8; ++m) {
    const ExactResult r = exact_assign(m);
    std::string error;
    EXPECT_TRUE(verify(r.assignment, &error)) << "M=" << m << ": " << error;
  }
}

TEST(Exact, NeverWorseThanGreedy) {
  for (int m = 2; m <= 8; ++m) {
    EXPECT_LE(exact_assign(m).assignment.channels_used, greedy_assign(m).channels_used)
        << "M=" << m;
  }
}

TEST(Exact, AtLeastLowerBound) {
  for (int m = 2; m <= 8; ++m) {
    EXPECT_GE(exact_assign(m).assignment.channels_used, channel_lower_bound(m)) << "M=" << m;
  }
}

TEST(Exact, OddRingsMeetTheLoadBound) {
  // For odd rings the balanced direction split realises the lower
  // bound; the exact solver certifies it quickly.
  for (int m : {5, 7, 9, 11, 13}) {
    const ExactResult r = exact_assign(m);
    ASSERT_TRUE(r.proved_optimal) << "M=" << m;
    EXPECT_EQ(r.assignment.channels_used, channel_lower_bound(m)) << "M=" << m;
  }
}

TEST(Exact, BudgetExhaustionFallsBackToGreedy) {
  const ExactResult r = exact_assign(16, /*node_budget=*/10);
  EXPECT_FALSE(r.proved_optimal);
  EXPECT_EQ(r.assignment.channels_used, greedy_assign(16).channels_used);
  std::string error;
  EXPECT_TRUE(verify(r.assignment, &error)) << error;
}

class GreedyValiditySweep : public ::testing::TestWithParam<int> {};

TEST_P(GreedyValiditySweep, AssignmentVerifies) {
  const Assignment a = greedy_assign(GetParam());
  std::string error;
  EXPECT_TRUE(verify(a, &error)) << error;
  EXPECT_EQ(static_cast<int>(a.paths.size()), pair_count(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(RingSizes, GreedyValiditySweep,
                         ::testing::Range(2, 42));

class GreedySeededSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GreedySeededSweep, RandomOffsetsNeverBreakValidity) {
  Rng rng(GetParam());
  const Assignment a = greedy_assign(24, rng);
  std::string error;
  EXPECT_TRUE(verify(a, &error)) << error;
  // The randomized variant should stay in the same channel ballpark.
  const int deterministic = greedy_assign(24).channels_used;
  EXPECT_LE(a.channels_used, deterministic + deterministic / 4);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedySeededSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

class UnorderedGreedySweep : public ::testing::TestWithParam<int> {};

TEST_P(UnorderedGreedySweep, ValidButPaysForFragmentation) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7 + 1);
  const int m = GetParam();
  const Assignment naive = greedy_assign_unordered(m, rng);
  std::string error;
  EXPECT_TRUE(verify(naive, &error)) << error;
  EXPECT_GE(naive.channels_used, channel_lower_bound(m));
  // The §3.1.1 heuristic should essentially never lose to random order.
  EXPECT_GE(naive.channels_used, greedy_assign(m).channels_used - 1) << "M=" << m;
}

INSTANTIATE_TEST_SUITE_P(RingSizes, UnorderedGreedySweep,
                         ::testing::Values(4, 8, 12, 16, 24, 33, 41));

TEST(UnorderedGreedy, FragmentationCostGrowsWithRingSize) {
  // Averaged over seeds, random order needs strictly more channels for
  // the paper's flagship ring.
  Rng rng(99);
  int naive_total = 0;
  for (int trial = 0; trial < 10; ++trial) {
    naive_total += greedy_assign_unordered(33, rng).channels_used;
  }
  EXPECT_GT(naive_total / 10, greedy_assign(33).channels_used);
}

}  // namespace
}  // namespace quartz::wavelength
