#include "wavelength/lightpath.hpp"

#include "common/rng.hpp"
#include "wavelength/assign.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace quartz::wavelength {
namespace {

TEST(Lightpath, ArcLengths) {
  EXPECT_EQ(arc_length(6, 0, 2, Direction::kClockwise), 2);
  EXPECT_EQ(arc_length(6, 0, 2, Direction::kCounterClockwise), 4);
  EXPECT_EQ(arc_length(6, 4, 1, Direction::kClockwise), 3);
  EXPECT_EQ(shortest_arc_length(6, 0, 3), 3);  // diametral
  EXPECT_EQ(shortest_arc_length(7, 0, 5), 2);
}

TEST(Lightpath, SegmentMaskClockwise) {
  // Clockwise 1 -> 4 in a 6-ring crosses segments 1, 2, 3.
  EXPECT_EQ(segment_mask(6, 1, 4, Direction::kClockwise), 0b001110ull);
}

TEST(Lightpath, SegmentMaskCounterClockwiseIsComplement) {
  for (int m : {4, 5, 8, 11}) {
    const std::uint64_t ring = (m == 64) ? ~0ull : ((1ull << m) - 1);
    for (int s = 0; s < m; ++s) {
      for (int t = s + 1; t < m; ++t) {
        const auto cw = segment_mask(m, s, t, Direction::kClockwise);
        const auto ccw = segment_mask(m, s, t, Direction::kCounterClockwise);
        EXPECT_EQ(cw | ccw, ring);
        EXPECT_EQ(cw & ccw, 0ull);
      }
    }
  }
}

TEST(Lightpath, SegmentsForMatchesMask) {
  for (auto dir : {Direction::kClockwise, Direction::kCounterClockwise}) {
    const auto segs = segments_for(8, 2, 6, dir);
    std::uint64_t mask = 0;
    for (int s : segs) mask |= (1ull << s);
    EXPECT_EQ(mask, segment_mask(8, 2, 6, dir));
    EXPECT_EQ(static_cast<int>(segs.size()), arc_length(8, 2, 6, dir));
  }
}

TEST(Lightpath, SegmentsForTraversalOrder) {
  // CCW from 2 to 6 in an 8-ring: segments 1, 0, 7, 6 in that order.
  const auto segs = segments_for(8, 2, 6, Direction::kCounterClockwise);
  EXPECT_EQ(segs, (std::vector<int>{1, 0, 7, 6}));
}

TEST(Lightpath, RejectsBadArguments) {
  EXPECT_THROW(arc_length(6, 0, 0, Direction::kClockwise), std::invalid_argument);
  EXPECT_THROW(arc_length(6, -1, 2, Direction::kClockwise), std::invalid_argument);
  EXPECT_THROW(arc_length(6, 0, 6, Direction::kClockwise), std::invalid_argument);
  EXPECT_THROW(arc_length(1, 0, 0, Direction::kClockwise), std::invalid_argument);
  EXPECT_THROW(arc_length(65, 0, 1, Direction::kClockwise), std::invalid_argument);
}

TEST(Lightpath, PairCount) {
  EXPECT_EQ(pair_count(2), 1);
  EXPECT_EQ(pair_count(4), 6);
  EXPECT_EQ(pair_count(33), 528);
}

Assignment tiny_valid_assignment() {
  // 3-ring: pairs (0,1), (0,2), (1,2).  One channel suffices: route
  // (0,1) cw over seg 0, (1,2) cw over seg 1, (0,2) ccw over seg 2.
  Assignment a;
  a.ring_size = 3;
  a.paths = {
      {0, 1, Direction::kClockwise, 0},
      {1, 2, Direction::kClockwise, 0},
      {0, 2, Direction::kCounterClockwise, 0},
  };
  a.channels_used = 1;
  return a;
}

TEST(Verify, AcceptsValidAssignment) {
  std::string error;
  EXPECT_TRUE(verify(tiny_valid_assignment(), &error)) << error;
}

TEST(Verify, RejectsChannelReuseOnSegment) {
  auto a = tiny_valid_assignment();
  a.paths[2].dir = Direction::kClockwise;  // (0,2) cw crosses segs 0,1: conflicts
  std::string error;
  EXPECT_FALSE(verify(a, &error));
  EXPECT_NE(error.find("reused"), std::string::npos);
}

TEST(Verify, RejectsMissingPair) {
  auto a = tiny_valid_assignment();
  a.paths.pop_back();
  EXPECT_FALSE(verify(a));
}

TEST(Verify, RejectsUnassignedChannel) {
  auto a = tiny_valid_assignment();
  a.paths[0].channel = -1;
  std::string error;
  EXPECT_FALSE(verify(a, &error));
  EXPECT_NE(error.find("no channel"), std::string::npos);
}

TEST(Verify, RejectsDuplicatePair) {
  auto a = tiny_valid_assignment();
  a.paths[2] = a.paths[0];
  EXPECT_FALSE(verify(a));
}

TEST(Verify, RejectsUndercountedChannels) {
  auto a = tiny_valid_assignment();
  a.paths[0].channel = 5;
  EXPECT_FALSE(verify(a));  // channels_used says 1 but channel 5 in use
}

TEST(LowerBound, MatchesHandComputedValues) {
  // M=4: pairs at distance 1 (x4) and 2 (x2): total min length = 8,
  // over 4 segments = 2.
  EXPECT_EQ(channel_lower_bound(4), 2);
  // M=5: 5 pairs at d=1, 5 at d=2 -> 15 / 5 = 3.
  EXPECT_EQ(channel_lower_bound(5), 3);
  EXPECT_EQ(channel_lower_bound(2), 1);
}

TEST(LowerBound, GrowsQuadratically) {
  // Total shortest-arc length ~ M^3/8 over M segments -> ~M^2/8.
  const int lb33 = channel_lower_bound(33);
  EXPECT_NEAR(lb33, 33 * 33 / 8, 4);
}

TEST(SegmentLoads, SumsToTotalArcLength) {
  const auto a = tiny_valid_assignment();
  const auto loads = segment_loads(a);
  EXPECT_EQ(std::accumulate(loads.begin(), loads.end(), 0), 3);
}

TEST(PathBetween, OrderInsensitive) {
  const auto a = tiny_valid_assignment();
  EXPECT_EQ(a.path_between(2, 0).src, 0);
  EXPECT_EQ(a.path_between(2, 0).dst, 2);
  EXPECT_THROW(a.path_between(1, 1), std::invalid_argument);
}

class VerifierMutationSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VerifierMutationSweep, RandomCorruptionsAreCaughtOrStillValid) {
  // Property: verify() accepts every solver output, and random
  // single-field corruptions are either detected or (rarely) happen to
  // form another valid assignment — never an inconsistent acceptance.
  Rng rng(GetParam());
  const int m = 6 + static_cast<int>(rng.next_below(8));
  Assignment good = greedy_assign(m, rng);
  ASSERT_TRUE(verify(good));

  for (int trial = 0; trial < 50; ++trial) {
    Assignment mutated = good;
    auto& victim = mutated.paths[rng.next_below(mutated.paths.size())];
    switch (rng.next_below(3)) {
      case 0:  // channel swap to a random other channel
        victim.channel = static_cast<int>(rng.next_below(
            static_cast<std::uint64_t>(mutated.channels_used)));
        break;
      case 1:  // direction flip (other arc of the same pair)
        victim.dir = victim.dir == Direction::kClockwise ? Direction::kCounterClockwise
                                                         : Direction::kClockwise;
        break;
      default:  // duplicate another path's pair
        victim = mutated.paths[rng.next_below(mutated.paths.size())];
        break;
    }
    std::string error;
    const bool ok = verify(mutated, &error);
    if (ok) {
      // Acceptance is only legitimate when the mutation kept all
      // invariants; re-verify from scratch agrees by construction, so
      // just check the channel accounting stayed sane.
      EXPECT_LE(mutated.channels_used, good.channels_used);
    } else {
      EXPECT_FALSE(error.empty());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VerifierMutationSweep, ::testing::Values(11u, 22u, 33u, 44u));

}  // namespace
}  // namespace quartz::wavelength
