#include "wavelength/ilp_export.hpp"

#include <gtest/gtest.h>

#include "wavelength/assign.hpp"

namespace quartz::wavelength {
namespace {

TEST(IlpExport, DimensionsMatchFormulas) {
  // M = 5, greedy needs 3 channels: C vars = 20*3, lambdas = 3;
  // rows = 10 pair + 15 link-channel + 3 usage.
  const IlpDimensions dims = ilp_dimensions(5);
  EXPECT_EQ(dims.channels, greedy_assign(5).channels_used);
  EXPECT_EQ(dims.variables, 5 * 4 * dims.channels + dims.channels);
  EXPECT_EQ(dims.constraints, 10 + 5 * dims.channels + dims.channels);
}

TEST(IlpExport, LpFormatSectionsPresent) {
  const std::string lp = write_ilp_lp(4);
  EXPECT_NE(lp.find("Minimize"), std::string::npos);
  EXPECT_NE(lp.find("Subject To"), std::string::npos);
  EXPECT_NE(lp.find("Binary"), std::string::npos);
  EXPECT_NE(lp.rfind("End\n"), std::string::npos);
  EXPECT_NE(lp.find("lambda_0"), std::string::npos);
  EXPECT_NE(lp.find("pair_0_1:"), std::string::npos);
  EXPECT_NE(lp.find("link_0_ch_0:"), std::string::npos);
  EXPECT_NE(lp.find("used_ch_0:"), std::string::npos);
}

TEST(IlpExport, EveryPairConstraintEmitted) {
  const std::string lp = write_ilp_lp(6);
  for (int s = 0; s < 6; ++s) {
    for (int t = s + 1; t < 6; ++t) {
      const std::string row = "pair_" + std::to_string(s) + "_" + std::to_string(t) + ":";
      EXPECT_NE(lp.find(row), std::string::npos) << row;
    }
  }
}

TEST(IlpExport, ChannelPoolOverride) {
  IlpExportOptions options;
  options.channels = 7;
  const IlpDimensions dims = ilp_dimensions(4, options);
  EXPECT_EQ(dims.channels, 7);
  const std::string lp = write_ilp_lp(4, options);
  EXPECT_NE(lp.find("lambda_6"), std::string::npos);
  EXPECT_EQ(lp.find("lambda_7"), std::string::npos);
}

TEST(IlpExport, GreedyPoolAlwaysAdmitsAFeasiblePoint) {
  // The greedy assignment itself satisfies the emitted model (its
  // channel count sizes the pool), so the pool can never be too small.
  for (int m : {3, 5, 8, 12}) {
    const Assignment greedy = greedy_assign(m);
    const IlpDimensions dims = ilp_dimensions(m);
    EXPECT_GE(dims.channels, greedy.channels_used) << "M=" << m;
  }
}

TEST(IlpExport, RejectsBadRing) {
  EXPECT_THROW(write_ilp_lp(1), std::invalid_argument);
  EXPECT_THROW(write_ilp_lp(65), std::invalid_argument);
}

TEST(IlpExport, RowCountMatchesDimensions) {
  const std::string lp = write_ilp_lp(5);
  const IlpDimensions dims = ilp_dimensions(5);
  int rows = 0;
  for (const char* tag : {"pair_", "link_", "used_ch_"}) {
    std::size_t at = 0;
    while ((at = lp.find(tag, at)) != std::string::npos) {
      ++rows;
      ++at;
    }
  }
  EXPECT_EQ(rows, dims.constraints);
}

}  // namespace
}  // namespace quartz::wavelength
