#include "wavelength/multiring.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "wavelength/assign.hpp"

namespace quartz::wavelength {
namespace {

TEST(MultiRing, RingsRequired) {
  EXPECT_EQ(rings_required(0, 80), 0);
  EXPECT_EQ(rings_required(1, 80), 1);
  EXPECT_EQ(rings_required(80, 80), 1);
  EXPECT_EQ(rings_required(81, 80), 2);
  // §3.5: 137 channels -> two 80-channel muxes.
  EXPECT_EQ(rings_required(137, 80), 2);
  EXPECT_EQ(rings_required(160, 80), 2);
  EXPECT_EQ(rings_required(161, 80), 3);
}

TEST(MultiRing, RingsRequiredRejectsBadArgs) {
  EXPECT_THROW(rings_required(-1, 80), std::invalid_argument);
  EXPECT_THROW(rings_required(10, 0), std::invalid_argument);
}

TEST(MultiRing, RoundRobinStriping) {
  EXPECT_EQ(ring_for_channel(0, 2), 0);
  EXPECT_EQ(ring_for_channel(1, 2), 1);
  EXPECT_EQ(ring_for_channel(2, 2), 0);
  EXPECT_EQ(ring_for_channel(7, 3), 1);
}

TEST(MultiRing, ChannelsPerRingBalanced) {
  const Assignment plan = greedy_assign(33);
  for (int rings : {1, 2, 3, 4}) {
    const auto counts = channels_per_ring(plan, rings);
    ASSERT_EQ(static_cast<int>(counts.size()), rings);
    const int total = std::accumulate(counts.begin(), counts.end(), 0);
    EXPECT_EQ(total, plan.channels_used);
    const int max = *std::max_element(counts.begin(), counts.end());
    const int min = *std::min_element(counts.begin(), counts.end());
    EXPECT_LE(max - min, 1) << "rings=" << rings;
  }
}

TEST(MultiRing, TwoRingsFitThe33SwitchPlanInMuxCapacity) {
  const Assignment plan = greedy_assign(33);
  const int rings = rings_required(plan.channels_used, 80);
  EXPECT_EQ(rings, 2);
  for (int count : channels_per_ring(plan, rings)) EXPECT_LE(count, 80);
}

}  // namespace
}  // namespace quartz::wavelength
