#include "wavelength/factory_plan.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "wavelength/assign.hpp"
#include "wavelength/multiring.hpp"

namespace quartz::wavelength {
namespace {

TEST(FactoryPlan, CoversEveryPairOnce) {
  const Assignment a = greedy_assign(8);
  const auto grid = optical::WavelengthGrid::dwdm(80);
  const auto plan = factory_plan(a, grid, 1);
  EXPECT_EQ(plan.size(), a.paths.size());
  std::set<std::pair<int, int>> pairs;
  for (const auto& e : plan) {
    EXPECT_TRUE(pairs.insert({e.src, e.dst}).second);
    EXPECT_GT(e.wavelength_nm, 1500.0);
    EXPECT_LT(e.wavelength_nm, 1600.0);
  }
}

TEST(FactoryPlan, NoWavelengthClashWithinARing) {
  // Two lightpaths on the same physical ring that share a fiber
  // segment must be on different ITU wavelengths.
  const Assignment a = greedy_assign(12);
  const auto grid = optical::WavelengthGrid::dwdm(80);
  const int rings = rings_required(a.channels_used, 80);
  const auto plan = factory_plan(a, grid, rings);
  for (std::size_t i = 0; i < plan.size(); ++i) {
    for (std::size_t j = i + 1; j < plan.size(); ++j) {
      const auto& x = plan[i];
      const auto& y = plan[j];
      if (x.physical_ring != y.physical_ring || x.grid_index != y.grid_index) continue;
      const auto mask_x = segment_mask(a.ring_size, x.src, x.dst, x.dir);
      const auto mask_y = segment_mask(a.ring_size, y.src, y.dst, y.dir);
      EXPECT_EQ(mask_x & mask_y, 0ull)
          << "wavelength clash between (" << x.src << "," << x.dst << ") and (" << y.src << ","
          << y.dst << ")";
    }
  }
}

TEST(FactoryPlan, The33SwitchPlanFitsTwo80ChannelRings) {
  const Assignment a = greedy_assign(33);
  const auto grid = optical::WavelengthGrid::dwdm(80);
  const int rings = rings_required(a.channels_used, 80);
  ASSERT_EQ(rings, 2);
  const auto plan = factory_plan(a, grid, rings);
  for (const auto& e : plan) {
    EXPECT_LT(e.grid_index, 80);
    EXPECT_LT(e.physical_ring, 2);
  }
}

TEST(FactoryPlan, OverflowingGridRejected) {
  const Assignment a = greedy_assign(33);  // ~140 channels
  const auto grid = optical::WavelengthGrid::dwdm(80);
  EXPECT_THROW(factory_plan(a, grid, 1), std::invalid_argument);
}

TEST(FactoryPlan, TuningSheetHasOneEntryPerPeer) {
  const Assignment a = greedy_assign(10);
  const auto grid = optical::WavelengthGrid::dwdm(80);
  const auto plan = factory_plan(a, grid, 1);
  for (int sw = 0; sw < 10; ++sw) {
    const auto sheet = tuning_sheet(plan, sw);
    EXPECT_EQ(sheet.size(), 9u) << "switch " << sw;
    std::set<int> peers;
    for (const auto& e : sheet) peers.insert(e.src == sw ? e.dst : e.src);
    EXPECT_EQ(peers.size(), 9u);
  }
}

TEST(FactoryPlan, GridSlotsStripedAcrossRings) {
  const Assignment a = greedy_assign(6);
  const auto grid = optical::WavelengthGrid::dwdm(80);
  const auto plan = factory_plan(a, grid, 2);
  for (const auto& e : plan) {
    EXPECT_EQ(e.physical_ring, e.channel % 2);
    EXPECT_EQ(e.grid_index, e.channel / 2);
  }
}

}  // namespace
}  // namespace quartz::wavelength
