#include "optical/grid.hpp"

#include <gtest/gtest.h>

namespace quartz::optical {
namespace {

TEST(Grid, Dwdm100GHzChannels) {
  const auto grid = WavelengthGrid::dwdm(80);
  EXPECT_EQ(grid.size(), 80u);
  EXPECT_EQ(grid.kind(), GridKind::kDwdm100GHz);
  // Anchor 193.1 THz ~ 1552.52 nm.
  EXPECT_NEAR(grid.channel(0).wavelength_nm, 1552.52, 0.01);
  // Channels ascend in frequency so descend in wavelength.
  EXPECT_GT(grid.channel(0).wavelength_nm, grid.channel(79).wavelength_nm);
}

TEST(Grid, Dwdm50GHzAllows160) {
  const auto grid = WavelengthGrid::dwdm(160, GridKind::kDwdm50GHz);
  EXPECT_EQ(grid.size(), 160u);
  EXPECT_DOUBLE_EQ(grid.channel(5).spacing_ghz, 50.0);
}

TEST(Grid, DwdmCapacityEnforced) {
  EXPECT_THROW(WavelengthGrid::dwdm(81), std::invalid_argument);
  EXPECT_THROW(WavelengthGrid::dwdm(161, GridKind::kDwdm50GHz), std::invalid_argument);
  EXPECT_THROW(WavelengthGrid::dwdm(0), std::invalid_argument);
}

TEST(Grid, CwdmWavelengths) {
  const auto grid = WavelengthGrid::cwdm(18);
  EXPECT_EQ(grid.size(), 18u);
  EXPECT_DOUBLE_EQ(grid.channel(0).wavelength_nm, 1271.0);
  // The prototype's 1470/1490/1510 nm bands are channels 10-12.
  EXPECT_DOUBLE_EQ(grid.channel(10).wavelength_nm, 1471.0);
  EXPECT_DOUBLE_EQ(grid.channel(11).wavelength_nm, 1491.0);
  EXPECT_DOUBLE_EQ(grid.channel(12).wavelength_nm, 1511.0);
}

TEST(Grid, CwdmCapacityEnforced) {
  EXPECT_THROW(WavelengthGrid::cwdm(19), std::invalid_argument);
}

TEST(Grid, ChannelIndexBounds) {
  const auto grid = WavelengthGrid::cwdm(4);
  EXPECT_THROW(grid.channel(4), std::invalid_argument);
}

TEST(Grid, Names) {
  EXPECT_EQ(WavelengthGrid::dwdm(80).name(), "DWDM-100GHz/80");
  EXPECT_EQ(WavelengthGrid::cwdm(4).name(), "CWDM/4");
}

TEST(Grid, PaperCapacityConstants) {
  // §3.1: 160 channels per fiber, ~80 per commodity mux.
  EXPECT_EQ(kMaxChannelsPerFiber, 160u);
  EXPECT_EQ(kMaxChannelsPerMux, 80u);
}

}  // namespace
}  // namespace quartz::optical
