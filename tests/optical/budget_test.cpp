#include "optical/budget.hpp"

#include <gtest/gtest.h>

namespace quartz::optical {
namespace {

RingBudgetParams paper_params(std::size_t ring_size) {
  RingBudgetParams params;
  params.ring_size = ring_size;
  params.transceiver = TransceiverSpec::dwdm_10g();
  params.mux = MuxDemuxSpec::dwdm_80ch();
  params.amplifier = AmplifierSpec::edfa_80ch();
  return params;
}

TEST(Budget, PaperMuxBudgetIs3point17) {
  // §3.3: (4 dBm - (-15 dBm)) / 6 dB = 3.17 mux traversals.
  const double muxes =
      max_muxes_without_amplification(TransceiverSpec::dwdm_10g(), MuxDemuxSpec::dwdm_80ch());
  EXPECT_NEAR(muxes, 19.0 / 6.0, 1e-12);
}

TEST(Budget, WorstCaseHops) {
  EXPECT_EQ(worst_case_hops(4), 2u);
  EXPECT_EQ(worst_case_hops(24), 12u);
  EXPECT_EQ(worst_case_hops(33), 16u);
}

TEST(Budget, PaperRuleOneAmpPerTwoSwitches) {
  EXPECT_EQ(paper_rule_amplifier_count(24), 12u);
  EXPECT_EQ(paper_rule_amplifier_count(33), 17u);
}

TEST(Budget, TwentyFourNodeRingIsFeasible) {
  const AmplifierPlan plan = plan_ring_amplifiers(paper_params(24));
  ASSERT_TRUE(plan.feasible);
  EXPECT_GT(plan.amplifier_count(), 0u);
  EXPECT_TRUE(validate_plan(paper_params(24), plan));
}

TEST(Budget, EveryReceiverAboveSensitivity) {
  const auto params = paper_params(24);
  const AmplifierPlan plan = plan_ring_amplifiers(params);
  ASSERT_TRUE(plan.feasible);
  for (std::size_t src = 0; src < params.ring_size; ++src) {
    for (std::size_t hops = 1; hops <= worst_case_hops(params.ring_size); ++hops) {
      EXPECT_GE(receive_power(params, plan, src, hops), params.transceiver.sensitivity)
          << "src=" << src << " hops=" << hops;
    }
  }
}

TEST(Budget, SmallRingNeedsNoAmplifiers) {
  // One hop costs 2 muxes = 12 dB < the 19 dB budget; the §6 4-switch
  // prototype ran without amplifiers.
  const AmplifierPlan plan = plan_ring_amplifiers(paper_params(3));
  ASSERT_TRUE(plan.feasible);
  EXPECT_EQ(plan.amplifier_count(), 0u);
}

TEST(Budget, PrototypeCwdmRingNeedsNoAmplifiers) {
  RingBudgetParams params;
  params.ring_size = 4;
  params.transceiver = TransceiverSpec::cwdm_1g();
  params.mux = MuxDemuxSpec::cwdm_4ch();
  const AmplifierPlan plan = plan_ring_amplifiers(params);
  ASSERT_TRUE(plan.feasible);
  EXPECT_EQ(plan.amplifier_count(), 0u);
}

TEST(Budget, PrototypeNeedsAttenuators) {
  // §6: "We actually need to use attenuators to protect the receivers
  // from overloading" — a 1-hop CWDM path arrives hot.
  RingBudgetParams params;
  params.ring_size = 4;
  params.transceiver = TransceiverSpec::cwdm_1g();
  params.mux = MuxDemuxSpec::cwdm_4ch();
  const AmplifierPlan plan = plan_ring_amplifiers(params);
  ASSERT_TRUE(plan.feasible);
  EXPECT_FALSE(plan.attenuator_nodes.empty());
}

TEST(Budget, SingleSwitchRingTrivial) {
  const AmplifierPlan plan = plan_ring_amplifiers(paper_params(1));
  EXPECT_TRUE(plan.feasible);
  EXPECT_EQ(plan.amplifier_count(), 0u);
}

TEST(Budget, UnamplifiableLinkIsInfeasible) {
  auto params = paper_params(8);
  // A mux so lossy that even one hop with an amplifier cannot close the
  // budget.
  params.mux.insertion_loss = GainDb{40.0};
  const AmplifierPlan plan = plan_ring_amplifiers(params);
  EXPECT_FALSE(plan.feasible);
}

TEST(Budget, AmplifierCostAccounted) {
  const AmplifierPlan plan = plan_ring_amplifiers(paper_params(24));
  ASSERT_TRUE(plan.feasible);
  EXPECT_DOUBLE_EQ(plan.amplifier_cost_usd,
                   static_cast<double>(plan.amplifier_count()) *
                       AmplifierSpec::edfa_80ch().price_usd);
}

TEST(Osnr, NoAmplifierMeansNoiseFree) {
  // A 3-ring's longest lightpath is one hop (12 dB < the 19 dB budget),
  // so no amplifier and therefore no ASE noise.
  const auto params = paper_params(3);
  const AmplifierPlan plan = plan_ring_amplifiers(params);
  ASSERT_TRUE(plan.feasible);
  ASSERT_EQ(plan.amplifier_count(), 0u);
  EXPECT_GE(osnr_db(params, plan, 0, 1), 200.0);
}

TEST(Osnr, DegradesWithCascadedAmplifiers) {
  const auto params = paper_params(24);
  const AmplifierPlan plan = plan_ring_amplifiers(params);
  ASSERT_TRUE(plan.feasible);
  const double one_hop = osnr_db(params, plan, 0, 1);
  const double six_hops = osnr_db(params, plan, 0, 6);
  const double twelve_hops = osnr_db(params, plan, 0, 12);
  EXPECT_GT(one_hop, six_hops);
  EXPECT_GT(six_hops, twelve_hops);
}

TEST(Osnr, PaperRingMeetsTenGigThreshold) {
  // The §3.3 design must be OSNR-feasible, not just power-feasible.
  const auto params = paper_params(24);
  const AmplifierPlan plan = plan_ring_amplifiers(params);
  ASSERT_TRUE(plan.feasible);
  EXPECT_GT(worst_case_osnr_db(params, plan), kRequiredOsnrDb10G);
}

TEST(Osnr, WorseNoiseFigureLowersOsnr) {
  const auto params = paper_params(24);
  const AmplifierPlan plan = plan_ring_amplifiers(params);
  OsnrParams quiet;
  quiet.noise_figure = GainDb{4.0};
  OsnrParams noisy;
  noisy.noise_figure = GainDb{8.0};
  EXPECT_GT(worst_case_osnr_db(params, plan, quiet),
            worst_case_osnr_db(params, plan, noisy));
}

TEST(Osnr, RejectsBadArguments) {
  const auto params = paper_params(8);
  const AmplifierPlan plan = plan_ring_amplifiers(params);
  EXPECT_THROW(osnr_db(params, plan, 8, 1), std::invalid_argument);
  EXPECT_THROW(osnr_db(params, plan, 0, 5), std::invalid_argument);
}

TEST(GrayFailure, QAndBerTrackTheMarginMonotonically) {
  // More margin, higher Q; higher Q, lower BER.
  EXPECT_DOUBLE_EQ(q_factor_from_margin_db(0.0), kReferenceQ);
  EXPECT_GT(q_factor_from_margin_db(1.0), q_factor_from_margin_db(0.0));
  EXPECT_LT(q_factor_from_margin_db(-1.0), q_factor_from_margin_db(0.0));
  EXPECT_LT(ber_from_q(7.0), ber_from_q(5.0));
  EXPECT_LT(ber_from_q(5.0), ber_from_q(3.0));
  // Spec point: Q = 7 is the ~1e-12 BER receiver.
  EXPECT_NEAR(ber_from_q(kReferenceQ), 1.28e-12, 1e-13);
  // A dead receiver guesses: BER saturates at one half.
  EXPECT_DOUBLE_EQ(ber_from_q(0.0), 0.5);
  EXPECT_DOUBLE_EQ(ber_from_q(-3.0), 0.5);
}

TEST(GrayFailure, PacketLossIsStableForTinyBerAndSaturates) {
  // At the spec BER a 12000-bit packet is essentially never corrupted…
  const double at_spec = packet_loss_probability(ber_from_q(7.0), 12'000);
  EXPECT_GT(at_spec, 0.0);
  EXPECT_LT(at_spec, 1e-7);
  // …and the small-BER regime is the linear approximation bits * BER.
  EXPECT_NEAR(packet_loss_probability(1e-9, 12'000), 12'000 * 1e-9, 1e-10);
  // Saturation: a hopeless link loses everything.
  EXPECT_DOUBLE_EQ(packet_loss_probability(0.5, 12'000), 1.0);
  EXPECT_DOUBLE_EQ(packet_loss_probability(0.0, 12'000), 0.0);
  EXPECT_DOUBLE_EQ(packet_loss_probability(1.0, 100), 1.0);
  EXPECT_THROW(packet_loss_probability(-0.1, 100), std::invalid_argument);
  EXPECT_THROW(packet_loss_probability(1.1, 100), std::invalid_argument);
  EXPECT_THROW(packet_loss_probability(1e-9, 0), std::invalid_argument);
}

TEST(GrayFailure, DegradedDropProbabilityScalesWithTheInjuredBudget) {
  const auto params = paper_params(8);
  const AmplifierPlan plan = plan_ring_amplifiers(params);
  ASSERT_TRUE(plan.feasible);
  const double margin = worst_case_margin_db(params, plan);
  // A validated plan keeps every lightpath at or above sensitivity.
  EXPECT_GE(margin, 0.0);

  // Losing nothing loses (almost) nothing.
  EXPECT_LT(degraded_drop_probability(params, plan, 0.0), 1e-6);
  // Eroding the whole margin puts the worst lightpath exactly at
  // sensitivity: Q = 7, BER ~1.28e-12, still negligible per packet.
  EXPECT_LT(degraded_drop_probability(params, plan, margin), 1e-6);
  // Three dB below sensitivity is a proper gray failure: packets are
  // lost at a rate routing can *measure* but liveness cannot *see*.
  const double gray = degraded_drop_probability(params, plan, margin + 3.0);
  EXPECT_GT(gray, 0.01);
  EXPECT_LT(gray, 1.0);
  // Deeper injury only makes it worse, monotonically, up to total loss.
  EXPECT_GT(degraded_drop_probability(params, plan, margin + 4.0), gray);
  EXPECT_NEAR(degraded_drop_probability(params, plan, margin + 30.0), 1.0, 1e-9);
  EXPECT_THROW(degraded_drop_probability(params, plan, -1.0), std::invalid_argument);
}

class BudgetRingSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BudgetRingSweep, PlanIsValidAcrossRingSizes) {
  const auto params = paper_params(GetParam());
  const AmplifierPlan plan = plan_ring_amplifiers(params);
  ASSERT_TRUE(plan.feasible) << "ring=" << GetParam();
  EXPECT_TRUE(validate_plan(params, plan)) << "ring=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(RingSizes, BudgetRingSweep,
                         ::testing::Values(2, 3, 4, 6, 8, 12, 16, 24, 33, 35));

}  // namespace
}  // namespace quartz::optical
