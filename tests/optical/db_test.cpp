#include "optical/db.hpp"

#include <gtest/gtest.h>

namespace quartz::optical {
namespace {

TEST(Db, PowerPlusGain) {
  const PowerDbm p{4.0};
  const GainDb loss{6.0};
  EXPECT_DOUBLE_EQ((p - loss).value, -2.0);
  EXPECT_DOUBLE_EQ((p + GainDb{17.0}).value, 21.0);
}

TEST(Db, GainArithmetic) {
  EXPECT_DOUBLE_EQ((GainDb{6.0} + GainDb{6.0}).value, 12.0);
  EXPECT_DOUBLE_EQ((GainDb{6.0} * 3.0).value, 18.0);
  EXPECT_DOUBLE_EQ((2.0 * GainDb{5.0}).value, 10.0);
  EXPECT_DOUBLE_EQ((GainDb{10.0} - GainDb{4.0}).value, 6.0);
}

TEST(Db, PowerDifferenceIsRelative) {
  // The paper's §3.3 budget: 4 dBm launch, -15 dBm sensitivity = 19 dB.
  const GainDb budget = PowerDbm{4.0} - PowerDbm{-15.0};
  EXPECT_DOUBLE_EQ(budget.value, 19.0);
}

TEST(Db, DbmMilliwattConversions) {
  EXPECT_NEAR(dbm_to_milliwatts(PowerDbm{0.0}), 1.0, 1e-12);
  EXPECT_NEAR(dbm_to_milliwatts(PowerDbm{10.0}), 10.0, 1e-9);
  EXPECT_NEAR(dbm_to_milliwatts(PowerDbm{-30.0}), 1e-3, 1e-12);
  EXPECT_NEAR(milliwatts_to_dbm(1.0).value, 0.0, 1e-12);
  EXPECT_NEAR(milliwatts_to_dbm(100.0).value, 20.0, 1e-9);
}

TEST(Db, LinearGainConversion) {
  EXPECT_NEAR(db_to_linear(GainDb{3.0103}), 2.0, 1e-3);
  EXPECT_NEAR(db_to_linear(GainDb{0.0}), 1.0, 1e-12);
}

TEST(Db, Ordering) {
  EXPECT_LT(PowerDbm{-15.0}, PowerDbm{4.0});
  EXPECT_GT(PowerDbm{0.0}, PowerDbm{-1.0});
}

}  // namespace
}  // namespace quartz::optical
