// Checkpoint/restore of the serve loop: a loop restored mid-run (from
// memory or from the newest intact checkpoint on disk) finishes with a
// report identical to the uninterrupted run — admission state, retry
// budget, SLO windows, outstanding RPCs and even a staged-but-
// uncommitted regroom transaction all survive.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "serve/serve_loop.hpp"
#include "snapshot/io.hpp"

namespace quartz::serve {
namespace {

namespace fs = std::filesystem;

ServeConfig test_config() {
  ServeConfig config;
  config.ring.switches = 6;
  config.ring.hosts_per_switch = 2;
  config.duration = milliseconds(8);
  config.drain = milliseconds(4);
  config.arrivals_per_sec = 300'000.0;
  config.shifts = {{milliseconds(3), 0, 3, 0.8}};
  config.seed = 42;
  return config;
}

void expect_identical(const ServeReport& a, const ServeReport& b) {
  EXPECT_EQ(a.arrivals, b.arrivals);
  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_EQ(a.shed_class, b.shed_class);
  EXPECT_EQ(a.shed_limit, b.shed_limit);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.in_deadline, b.in_deadline);
  EXPECT_EQ(a.late, b.late);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.budget_denied, b.budget_denied);
  EXPECT_EQ(a.hopeless_dropped, b.hopeless_dropped);
  EXPECT_EQ(a.goodput_per_sec, b.goodput_per_sec);
  EXPECT_EQ(a.p50_us, b.p50_us);
  EXPECT_EQ(a.p99_us, b.p99_us);
  EXPECT_EQ(a.p999_us, b.p999_us);
  EXPECT_EQ(a.windows_closed, b.windows_closed);
  EXPECT_EQ(a.windows_breached, b.windows_breached);
  EXPECT_EQ(a.final_limit, b.final_limit);
  EXPECT_EQ(a.knee_limit, b.knee_limit);
  EXPECT_EQ(a.reconfigurations, b.reconfigurations);
  EXPECT_EQ(a.pins_applied, b.pins_applied);
  EXPECT_EQ(a.retry_amplification, b.retry_amplification);
  EXPECT_TRUE(a.conservation_ok);
  EXPECT_TRUE(b.conservation_ok);
}

ServeReport reference_report() {
  ServeLoop loop(test_config());
  return loop.run();
}

TEST(ServeSnapshot, MidRunRestoreFinishesIdentically) {
  const ServeReport reference = reference_report();
  ServeLoop first(test_config());
  first.start();
  first.run_to(milliseconds(5));  // past the shift: live pins + hot matrix in flight
  snapshot::Writer w;
  first.save_snapshot(w);
  std::string error;
  auto reader = snapshot::Reader::from_bytes(snapshot::file_bytes(w, 0), &error);
  ASSERT_TRUE(reader.has_value()) << error;
  ServeLoop second(test_config());
  second.restore_snapshot(*reader);
  expect_identical(reference, second.finish());
}

TEST(ServeSnapshot, CheckpointedRunMatchesPlainRun) {
  const std::string dir = (fs::temp_directory_path() / "serve_snapshot_ckpt").string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  const ServeReport reference = reference_report();

  // Checkpointing itself must not perturb the run...
  ServeLoop checkpointed(test_config());
  ServeLoop::CheckpointOptions options;
  options.dir = dir;
  options.every = milliseconds(2);
  expect_identical(reference, checkpointed.run_with_checkpoints(options));
  const auto files = snapshot::list_checkpoints(dir);
  ASSERT_GT(files.size(), 1u);

  // ...and a fresh loop resumed from the newest checkpoint on disk must
  // finish with the same report.
  ServeLoop resumed(test_config());
  std::string warnings;
  const auto sequence = resumed.restore_latest(dir, &warnings);
  ASSERT_TRUE(sequence.has_value());
  EXPECT_EQ(*sequence, files.back().sequence);
  EXPECT_TRUE(warnings.empty()) << warnings;
  expect_identical(reference, resumed.finish());
  fs::remove_all(dir);
}

TEST(ServeSnapshot, RestoreLatestFallsBackPastTornCheckpoint) {
  const std::string dir = (fs::temp_directory_path() / "serve_snapshot_torn").string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  ServeLoop checkpointed(test_config());
  ServeLoop::CheckpointOptions options;
  options.dir = dir;
  options.every = milliseconds(2);
  const ServeReport reference = checkpointed.run_with_checkpoints(options);

  auto files = snapshot::list_checkpoints(dir);
  ASSERT_GT(files.size(), 1u);
  fs::resize_file(files.back().path, fs::file_size(files.back().path) - 9);

  ServeLoop resumed(test_config());
  std::string warnings;
  const auto sequence = resumed.restore_latest(dir, &warnings);
  ASSERT_TRUE(sequence.has_value());
  EXPECT_EQ(*sequence, files.back().sequence - 1);
  EXPECT_NE(warnings.find("rejected"), std::string::npos) << warnings;
  expect_identical(reference, resumed.finish());
  fs::remove_all(dir);
}

TEST(ServeSnapshot, StagedRegroomTransactionSurvives) {
  // Open a regroom transaction mid-run, checkpoint with it staged, and
  // prove the restored loop carries the open transaction: committing on
  // both sides yields the same result and the runs stay identical.
  ServeLoop first(test_config());
  first.start();
  first.run_to(milliseconds(4));
  const topo::BuiltTopology& topo = first.topology();
  ASSERT_GE(topo.hosts.size(), 4u);
  routing::PinnedDetourOracle& oracle = first.oracle();
  oracle.begin_regroom();
  oracle.stage_pin(topo.hosts.front(), topo.hosts.back(), topo.quartz_rings.front()[2]);
  ASSERT_TRUE(oracle.regrooming());

  snapshot::Writer w;
  first.save_snapshot(w);
  std::string error;
  auto reader = snapshot::Reader::from_bytes(snapshot::file_bytes(w, 0), &error);
  ASSERT_TRUE(reader.has_value()) << error;
  ServeLoop second(test_config());
  second.restore_snapshot(*reader);
  ASSERT_TRUE(second.oracle().regrooming());

  const auto a = first.oracle().commit_regroom();
  const auto b = second.oracle().commit_regroom();
  EXPECT_EQ(a.applied, b.applied);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.removed, b.removed);
  expect_identical(first.finish(), second.finish());
}

TEST(ServeSnapshot, RestoreRefusesStartedLoop) {
  ServeLoop first(test_config());
  first.start();
  first.run_to(milliseconds(2));
  snapshot::Writer w;
  first.save_snapshot(w);
  std::string error;
  auto reader = snapshot::Reader::from_bytes(snapshot::file_bytes(w, 0), &error);
  ASSERT_TRUE(reader.has_value()) << error;
  ServeLoop started(test_config());
  started.start();
  EXPECT_THROW(started.restore_snapshot(*reader), std::invalid_argument);
}

TEST(ServeSnapshot, RestoreRefusesDifferentConfig) {
  ServeLoop first(test_config());
  first.start();
  first.run_to(milliseconds(2));
  snapshot::Writer w;
  first.save_snapshot(w);
  std::string error;
  auto reader = snapshot::Reader::from_bytes(snapshot::file_bytes(w, 0), &error);
  ASSERT_TRUE(reader.has_value()) << error;
  ServeConfig other = test_config();
  other.seed = 43;
  ServeLoop loop(other);
  EXPECT_THROW(loop.restore_snapshot(*reader), std::invalid_argument);
}

}  // namespace
}  // namespace quartz::serve
