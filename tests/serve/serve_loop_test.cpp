#include "serve/serve_loop.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace quartz::serve {
namespace {

/// First mesh lightpath between two ring switches (by ring position).
topo::LinkId mesh_link_between(const topo::BuiltTopology& topo, topo::NodeId a, topo::NodeId b) {
  for (const auto& link : topo.graph.links()) {
    if (link.wdm_channel < 0) continue;
    if ((link.a == a && link.b == b) || (link.a == b && link.b == a)) return link.id;
  }
  return topo::kInvalidLink;
}

/// A small 4-switch ring with 1 Gb/s links so tests can overload it
/// with a few thousand requests.
ServeConfig small_config() {
  ServeConfig config;
  config.ring.switches = 4;
  config.ring.hosts_per_switch = 2;
  config.ring.mesh_rate = gigabits_per_second(1);
  config.ring.links.host_rate = gigabits_per_second(1);
  config.duration = milliseconds(5);
  config.drain = milliseconds(8);
  config.arrivals_per_sec = 50'000.0;
  config.reply_size = bytes(100);
  config.timeout = microseconds(1500);
  config.max_retries = 2;
  config.slo.window = microseconds(250);
  config.slo.budget_p99_us = 1200.0;
  config.slo.budget_p999_us = 1800.0;
  config.classes = {{"gold", 0.2, milliseconds(2)},
                    {"silver", 0.3, milliseconds(2)},
                    {"bronze", 0.5, milliseconds(2)}};
  config.seed = 42;
  return config;
}

TEST(ServeLoopTest, ValidatesConfig) {
  ServeConfig config = small_config();
  config.timeout = 0;
  EXPECT_THROW(ServeLoop{config}, std::invalid_argument);

  config = small_config();
  config.drain = config.timeout;  // cannot cover the retry tail
  EXPECT_THROW(ServeLoop{config}, std::invalid_argument);

  config = small_config();
  config.shifts = {{milliseconds(1), 0, 0, 0.5}};  // same switch twice
  EXPECT_THROW(ServeLoop{config}, std::invalid_argument);
}

TEST(ServeLoopTest, LightLoadCompletesEverythingInDeadline) {
  ServeLoop loop(small_config());
  const ServeReport report = loop.run();
  EXPECT_GT(report.arrivals, 100u);
  EXPECT_EQ(report.admitted, report.arrivals - report.shed_class - report.shed_limit);
  EXPECT_TRUE(report.conservation_ok);
  EXPECT_EQ(report.failed, 0u);
  EXPECT_EQ(report.retries, 0u);
  EXPECT_EQ(report.late, 0u);
  EXPECT_EQ(report.in_deadline, report.completed);
  EXPECT_GT(report.goodput_per_sec, 0.0);
  EXPECT_DOUBLE_EQ(report.retry_amplification, 1.0);
  EXPECT_EQ(report.windows_breached, 0u);
}

TEST(ServeLoopTest, RunsOnceOnly) {
  ServeLoop loop(small_config());
  (void)loop.run();
  EXPECT_THROW(loop.run(), std::logic_error);
}

TEST(ServeLoopTest, TraceReplayReproducesTheArrivals) {
  ServeLoop original(small_config());
  const ServeReport first = original.run();
  ASSERT_FALSE(original.trace().empty());

  ServeConfig replay_config = small_config();
  const std::vector<TraceEvent> trace = original.trace();
  replay_config.replay = &trace;
  ServeLoop replayed(replay_config);
  const ServeReport second = replayed.run();

  EXPECT_EQ(second.arrivals, first.arrivals);
  EXPECT_EQ(second.admitted, first.admitted);
  EXPECT_EQ(second.completed, first.completed);
  ASSERT_EQ(replayed.trace().size(), original.trace().size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(replayed.trace()[i].at, trace[i].at);
    EXPECT_EQ(replayed.trace()[i].cls, trace[i].cls);
    EXPECT_EQ(replayed.trace()[i].src, trace[i].src);
    EXPECT_EQ(replayed.trace()[i].dst, trace[i].dst);
  }
}

TEST(ServeLoopTest, SameSeedIsDeterministic) {
  ServeLoop a(small_config());
  ServeLoop b(small_config());
  const ServeReport ra = a.run();
  const ServeReport rb = b.run();
  EXPECT_EQ(ra.arrivals, rb.arrivals);
  EXPECT_EQ(ra.completed, rb.completed);
  EXPECT_EQ(ra.retries, rb.retries);
  EXPECT_DOUBLE_EQ(ra.p99_us, rb.p99_us);
}

TEST(ServeLoopTest, BlackholeBoundsRetryAmplificationViaBudget) {
  ServeConfig config = small_config();
  config.use_retry_budget = true;
  config.retry_budget.ratio = 0.05;
  config.retry_budget.burst = 5.0;
  ServeLoop loop(config);
  // Silently blackhole one mesh lightpath: the failure view never
  // learns (gray failure), so every request crossing it is lost and
  // only timeouts notice.
  const auto& ring = loop.topology().quartz_rings.front();
  const topo::LinkId victim = mesh_link_between(loop.topology(), ring[0], ring[1]);
  ASSERT_NE(victim, topo::kInvalidLink);
  loop.network().set_link_loss(victim, 1.0);

  const ServeReport report = loop.run();
  EXPECT_TRUE(report.conservation_ok);
  EXPECT_GT(report.failed, 0u);                   // blackholed calls resolve as failures
  EXPECT_GT(report.budget_denied + report.hopeless_dropped, 0u);
  // The budget holds send amplification far below the unbudgeted
  // ceiling of 1 + max_retries.
  EXPECT_LE(report.retry_amplification, 1.3);
  // Healthy pairs keep completing throughout.
  EXPECT_GT(report.in_deadline, 0u);
}

TEST(ServeLoopTest, DemandShiftTriggersRegroomWhichSpreadsPins) {
  ServeConfig config = small_config();
  config.shifts = {{milliseconds(1), 0, 1, 0.9}};
  config.reconfigure_on_shift = true;
  config.reconfigure_delay = microseconds(100);
  ServeLoop loop(config);
  const std::uint64_t epoch_before = loop.oracle().state_epoch();
  const ServeReport report = loop.run();
  EXPECT_EQ(report.reconfigurations, 1u);
  // 2 hosts x 2 hosts pinned across the two intermediate switches.
  EXPECT_EQ(report.pins_applied, 4u);
  EXPECT_EQ(report.pins_rejected, 0u);
  EXPECT_EQ(loop.oracle().pin_count(), 4u);
  EXPECT_GT(loop.oracle().state_epoch(), epoch_before);
  EXPECT_TRUE(report.conservation_ok);
  EXPECT_FALSE(loop.oracle().regrooming());
}

TEST(ServeLoopTest, RegroomRejectsPinsOverDeadDetourLegs) {
  ServeConfig config = small_config();
  config.shifts = {{milliseconds(1), 0, 1, 0.9}};
  config.reconfigure_delay = microseconds(100);
  ServeLoop loop(config);
  // Kill both detour meshes legs via switch 2 before the regroom: pins
  // routed via ring[2] must be rejected make-before-break; pins via
  // ring[3] still apply.
  const auto& ring = loop.topology().quartz_rings.front();
  const topo::LinkId leg = mesh_link_between(loop.topology(), ring[0], ring[2]);
  ASSERT_NE(leg, topo::kInvalidLink);
  loop.network().at(microseconds(500), [&loop, leg] { loop.network().fail_link(leg); });

  const ServeReport report = loop.run();
  EXPECT_EQ(report.reconfigurations, 1u);
  EXPECT_EQ(report.pins_applied, 2u);   // via ring[3]
  EXPECT_EQ(report.pins_rejected, 2u);  // via ring[2] (dead first leg)
  EXPECT_EQ(loop.oracle().pin_count(), 2u);
}

TEST(ServeLoopTest, AdmissionOutDeliversUncontrolledPastTheKnee) {
  // Concentrate 95% of an overloaded arrival stream onto one 1 Gb/s
  // lightpath (capacity ~312k req/s; offered ~570k req/s).
  const auto overload = [](bool controlled) {
    ServeConfig config = small_config();
    config.duration = milliseconds(10);
    config.drain = milliseconds(8);
    config.arrivals_per_sec = 600'000.0;
    config.shifts = {{0, 0, 1, 0.95}};
    config.reconfigure_on_shift = false;  // isolate the admission effect
    config.use_admission = controlled;
    config.use_retry_budget = controlled;
    config.seed = 7;
    ServeLoop loop(config);
    return loop.run();
  };
  const ServeReport controlled = overload(true);
  const ServeReport uncontrolled = overload(false);

  EXPECT_TRUE(controlled.conservation_ok);
  EXPECT_TRUE(uncontrolled.conservation_ok);
  // Past the knee the uncontrolled loop queues to death: the controller
  // must deliver well more in-deadline work from identical offered load.
  EXPECT_GT(controlled.in_deadline, uncontrolled.in_deadline * 3 / 2);
  EXPECT_GT(controlled.shed_limit + controlled.shed_class, 0u);
  EXPECT_GT(controlled.knee_goodput, 0.0);
  // And it does so while holding the tail inside the deadline.
  EXPECT_LT(controlled.p99_us, 2000.0);
}

TEST(ServeLoopTest, PublishesServeCounters) {
  ServeLoop loop(small_config());
  (void)loop.run();
  telemetry::MetricRegistry registry;
  loop.publish_metrics(registry, "serve");
  EXPECT_GT(registry.counter("serve.arrivals").value(), 0u);
  EXPECT_GT(registry.counter("serve.admitted").value(), 0u);
  EXPECT_EQ(registry.counter("serve.retry_budget_denied").value(), 0u);
  EXPECT_GT(registry.gauge("serve.admission_limit").value(), 0.0);
  EXPECT_GT(registry.counter("serve.slo.windows_closed").value(), 0u);
  EXPECT_GT(registry.latency("serve.slo.latency_us").count(), 0u);
}

}  // namespace
}  // namespace quartz::serve
