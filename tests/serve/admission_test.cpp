#include "serve/admission.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace quartz::serve {
namespace {

telemetry::SloWindow clean_window(double goodput, std::uint64_t completed = 100) {
  telemetry::SloWindow w;
  w.completed = completed;
  w.in_deadline = completed;
  w.goodput_per_sec = goodput;
  return w;
}

telemetry::SloWindow breached_window(double goodput) {
  telemetry::SloWindow w = clean_window(goodput);
  w.p99_breach = true;
  return w;
}

AdmissionController::Config tight_config() {
  AdmissionController::Config config;
  config.initial_limit = 100;
  config.min_limit = 4;
  config.step = 0.2;
  config.smoothing = 1.0;  // no EWMA lag: windows speak for themselves
  config.breach_windows_to_shed = 2;
  config.clean_windows_to_restore = 3;
  return config;
}

TEST(AdmissionControllerTest, ValidatesConfigAndClassIndex) {
  AdmissionController::Config bad = tight_config();
  bad.min_limit = 0;
  EXPECT_THROW(AdmissionController(bad, 2), std::invalid_argument);
  EXPECT_THROW(AdmissionController(tight_config(), 0), std::invalid_argument);

  AdmissionController controller(tight_config(), 2);
  EXPECT_THROW(controller.admit(-1, 0), std::invalid_argument);
  EXPECT_THROW(controller.admit(2, 0), std::invalid_argument);
}

TEST(AdmissionControllerTest, AdmitsUnderLimitRejectsOver) {
  AdmissionController controller(tight_config(), 2);
  EXPECT_EQ(controller.admit(0, 0), AdmissionController::Decision::kAdmit);
  EXPECT_EQ(controller.admit(1, 99), AdmissionController::Decision::kAdmit);
  EXPECT_EQ(controller.admit(0, 100), AdmissionController::Decision::kOverLimit);
}

TEST(AdmissionControllerTest, ProbesUpWhileGoodputImproves) {
  AdmissionController controller(tight_config(), 1);
  // Stable -> probe up.
  controller.on_window(clean_window(1000.0));
  EXPECT_EQ(controller.state(), AdmissionController::State::kProbingUp);
  EXPECT_GT(controller.limit(), 100);
  const int probed = controller.limit();
  // The probe measured more goodput: it is accepted and probing continues.
  controller.on_window(clean_window(1500.0));
  EXPECT_EQ(controller.state(), AdmissionController::State::kProbingUp);
  EXPECT_GT(controller.limit(), probed);
  EXPECT_EQ(controller.knee_limit(), probed);
  EXPECT_DOUBLE_EQ(controller.knee_goodput(), 1500.0);
}

TEST(AdmissionControllerTest, FlatGoodputProbesDownThenSettles) {
  AdmissionController controller(tight_config(), 1);
  controller.on_window(clean_window(1000.0));  // stable -> probing up
  const int up_probe = controller.limit();
  controller.on_window(clean_window(1000.0));  // flat: up probe rejected
  EXPECT_EQ(controller.state(), AdmissionController::State::kProbingDown);
  EXPECT_LT(controller.limit(), 100);
  const int down_probe = controller.limit();
  // Same goodput with less concurrency: the tighter limit is kept.
  controller.on_window(clean_window(1000.0));
  EXPECT_EQ(controller.state(), AdmissionController::State::kStable);
  EXPECT_EQ(controller.limit(), down_probe);
  EXPECT_LT(down_probe, up_probe);
}

TEST(AdmissionControllerTest, BreachBacksOffMultiplicatively) {
  AdmissionController controller(tight_config(), 1);
  controller.on_window(breached_window(1000.0));
  EXPECT_EQ(controller.state(), AdmissionController::State::kStable);
  EXPECT_EQ(controller.limit(), 80);  // 100 * (1 - step)
  controller.on_window(breached_window(800.0));
  EXPECT_EQ(controller.limit(), 64);
}

TEST(AdmissionControllerTest, SustainedBreachShedsLowestClassFirst) {
  AdmissionController controller(tight_config(), 3);
  EXPECT_EQ(controller.shed_classes(), 0);
  controller.on_window(breached_window(1000.0));
  EXPECT_EQ(controller.shed_classes(), 0);  // one breach is a blip
  controller.on_window(breached_window(900.0));
  EXPECT_EQ(controller.shed_classes(), 1);  // sustained: shed class 2
  EXPECT_EQ(controller.admit(2, 0), AdmissionController::Decision::kShedClass);
  EXPECT_EQ(controller.admit(1, 0), AdmissionController::Decision::kAdmit);
  EXPECT_EQ(controller.admit(0, 0), AdmissionController::Decision::kAdmit);
  // Two more breached windows shed the next class; the highest class is
  // never shed.
  controller.on_window(breached_window(900.0));
  controller.on_window(breached_window(900.0));
  EXPECT_EQ(controller.shed_classes(), 2);
  controller.on_window(breached_window(900.0));
  controller.on_window(breached_window(900.0));
  EXPECT_EQ(controller.shed_classes(), 2);
  EXPECT_EQ(controller.admit(0, 0), AdmissionController::Decision::kAdmit);
  EXPECT_EQ(controller.shed_events(), 2u);
}

TEST(AdmissionControllerTest, CleanWindowsRestoreShedClasses) {
  AdmissionController controller(tight_config(), 2);
  controller.on_window(breached_window(1000.0));
  controller.on_window(breached_window(900.0));
  ASSERT_EQ(controller.shed_classes(), 1);
  controller.on_window(clean_window(900.0));
  controller.on_window(clean_window(900.0));
  EXPECT_EQ(controller.shed_classes(), 1);  // not sustained-clean yet
  controller.on_window(clean_window(900.0));
  EXPECT_EQ(controller.shed_classes(), 0);
  EXPECT_EQ(controller.restore_events(), 1u);
}

TEST(AdmissionControllerTest, LimitRespectsFloorAndCeiling) {
  AdmissionController::Config config = tight_config();
  config.initial_limit = 5;
  config.min_limit = 4;
  config.max_limit = 6;
  AdmissionController controller(config, 1);
  for (int i = 0; i < 10; ++i) controller.on_window(breached_window(100.0));
  EXPECT_GE(controller.limit(), 4);
  AdmissionController climber(config, 1);
  for (int i = 0; i < 10; ++i) climber.on_window(clean_window(1000.0 * (i + 1)));
  EXPECT_LE(climber.limit(), 6);
}

TEST(AdmissionControllerTest, EmptyWindowMovesNothing) {
  AdmissionController controller(tight_config(), 1);
  telemetry::SloWindow idle;
  controller.on_window(idle);
  EXPECT_EQ(controller.limit(), 100);
  EXPECT_EQ(controller.state(), AdmissionController::State::kStable);
  EXPECT_DOUBLE_EQ(controller.smoothed_goodput(), 0.0);
}

}  // namespace
}  // namespace quartz::serve
