// Cross-module integration: a Quartz design flows from the §3 planner
// through topology construction, routing, the packet simulator and the
// fault analyser without any seams showing.
#include <gtest/gtest.h>

#include "core/design.hpp"
#include "core/fault.hpp"
#include "flow/bisection.hpp"
#include "routing/oracle.hpp"
#include "sim/experiments.hpp"
#include "sim/workloads.hpp"
#include "topo/builders.hpp"
#include "topo/properties.hpp"
#include "wavelength/multiring.hpp"

namespace quartz {
namespace {

TEST(Integration, DesignToTopologyToSimulation) {
  // Plan a 6-switch ring, build it, and push RPC traffic through it.
  core::DesignParams design_params;
  design_params.switches = 6;
  design_params.server_ports_per_switch = 8;
  const core::QuartzDesign design = core::plan_design(design_params);
  ASSERT_TRUE(design.feasible) << design.infeasible_reason;

  topo::QuartzRingParams ring;
  ring.switches = design.params.switches;
  ring.hosts_per_switch = design.params.server_ports_per_switch;
  const topo::BuiltTopology t = topo::quartz_ring(ring);
  EXPECT_EQ(static_cast<int>(t.hosts.size()), design.total_server_ports);

  // The builder's channel metadata must agree with the design's plan.
  for (const auto& link : t.graph.links()) {
    if (link.wdm_channel < 0) continue;
    EXPECT_LT(link.wdm_channel, design.channels.channels_used);
    EXPECT_LT(link.wdm_ring, design.physical_rings);
  }

  routing::EcmpRouting routing(t.graph);
  routing::EcmpOracle oracle(routing);
  sim::Network net(t, oracle);
  Rng rng(31);
  sim::RpcParams rpc_params;
  rpc_params.calls = 200;
  sim::RpcWorkload rpc(net, t.hosts.front(), t.hosts.back(), rpc_params, rng);
  net.run_until(seconds(1));
  ASSERT_TRUE(rpc.done());
  // Two ULL hops each way plus serialization: single-digit microseconds.
  EXPECT_LT(rpc.rtt_us().mean(), 10.0);
}

TEST(Integration, DesignChannelsDriveFaultAnalysis) {
  core::DesignParams design_params;
  design_params.switches = 17;
  design_params.server_ports_per_switch = 16;
  design_params.switch_model.port_count = 64;
  const core::QuartzDesign design = core::plan_design(design_params);
  ASSERT_TRUE(design.feasible);

  core::FaultParams fault;
  fault.switches = design.params.switches;
  fault.physical_rings = design.physical_rings;
  fault.failed_links = 1;
  fault.trials = 500;
  const core::FaultResult result = core::analyze_faults(fault);
  EXPECT_GT(result.mean_bandwidth_loss, 0.0);
  EXPECT_LT(result.mean_bandwidth_loss, 0.5);
}

TEST(Integration, AnalysisAndSimulationAgreeOnMeshLatency) {
  // Zero-load analytic latency must match what the simulator measures
  // for a single packet on an idle mesh.
  topo::QuartzRingParams ring;
  ring.switches = 4;
  ring.hosts_per_switch = 2;
  ring.links.host_propagation = 0;
  ring.links.fabric_propagation = 0;
  const topo::BuiltTopology t = topo::quartz_ring(ring);

  const topo::TopologyProperties props = topo::analyze(t);
  EXPECT_EQ(props.zero_load_latency, nanoseconds(760));  // 2 x 380 ns

  routing::EcmpRouting routing(t.graph);
  routing::EcmpOracle oracle(routing);
  sim::Network net(t, oracle);
  TimePs measured = -1;
  const int task = net.new_task([&](const sim::Packet&, TimePs l) { measured = l; });
  net.send(t.host_groups[0][0], t.host_groups[2][0], bytes(400), task, 1);
  net.run_until(milliseconds(1));
  // The simulator adds only the first link's serialization on top of
  // the analyzer's switch latencies: cut-through pipelining overlaps
  // the downstream serializations.
  EXPECT_EQ(measured, props.zero_load_latency + nanoseconds(320));
}

TEST(Integration, FlowAndPacketSimulatorsAgreeOnSaturation) {
  // The flow solver says a single 40G lightpath carries at most 40G;
  // the packet simulator must show unbounded latency past that point
  // and healthy latency below it (Fig. 20 consistency).
  sim::PathologicalParams params;
  params.duration = milliseconds(2);
  params.aggregate_gbps = 35;
  const auto below = sim::run_pathological(sim::CoreKind::kQuartzEcmp, params);
  EXPECT_LT(below.mean_latency_us, 5.0);
  params.aggregate_gbps = 48;
  const auto above = sim::run_pathological(sim::CoreKind::kQuartzEcmp, params);
  EXPECT_GT(above.mean_latency_us, below.mean_latency_us * 5);
}

TEST(Integration, MultiRingMetadataConsistent) {
  // A 33-switch mesh needs 2 physical rings; the builder's per-link
  // ring indices must match the striping helper.
  topo::QuartzRingParams ring;
  ring.switches = 33;
  ring.hosts_per_switch = 1;
  const topo::BuiltTopology t = topo::quartz_ring(ring);
  for (const auto& link : t.graph.links()) {
    if (link.wdm_channel < 0) continue;
    EXPECT_EQ(link.wdm_ring, wavelength::ring_for_channel(link.wdm_channel, 2));
  }
}

TEST(Integration, EndToEndScatterOnEveryFabric) {
  // Smoke: every §7 fabric runs a scatter workload to completion with
  // zero drops at light load.
  sim::TaskExperimentParams params;
  params.tasks = 1;
  params.fanout = 6;
  params.per_flow_rate = megabits_per_second(50);
  params.duration = milliseconds(2);
  for (sim::Fabric fabric :
       {sim::Fabric::kThreeTierTree, sim::Fabric::kJellyfish, sim::Fabric::kQuartzInCore,
        sim::Fabric::kQuartzInEdge, sim::Fabric::kQuartzInEdgeAndCore,
        sim::Fabric::kQuartzInJellyfish}) {
    const auto result = sim::run_task_experiment(fabric, {}, params);
    EXPECT_GT(result.packets_measured, 0u) << sim::fabric_name(fabric);
    EXPECT_EQ(result.packets_dropped, 0u) << sim::fabric_name(fabric);
  }
}

TEST(Integration, DualTorTwoSwitchPaths) {
  // §3.2's scaled configuration: the longest server-to-server path is
  // still two switches, end to end, through the simulator.
  topo::QuartzDualTorParams params;
  params.racks = 9;
  params.hosts_per_rack = 2;
  const topo::BuiltTopology t = topo::quartz_dual_tor(params);
  routing::EcmpRouting routing(t.graph);
  routing::EcmpOracle oracle(routing);
  sim::Network net(t, oracle);

  // Every cross-rack host pair is 3 links (host, mesh, host) away.
  for (std::size_t a = 0; a < t.host_groups.size(); ++a) {
    for (std::size_t b = 0; b < t.host_groups.size(); ++b) {
      if (a == b) continue;
      EXPECT_EQ(routing.distance(t.host_groups[a][0], t.host_groups[b][0]), 3);
    }
  }

  SampleSet samples;
  const int task = net.new_task(
      [&samples](const sim::Packet& p, TimePs l) {
        // Cross-rack pairs cross exactly two switches; rack-local
        // pairs just one.
        EXPECT_LE(p.hops, 2);
        EXPECT_GE(p.hops, 1);
        samples.add(to_microseconds(l));
      });
  Rng rng(41);
  for (int i = 0; i < 200; ++i) {
    // Spread sends out so queueing does not blur the hop-count check.
    net.at(microseconds(5) * i, [&net, &rng, &t, task] {
      const auto src = t.hosts[rng.next_below(t.hosts.size())];
      auto dst = t.hosts[rng.next_below(t.hosts.size())];
      while (dst == src) dst = t.hosts[rng.next_below(t.hosts.size())];
      net.send(src, dst, bytes(400), task, rng.next_u64());
    });
  }
  net.run_until(milliseconds(10));
  EXPECT_EQ(samples.count(), 200u);
  EXPECT_LT(samples.max(), 3.0);  // two ULL hops + serialization
}

TEST(Integration, DCellRoutesThroughServerRelays) {
  topo::DCellParams params;
  params.n = 4;
  const topo::BuiltTopology t = topo::dcell1(params);
  routing::EcmpRouting routing(t.graph, /*allow_host_relay=*/true);
  routing::EcmpOracle oracle(routing);
  sim::Network net(t, oracle);

  TimePs cross_cell = -1;
  const int task = net.new_task([&](const sim::Packet&, TimePs l) { cross_cell = l; });
  // Hosts in different cells with no direct inter-cell link between
  // them must relay through a server (15 us OS stack).
  net.send(t.host_groups[0][0], t.host_groups[2][0], bytes(400), task, 1);
  net.run_until(milliseconds(2));
  ASSERT_GE(cross_cell, 0);
  EXPECT_GT(cross_cell, microseconds(10));
}

TEST(Integration, UtilizationMatchesOfferedLoadInFig20) {
  // Physics cross-check: at 30 Gb/s offered into the 40 Gb/s direct
  // lightpath, that link's utilization must read ~75%.
  topo::QuartzRingParams ring;
  ring.switches = 4;
  ring.hosts_per_switch = 8;
  ring.mesh_rate = gigabits_per_second(40);
  ring.links.host_rate = gigabits_per_second(40);
  const topo::BuiltTopology t = topo::quartz_ring(ring);
  routing::EcmpRouting routing(t.graph);
  routing::EcmpOracle oracle(routing);
  sim::Network net(t, oracle);
  const int task = net.new_task({});
  Rng rng(43);
  std::vector<std::unique_ptr<sim::PoissonFlow>> flows;
  sim::FlowParams flow;
  flow.rate = gigabits_per_second(30.0 / 8);
  flow.stop = milliseconds(20);
  for (int i = 0; i < 8; ++i) {
    flows.push_back(std::make_unique<sim::PoissonFlow>(
        net, t.host_groups[0][static_cast<std::size_t>(i)],
        t.host_groups[1][static_cast<std::size_t>(i)], task, flow, rng.fork()));
  }
  net.run_until(flow.stop);
  // Find the S1->S2 mesh link.
  for (const auto& link : t.graph.links()) {
    const bool s1s2 = (link.a == t.tors[0] && link.b == t.tors[1]) ||
                      (link.a == t.tors[1] && link.b == t.tors[0]);
    if (!s1s2) continue;
    const int dir = link.a == t.tors[0] ? 0 : 1;
    EXPECT_NEAR(net.utilization(link.id, dir), 0.75, 0.05);
  }
}

}  // namespace
}  // namespace quartz
