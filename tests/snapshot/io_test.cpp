#include "snapshot/io.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <unistd.h>
#include <vector>

namespace quartz::snapshot {
namespace {

namespace fs = std::filesystem;

// ctest runs each TEST as its own process, possibly concurrently, so the
// scratch directory must be per-process or the checkpoint-listing tests
// race on each other's ckpt-*.qsnap files.
class TempDir {
 public:
  TempDir()
      : path_((fs::temp_directory_path() /
               ("qsnap_io_test." + std::to_string(::getpid())))
                  .string()) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

Writer sample_writer() {
  Writer w;
  w.begin_chunk(chunk_id("ABCD"));
  w.put_u8(7);
  w.put_u32(0xDEADBEEFu);
  w.put_u64(~std::uint64_t{0});
  w.put_i32(-42);
  w.put_i64(-1'000'000'000'000);
  w.put_f64(3.25);
  w.put_bool(true);
  w.put_string("quartz");
  w.put_f64_vec({1.0, -2.5, 1e-9});
  w.end_chunk();
  w.begin_chunk(chunk_id("WXYZ"));
  Rng rng(99);
  rng.next_u64();
  w.put_rng(rng);
  w.end_chunk();
  return w;
}

void verify_sample(Reader& r) {
  r.open_chunk(chunk_id("ABCD"));
  EXPECT_EQ(r.get_u8(), 7);
  EXPECT_EQ(r.get_u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.get_u64(), ~std::uint64_t{0});
  EXPECT_EQ(r.get_i32(), -42);
  EXPECT_EQ(r.get_i64(), -1'000'000'000'000);
  EXPECT_EQ(r.get_f64(), 3.25);
  EXPECT_TRUE(r.get_bool());
  EXPECT_EQ(r.get_string(), "quartz");
  EXPECT_EQ(r.get_f64_vec(), (std::vector<double>{1.0, -2.5, 1e-9}));
  r.close_chunk();
  r.open_chunk(chunk_id("WXYZ"));
  Rng expected(99);
  expected.next_u64();
  Rng restored(1);
  r.get_rng(restored);
  r.close_chunk();
  EXPECT_EQ(restored.next_u64(), expected.next_u64());
}

TEST(SnapshotIo, RoundTripsEveryPrimitive) {
  std::string error;
  auto reader = Reader::from_bytes(file_bytes(sample_writer(), 12), &error);
  ASSERT_TRUE(reader.has_value()) << error;
  EXPECT_EQ(reader->sequence(), 12u);
  verify_sample(*reader);
}

TEST(SnapshotIo, FileRoundTripIsAtomicAndIdentical) {
  TempDir dir;
  const std::string path = checkpoint_path(dir.path(), 3);
  EXPECT_EQ(path, dir.path() + "/ckpt-00000003.qsnap");
  write_file_atomic(path, sample_writer(), 3);
  // No tmp residue: the write either fully lands or never appears.
  for (const auto& entry : fs::directory_iterator(dir.path())) {
    EXPECT_EQ(entry.path().extension(), ".qsnap");
  }
  std::string error;
  auto reader = Reader::from_file(path, &error);
  ASSERT_TRUE(reader.has_value()) << error;
  EXPECT_EQ(reader->sequence(), 3u);
  verify_sample(*reader);
}

TEST(SnapshotIo, RejectsBadMagicVersionAndCrc) {
  const std::vector<std::byte> good = file_bytes(sample_writer(), 1);
  std::string error;

  std::vector<std::byte> magic = good;
  magic[0] = std::byte{'X'};
  EXPECT_FALSE(Reader::from_bytes(magic, &error).has_value());
  EXPECT_NE(error.find("magic"), std::string::npos) << error;

  std::vector<std::byte> version = good;
  version[8] = std::byte{9};
  EXPECT_FALSE(Reader::from_bytes(version, &error).has_value());

  // Flip one payload byte inside the first chunk: its CRC must catch it.
  std::vector<std::byte> corrupt = good;
  corrupt[24 + 16] ^= std::byte{0x01};
  EXPECT_FALSE(Reader::from_bytes(corrupt, &error).has_value());
  EXPECT_NE(error.find("CRC"), std::string::npos) << error;
}

TEST(SnapshotIo, DetectsTornWrites) {
  const std::vector<std::byte> good = file_bytes(sample_writer(), 1);
  std::string error;
  // Any truncation — mid-chunk or cutting off the end chunk — fails
  // structurally, never half-applies.
  for (const std::size_t keep : {good.size() - 1, good.size() - 16, std::size_t{40}}) {
    std::vector<std::byte> torn(good.begin(), good.begin() + static_cast<std::ptrdiff_t>(keep));
    EXPECT_FALSE(Reader::from_bytes(torn, &error).has_value()) << keep;
  }
}

TEST(SnapshotIo, ChunkDisciplineIsEnforced) {
  std::string error;
  auto reader = Reader::from_bytes(file_bytes(sample_writer(), 0), &error);
  ASSERT_TRUE(reader.has_value()) << error;
  // Wrong id.
  EXPECT_THROW(reader->open_chunk(chunk_id("NOPE")), std::invalid_argument);
  reader = Reader::from_bytes(file_bytes(sample_writer(), 0), &error);
  reader->open_chunk(chunk_id("ABCD"));
  // Close before the payload is consumed.
  EXPECT_THROW(reader->close_chunk(), std::invalid_argument);
}

TEST(SnapshotIo, ListsCheckpointsInSequenceOrder) {
  TempDir dir;
  for (const std::uint64_t seq : {5u, 1u, 3u}) {
    write_file_atomic(checkpoint_path(dir.path(), seq), sample_writer(), seq);
  }
  std::ofstream(dir.path() + "/notes.txt") << "ignored";
  const std::vector<CheckpointFile> files = list_checkpoints(dir.path());
  ASSERT_EQ(files.size(), 3u);
  EXPECT_EQ(files[0].sequence, 1u);
  EXPECT_EQ(files[1].sequence, 3u);
  EXPECT_EQ(files[2].sequence, 5u);
}

TEST(SnapshotIo, FallsBackPastDamagedCheckpoints) {
  TempDir dir;
  write_file_atomic(checkpoint_path(dir.path(), 1), sample_writer(), 1);
  write_file_atomic(checkpoint_path(dir.path(), 2), sample_writer(), 2);
  // Newest checkpoint is torn mid-write.
  const std::vector<std::byte> good = file_bytes(sample_writer(), 3);
  std::ofstream torn(checkpoint_path(dir.path(), 3), std::ios::binary);
  torn.write(reinterpret_cast<const char*>(good.data()),
             static_cast<std::streamsize>(good.size() - 20));
  torn.close();

  std::string warnings;
  auto reader = load_latest_intact(dir.path(), &warnings);
  ASSERT_TRUE(reader.has_value());
  EXPECT_EQ(reader->sequence(), 2u);
  verify_sample(*reader);
  // One structured warning line per rejected file.
  EXPECT_NE(warnings.find("ckpt-00000003.qsnap"), std::string::npos) << warnings;
  EXPECT_NE(warnings.find("rejected"), std::string::npos) << warnings;
}

TEST(SnapshotIo, NoIntactCheckpointYieldsNothing) {
  TempDir dir;
  std::string warnings;
  EXPECT_FALSE(load_latest_intact(dir.path(), &warnings).has_value());
  EXPECT_TRUE(warnings.empty());
  // A lone corrupt file: nothing to restore, one warning.
  std::ofstream(checkpoint_path(dir.path(), 1), std::ios::binary) << "garbage";
  EXPECT_FALSE(load_latest_intact(dir.path(), &warnings).has_value());
  EXPECT_NE(warnings.find("rejected"), std::string::npos) << warnings;
}

TEST(SnapshotIo, Crc32MatchesKnownVector) {
  // IEEE 802.3 reflected CRC-32 of "123456789".
  const char data[] = "123456789";
  EXPECT_EQ(crc32(data, 9), 0xCBF43926u);
}

}  // namespace
}  // namespace quartz::snapshot
