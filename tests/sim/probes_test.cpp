#include "sim/probes.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>

#include "routing/health_monitor.hpp"
#include "routing/oracle.hpp"
#include "sim/fault_injection.hpp"
#include "sim/network.hpp"
#include "topo/builders.hpp"
#include "topo/failures.hpp"

namespace quartz::sim {
namespace {

topo::BuiltTopology eight_ring() {
  topo::QuartzRingParams p;
  p.switches = 8;
  p.hosts_per_switch = 2;
  return topo::quartz_ring(p);
}

topo::NodeId host_of(const topo::BuiltTopology& topo, topo::NodeId sw) {
  for (const auto& adj : topo.graph.neighbors(sw)) {
    if (topo.graph.is_host(adj.peer)) return adj.peer;
  }
  return topo::kInvalidNode;
}

routing::HealthMonitorConfig tight_config() {
  routing::HealthMonitorConfig c;
  c.dead_after_misses = 3;
  c.alive_after_acks = 3;
  c.hold_down = microseconds(200);
  c.hold_down_cap = milliseconds(20);
  c.flap_memory = milliseconds(10);
  return c;
}

TEST(ProbePlane, HealthyFabricStaysHealthyAndProbesAreFree) {
  const auto t = eight_ring();
  routing::EcmpRouting routing(t.graph);
  routing::EcmpOracle oracle(routing);
  Network net(t, oracle);
  routing::HealthMonitor monitor(t.graph.link_count(), tight_config());
  ProbePlane::Options options;
  options.interval = microseconds(10);
  options.stop = milliseconds(1);
  ProbePlane probes(net, monitor, options);
  probes.start();
  net.run_until(milliseconds(2));

  EXPECT_GT(probes.probes_sent(), 0u);
  EXPECT_EQ(monitor.probes(), probes.probes_sent());  // every probe landed
  EXPECT_EQ(monitor.missed_probes(), 0u);
  EXPECT_EQ(monitor.dead_count(), 0u);
  EXPECT_EQ(monitor.lossy_count(), 0u);
  // Probes ride management capacity: they never perturb packet counters.
  EXPECT_EQ(net.packets_sent(), 0u);
  EXPECT_EQ(net.packets_dropped(), 0u);
}

TEST(ProbePlane, HardFailureIsDetectedByMissedProbesAndRecoveryByAcks) {
  const auto t = eight_ring();
  routing::EcmpRouting routing(t.graph);
  routing::EcmpOracle oracle(routing);
  Network net(t, oracle);
  routing::HealthMonitor monitor(t.graph.link_count(), tight_config());
  ProbePlane::Options options;
  options.interval = microseconds(10);
  ProbePlane probes(net, monitor, options);
  const topo::LinkId victim = topo::severed_links(t, {{0, 0}}).front();
  probes.start({victim});

  net.at(milliseconds(1), [&] { net.fail_link(victim); });
  net.run_until(milliseconds(1) + microseconds(100));
  // Three missed probes (30 us) plus one propagation: long detected.
  EXPECT_EQ(monitor.health(victim), routing::LinkHealth::kDead);
  EXPECT_TRUE(monitor.view().is_dead(victim));

  net.repair_link(victim);
  net.run_until(milliseconds(3));
  // Ack streak satisfied and hold-down (200 us) long expired.
  EXPECT_EQ(monitor.health(victim), routing::LinkHealth::kHealthy);
  EXPECT_EQ(monitor.deaths(), 1u);
  EXPECT_EQ(monitor.revivals(), 1u);
}

TEST(ProbePlane, GrayLinkTurnsLossyWhileFixedDelayViewStaysBlind) {
  const auto t = eight_ring();
  routing::EcmpRouting routing(t.graph);
  routing::EcmpOracle oracle(routing);
  SimConfig config;
  config.failure_detection_delay = microseconds(100);
  Network net(t, oracle, config);
  auto mc = tight_config();
  mc.dead_after_misses = 10;  // 30% loss must read as lossy, not dead
  routing::HealthMonitor monitor(t.graph.link_count(), mc);
  ProbePlane::Options options;
  options.interval = microseconds(10);
  ProbePlane probes(net, monitor, options);
  const topo::LinkId victim = topo::severed_links(t, {{0, 0}}).front();
  int lossy_transitions = 0;
  monitor.set_transition_hook(
      [&](topo::LinkId, routing::LinkHealth, routing::LinkHealth to, TimePs) {
        if (to == routing::LinkHealth::kLossy) ++lossy_transitions;
      });
  probes.start({victim});

  net.set_link_loss(victim, 0.3);
  EXPECT_EQ(net.link_health(victim), routing::LinkHealth::kLossy);  // ground truth
  net.run_until(milliseconds(5));

  EXPECT_GT(monitor.missed_probes(), 0u);
  EXPECT_GE(lossy_transitions, 1);
  EXPECT_NE(monitor.health(victim), routing::LinkHealth::kDead);
  EXPECT_GT(monitor.loss_ewma(victim), 0.0);
  // The omniscient-but-binary fixed-delay detector never sees it.
  EXPECT_FALSE(net.failure_view().is_dead(victim));

  net.set_link_loss(victim, 0.0);
  EXPECT_EQ(net.link_health(victim), routing::LinkHealth::kHealthy);
  net.run_until(milliseconds(10));
  EXPECT_EQ(monitor.health(victim), routing::LinkHealth::kHealthy);
}

TEST(ProbePlane, RejectsBadOptionsAndUnknownLinks) {
  const auto t = eight_ring();
  routing::EcmpRouting routing(t.graph);
  routing::EcmpOracle oracle(routing);
  Network net(t, oracle);
  routing::HealthMonitor monitor(t.graph.link_count());
  ProbePlane::Options bad;
  bad.interval = 0;
  EXPECT_THROW(ProbePlane(net, monitor, bad), std::invalid_argument);
  bad = {};
  bad.start = -1;
  EXPECT_THROW(ProbePlane(net, monitor, bad), std::invalid_argument);
  ProbePlane probes(net, monitor);
  EXPECT_THROW(probes.start({topo::LinkId(999'999)}), std::invalid_argument);
}

// --- the flap-damping payoff -------------------------------------------------

struct FlapOutcome {
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t deaths = 0;
  std::uint64_t damped = 0;
};

/// One flow crossing a lightpath that flaps faster (300 us down, 200 us
/// up) than the fixed detector converges (500 us): the seq-number guard
/// cancels every stale "mark dead" event, so the fixed-delay baseline
/// never detects anything and blackholes every down window.  The probe
/// monitor declares death within ~3 probes and the doubling hold-down
/// pins the link dead across cycles, so traffic rides detours instead.
FlapOutcome run_flap_scenario(bool monitored) {
  const auto t = eight_ring();
  routing::EcmpRouting routing(t.graph);
  routing::EcmpOracle oracle(routing);
  SimConfig config;
  if (!monitored) config.failure_detection_delay = microseconds(500);
  Network net(t, oracle, config);

  routing::HealthMonitor monitor(t.graph.link_count(), tight_config());
  ProbePlane::Options options;
  options.interval = microseconds(10);
  options.stop = milliseconds(120);
  ProbePlane probes(net, monitor, options);
  if (monitored) {
    oracle.attach_failure_view(&monitor.view());
    oracle.attach_loss_view(&monitor);
    probes.start();
  } else {
    oracle.attach_failure_view(&net.failure_view());
  }

  const topo::LinkId victim = topo::severed_links(t, {{0, 0}}).front();
  const topo::Link& link = t.graph.link(victim);
  const topo::NodeId src = host_of(t, link.a);
  const topo::NodeId dst = host_of(t, link.b);
  const int task = net.new_task({});
  for (int i = 0; i < 2'000; ++i) {
    net.at(microseconds(50) * i, [&net, src, dst, task] {
      net.send(src, dst, bytes(400), task, 99);  // one flow, stable hash
    });
  }

  FaultScheduler faults(net);
  faults.schedule_flapping(milliseconds(5), victim, microseconds(300), microseconds(200), 100);
  net.run_until(milliseconds(200));

  FlapOutcome out;
  out.delivered = net.packets_delivered();
  out.dropped = net.packets_dropped();
  out.deaths = monitor.deaths();
  out.damped = monitor.damped_recoveries();
  return out;
}

TEST(FlapDamping, DampedMonitorOutDeliversUndampedFixedDelayBaseline) {
  const FlapOutcome fixed = run_flap_scenario(false);
  const FlapOutcome damped = run_flap_scenario(true);

  // Conservation holds in both runs.
  EXPECT_EQ(fixed.delivered + fixed.dropped, 2'000u);
  EXPECT_EQ(damped.delivered + damped.dropped, 2'000u);

  // The fixed-delay baseline blackholes roughly every down window:
  // 100 cycles x 300 us down at one packet per 50 us.
  EXPECT_GT(fixed.dropped, 300u);

  // The acceptance criterion: damping strictly wins on deliveries.
  EXPECT_GT(damped.delivered, fixed.delivered);
  EXPECT_LT(damped.dropped, fixed.dropped / 10);

  // And it wins *by damping*: recoveries were suppressed, so the link
  // died far fewer times than it flapped.
  EXPECT_GT(damped.damped, 0u);
  EXPECT_LT(damped.deaths, 50u);
  EXPECT_GT(damped.deaths, 0u);
}

}  // namespace
}  // namespace quartz::sim
