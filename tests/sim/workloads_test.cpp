#include "sim/workloads.hpp"

#include <gtest/gtest.h>

#include "routing/oracle.hpp"
#include "topo/builders.hpp"

namespace quartz::sim {
namespace {

struct Fixture {
  topo::BuiltTopology topo;
  std::unique_ptr<routing::EcmpRouting> routing;
  std::unique_ptr<routing::EcmpOracle> oracle;

  Fixture() {
    topo::QuartzRingParams p;
    p.switches = 4;
    p.hosts_per_switch = 4;
    topo = topo::quartz_ring(p);
    routing = std::make_unique<routing::EcmpRouting>(topo.graph);
    oracle = std::make_unique<routing::EcmpOracle>(*routing);
  }
};

TEST(PoissonFlow, RateIsRespected) {
  Fixture f;
  Network net(f.topo, *f.oracle);
  const int task = net.new_task({});
  FlowParams params;
  params.rate = gigabits_per_second(1);
  params.packet_size = bytes(400);
  params.stop = milliseconds(100);
  Rng rng(1);
  PoissonFlow flow(net, f.topo.hosts[0], f.topo.hosts[5], task, params, rng);
  net.run_until(params.stop + milliseconds(1));
  // Expected packets = rate * time / size = 1e9 * 0.1 / 3200 = 31250.
  EXPECT_NEAR(static_cast<double>(flow.packets_sent()), 31250.0, 31250.0 * 0.05);
  EXPECT_EQ(net.packets_delivered(), flow.packets_sent());
}

TEST(PoissonFlow, StopsAtStopTime) {
  Fixture f;
  Network net(f.topo, *f.oracle);
  const int task = net.new_task({});
  FlowParams params;
  params.rate = gigabits_per_second(1);
  params.stop = milliseconds(1);
  Rng rng(2);
  PoissonFlow flow(net, f.topo.hosts[0], f.topo.hosts[5], task, params, rng);
  net.run_until(milliseconds(50));
  const auto sent_at_stop = flow.packets_sent();
  net.run_until(milliseconds(100));
  EXPECT_EQ(flow.packets_sent(), sent_at_stop);
}

TEST(ScatterTask, MeasuresAllReceivers) {
  Fixture f;
  Network net(f.topo, *f.oracle);
  TaskPatternParams params;
  params.per_flow_rate = megabits_per_second(100);
  params.stop = milliseconds(10);
  std::vector<topo::NodeId> receivers(f.topo.hosts.begin() + 1, f.topo.hosts.begin() + 6);
  Rng rng(3);
  ScatterTask task(net, f.topo.hosts[0], receivers, params, rng);
  net.run_until(params.stop + milliseconds(1));
  EXPECT_GT(task.latencies_us().count(), 100u);
  // ULL mesh: a few microseconds at most under light load.
  EXPECT_LT(task.latencies_us().mean(), 5.0);
}

TEST(GatherTask, ConvergesOnReceiver) {
  Fixture f;
  Network net(f.topo, *f.oracle);
  TaskPatternParams params;
  params.per_flow_rate = megabits_per_second(100);
  params.stop = milliseconds(10);
  std::vector<topo::NodeId> senders(f.topo.hosts.begin() + 1, f.topo.hosts.begin() + 8);
  Rng rng(4);
  GatherTask task(net, senders, f.topo.hosts[0], params, rng);
  net.run_until(params.stop + milliseconds(1));
  EXPECT_GT(task.latencies_us().count(), 100u);
}

TEST(ScatterGatherTask, RepliesReturnForEveryRequest) {
  Fixture f;
  Network net(f.topo, *f.oracle);
  ScatterGatherParams params;
  params.rounds_per_second = 1000;
  params.stop = milliseconds(20);
  std::vector<topo::NodeId> participants(f.topo.hosts.begin() + 1, f.topo.hosts.begin() + 5);
  Rng rng(5);
  ScatterGatherTask task(net, f.topo.hosts[0], participants, params, rng);
  net.run_until(params.stop + milliseconds(2));
  // Every round: 4 requests + 4 replies, all measured.
  EXPECT_GT(task.latencies_us().count(), 0u);
  EXPECT_EQ(task.latencies_us().count() % 2, 0u);
  EXPECT_EQ(net.packets_delivered(), task.latencies_us().count());
}

TEST(RpcWorkload, CompletesRequestedCalls) {
  Fixture f;
  Network net(f.topo, *f.oracle);
  RpcParams params;
  params.calls = 100;
  Rng rng(6);
  RpcWorkload rpc(net, f.topo.hosts[0], f.topo.hosts[9], params, rng);
  net.run_until(seconds(1));
  EXPECT_TRUE(rpc.done());
  EXPECT_EQ(rpc.rtt_us().count(), 100u);
  // RTT must be at least two one-way fabric traversals.
  EXPECT_GT(rpc.rtt_us().min(), 1.0);
}

TEST(RpcWorkload, ServiceTimeAddsToRtt) {
  Fixture f;
  Network netA(f.topo, *f.oracle);
  Network netB(f.topo, *f.oracle);
  RpcParams fast;
  fast.calls = 50;
  RpcParams slow = fast;
  slow.service_time = microseconds(10);
  Rng rngA(7), rngB(7);
  RpcWorkload a(netA, f.topo.hosts[0], f.topo.hosts[9], fast, rngA);
  RpcWorkload b(netB, f.topo.hosts[0], f.topo.hosts[9], slow, rngB);
  netA.run_until(seconds(1));
  netB.run_until(seconds(1));
  EXPECT_NEAR(b.rtt_us().mean() - a.rtt_us().mean(), 10.0, 0.5);
}

TEST(RpcWorkload, SerialExecution) {
  // With serial RPCs, at most one request is in flight: delivered
  // packets = 2 * completed calls.
  Fixture f;
  Network net(f.topo, *f.oracle);
  RpcParams params;
  params.calls = 25;
  Rng rng(8);
  RpcWorkload rpc(net, f.topo.hosts[1], f.topo.hosts[13], params, rng);
  net.run_until(seconds(1));
  EXPECT_EQ(net.packets_delivered(), 50u);
}

/// The (single) link hanging a host off its switch.
topo::LinkId host_link(const Fixture& f, topo::NodeId host) {
  return f.topo.graph.neighbors(host).front().link;
}

TEST(RpcWorkload, SharedRetryBudgetBoundsAmplificationOnTotalLoss) {
  // Regression: a 100%-loss link must not trigger unbounded retry
  // growth.  Two clients blackholed at their host links and two healthy
  // clients share one budget; the blackholed pair can only retry with
  // tokens the whole batch earned, so total send amplification stays
  // near 1 + ratio no matter how long the loss lasts.
  Fixture f;
  Network net(f.topo, *f.oracle);
  RetryBudget::Config budget_config;
  budget_config.ratio = 0.1;
  budget_config.burst = 5.0;
  RetryBudget budget(budget_config);

  RpcParams params;
  params.calls = 100;
  params.timeout = microseconds(100);
  params.max_retries = 8;
  params.backoff_base = microseconds(20);
  params.backoff_cap = microseconds(100);
  params.retry_budget = &budget;

  Rng rng(9);
  RpcWorkload dark_a(net, f.topo.hosts[0], f.topo.hosts[9], params, rng.fork());
  RpcWorkload dark_b(net, f.topo.hosts[1], f.topo.hosts[10], params, rng.fork());
  RpcWorkload healthy_a(net, f.topo.hosts[2], f.topo.hosts[11], params, rng.fork());
  RpcWorkload healthy_b(net, f.topo.hosts[3], f.topo.hosts[12], params, rng.fork());
  net.set_link_loss(host_link(f, f.topo.hosts[0]), 1.0);
  net.set_link_loss(host_link(f, f.topo.hosts[1]), 1.0);
  net.run_until(seconds(1));

  // Healthy clients never notice; blackholed clients abandon rather
  // than retry forever.
  EXPECT_TRUE(healthy_a.done());
  EXPECT_TRUE(healthy_b.done());
  EXPECT_EQ(healthy_a.abandoned_calls() + healthy_b.abandoned_calls(), 0);
  EXPECT_TRUE(dark_a.done());
  EXPECT_TRUE(dark_b.done());
  EXPECT_EQ(dark_a.completed_calls() + dark_b.completed_calls(), 0);
  EXPECT_GT(dark_a.budget_denied_retries() + dark_b.budget_denied_retries(), 0u);

  // Every retry anywhere was granted by the shared budget, and the
  // grants obey the token arithmetic: at most ratio x first attempts
  // plus the initial burst.
  const std::uint64_t retries = dark_a.total_retries() + dark_b.total_retries() +
                                healthy_a.total_retries() + healthy_b.total_retries();
  EXPECT_EQ(retries, budget.granted());
  EXPECT_LE(static_cast<double>(budget.granted()),
            budget_config.ratio * static_cast<double>(budget.first_attempts()) +
                budget_config.burst);
  EXPECT_LE(budget.amplification_bound(), 1.2);
  EXPECT_EQ(budget.inflight(), 0);  // every slot released at quiescence
}

TEST(RpcWorkload, RetryBudgetInflightCeilingCapsConcurrentRetransmissions) {
  // With plentiful tokens but a global in-flight ceiling of one, two
  // blackholed clients cannot both have a retransmission outstanding:
  // the collisions surface as denials even though the bucket is full.
  Fixture f;
  Network net(f.topo, *f.oracle);
  RetryBudget::Config budget_config;
  budget_config.ratio = 1.0;
  budget_config.burst = 1'000.0;
  budget_config.max_inflight = 1;
  RetryBudget budget(budget_config);

  RpcParams params;
  params.calls = 50;
  params.timeout = microseconds(100);
  params.max_retries = 4;
  params.backoff_base = microseconds(20);
  params.backoff_cap = microseconds(50);
  params.retry_budget = &budget;

  Rng rng(10);
  RpcWorkload dark_a(net, f.topo.hosts[0], f.topo.hosts[9], params, rng.fork());
  RpcWorkload dark_b(net, f.topo.hosts[1], f.topo.hosts[10], params, rng.fork());
  net.set_link_loss(host_link(f, f.topo.hosts[0]), 1.0);
  net.set_link_loss(host_link(f, f.topo.hosts[1]), 1.0);
  net.run_until(seconds(1));

  EXPECT_TRUE(dark_a.done());
  EXPECT_TRUE(dark_b.done());
  EXPECT_GT(budget.denied(), 0u);
  EXPECT_GT(budget.tokens(), 1.0);  // denials came from the ceiling, not the bucket
  EXPECT_EQ(budget.inflight(), 0);
}

TEST(BurstSource, HitsTargetBandwidth) {
  Fixture f;
  Network net(f.topo, *f.oracle);
  const int task = net.new_task({});
  BurstParams params;
  params.target_rate = megabits_per_second(200);
  params.packets_per_burst = 20;
  params.packet_size = bytes(1500);
  params.stop = milliseconds(100);
  Rng rng(9);
  BurstSource source(net, f.topo.hosts[0], f.topo.hosts[5], task, params, rng);
  net.run_until(params.stop + milliseconds(5));
  const double bits_sent = static_cast<double>(net.packets_sent()) * 12000.0;
  const double achieved = bits_sent / 0.1;  // over the 100 ms window
  EXPECT_NEAR(achieved, 2e8, 2e7);
}

TEST(BurstSource, SendsWholeBurstsBackToBack) {
  Fixture f;
  Network net(f.topo, *f.oracle);
  const int task = net.new_task({});
  BurstParams params;
  params.target_rate = megabits_per_second(100);
  params.packets_per_burst = 7;
  params.stop = milliseconds(5);
  Rng rng(10);
  BurstSource source(net, f.topo.hosts[0], f.topo.hosts[5], task, params, rng);
  net.run_until(milliseconds(10));
  EXPECT_EQ(net.packets_sent() % 7, 0u);
  EXPECT_GT(net.packets_sent(), 0u);
}

TEST(FlowTransfer, CompletionTimeMatchesLineRate) {
  Fixture f;
  Network net(f.topo, *f.oracle);
  TransferParams params;
  params.total_bytes = 15'000;  // 10 x 1500B at 10G = 12 us serialization
  FlowTransfer transfer(net, f.topo.hosts[0], f.topo.hosts[5], params, 1);
  net.run_until(milliseconds(1));
  ASSERT_TRUE(transfer.done());
  EXPECT_EQ(transfer.packets(), 10);
  // Last packet leaves the NIC at 10 x 1.2 us; the fabric adds about a
  // microsecond of cut-through pipeline on top.
  EXPECT_GE(transfer.completion_time(), microseconds(12));
  EXPECT_LE(transfer.completion_time(), microseconds(15));
}

TEST(FlowTransfer, PartialLastPacket) {
  Fixture f;
  Network net(f.topo, *f.oracle);
  TransferParams params;
  params.total_bytes = 1'600;  // 1500 + 100
  FlowTransfer transfer(net, f.topo.hosts[0], f.topo.hosts[5], params, 2);
  net.run_until(milliseconds(1));
  ASSERT_TRUE(transfer.done());
  EXPECT_EQ(transfer.packets(), 2);
}

TEST(FlowTransfer, LargerFlowsTakeLonger) {
  Fixture f;
  Network netA(f.topo, *f.oracle);
  Network netB(f.topo, *f.oracle);
  TransferParams small;
  small.total_bytes = 16'000;
  TransferParams large;
  large.total_bytes = 160'000;
  FlowTransfer a(netA, f.topo.hosts[0], f.topo.hosts[5], small, 3);
  FlowTransfer b(netB, f.topo.hosts[0], f.topo.hosts[5], large, 3);
  netA.run_until(milliseconds(5));
  netB.run_until(milliseconds(5));
  ASSERT_TRUE(a.done() && b.done());
  EXPECT_GT(b.completion_time(), a.completion_time() * 5);
}

TEST(FlowTransfer, NotDoneBeforeItStarts) {
  Fixture f;
  Network net(f.topo, *f.oracle);
  TransferParams params;
  params.start = milliseconds(2);
  FlowTransfer transfer(net, f.topo.hosts[0], f.topo.hosts[5], params, 4);
  net.run_until(milliseconds(1));
  EXPECT_FALSE(transfer.done());
  EXPECT_THROW(transfer.completion_time(), std::logic_error);
  net.run_until(milliseconds(5));
  EXPECT_TRUE(transfer.done());
}

TEST(Network, UtilizationTracksLoad) {
  Fixture f;
  Network net(f.topo, *f.oracle);
  const int task = net.new_task({});
  FlowParams flow;
  flow.rate = gigabits_per_second(5);  // 50% of the 10G host link
  flow.stop = milliseconds(50);
  Rng rng(21);
  PoissonFlow source(net, f.topo.hosts[0], f.topo.hosts[5], task, flow, rng);
  net.run_until(flow.stop);
  // Find the sender's access link.
  for (const auto& link : net.graph().links()) {
    if (link.a == f.topo.hosts[0] || link.b == f.topo.hosts[0]) {
      const int dir = link.a == f.topo.hosts[0] ? 0 : 1;
      EXPECT_NEAR(net.utilization(link.id, dir), 0.5, 0.05);
      EXPECT_GT(net.bits_sent(link.id, dir), 0);
      // Reverse direction carried nothing.
      EXPECT_EQ(net.bits_sent(link.id, 1 - dir), 0);
    }
  }
}

TEST(Network, TaskDropAccounting) {
  Fixture f;
  SimConfig config;
  config.max_queue_delay = microseconds(2);
  Network net(f.topo, *f.oracle, config);
  const int quiet = net.new_task({});
  const int noisy = net.new_task({});
  // Overload one access link with the noisy task only.
  for (int i = 0; i < 100; ++i) {
    net.send(f.topo.hosts[0], f.topo.hosts[5], bytes(1500), noisy, 1);
  }
  net.send(f.topo.hosts[1], f.topo.hosts[6], bytes(400), quiet, 2);
  net.run_until(milliseconds(1));
  EXPECT_GT(net.task_drops(noisy), 0u);
  EXPECT_EQ(net.task_drops(quiet), 0u);
  EXPECT_EQ(net.task_drops(noisy), net.packets_dropped());
  EXPECT_THROW(net.task_drops(99), std::invalid_argument);
}

TEST(Workloads, RejectBadParameters) {
  Fixture f;
  Network net(f.topo, *f.oracle);
  Rng rng(11);
  FlowParams bad_flow;
  bad_flow.rate = 0;
  EXPECT_THROW(PoissonFlow(net, f.topo.hosts[0], f.topo.hosts[1], net.new_task({}), bad_flow,
                           rng),
               std::invalid_argument);
  EXPECT_THROW(ScatterTask(net, f.topo.hosts[0], {}, {}, rng), std::invalid_argument);
  RpcParams bad_rpc;
  bad_rpc.calls = 0;
  EXPECT_THROW(RpcWorkload(net, f.topo.hosts[0], f.topo.hosts[1], bad_rpc, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace quartz::sim
