// Hybrid fluid background (sim/fluid.hpp): the M/D/1 queueing bias
// reaches foreground packets, the epoch digest is a stable determinism
// witness, epoch state survives save/restore, and the CBR foreground
// source paces deterministically.
#include "sim/fluid.hpp"

#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "routing/ecmp.hpp"
#include "routing/oracle.hpp"
#include "sim/network.hpp"
#include "snapshot/io.hpp"
#include "topo/builders.hpp"

namespace quartz::sim {
namespace {

topo::BuiltTopology small_ring() {
  topo::QuartzRingParams p;
  p.switches = 4;
  p.hosts_per_switch = 2;
  p.mesh_rate = gigabits_per_second(10);
  p.links.host_rate = gigabits_per_second(10);
  return topo::quartz_ring(p);
}

/// Mean foreground latency of one CBR flow over `duration`, with an
/// optional fluid background sharing its mesh lightpath.
double foreground_mean_us(const topo::BuiltTopology& t, bool hybrid,
                          double background_bps = 8e9) {
  const routing::EcmpRouting routing(t.graph);
  const routing::EcmpOracle oracle(routing);
  Network net(t, oracle, {});
  RunningStats latency_us;
  const int task =
      net.new_task([&](const Packet&, TimePs lat) { latency_us.add(to_microseconds(lat)); });

  const TimePs duration = milliseconds(2);
  CbrSource source(net, {{t.host_groups[0][0], t.host_groups[1][0], 1e9, 1500 * 8}}, task, 0,
                   duration);
  source.arm();

  std::unique_ptr<FluidBackground> fluid;
  if (hybrid) {
    fluid = std::make_unique<FluidBackground>(
        net, oracle,
        std::vector<FluidDemand>{{t.host_groups[0][1], t.host_groups[1][1], background_bps}},
        FluidParams{});
    fluid->arm();
  }
  net.run_until(duration + milliseconds(1));
  EXPECT_GT(latency_us.count(), 100u);
  EXPECT_EQ(net.packets_dropped(), 0u);
  return latency_us.mean();
}

TEST(FluidBackground, BiasReachesForegroundPackets) {
  const auto t = small_ring();
  const double plain = foreground_mean_us(t, false);
  const double hybrid = foreground_mean_us(t, true);
  // rho = 0.8 on the shared 10G lightpath: W = rho/(2(1-rho)) * S
  // = 2 * 1.2us = 2.4us of modeled background queueing.
  EXPECT_GT(hybrid, plain + 2.0);
  EXPECT_LT(hybrid, plain + 3.0);
}

TEST(FluidBackground, BiasScalesWithBackgroundLoad) {
  const auto t = small_ring();
  const double light = foreground_mean_us(t, true, 2e9);
  const double heavy = foreground_mean_us(t, true, 8e9);
  EXPECT_GT(heavy, light);
}

/// One full hybrid run; returns (epochs, digest).
std::pair<std::uint64_t, std::uint64_t> hybrid_run(double rate_bps) {
  const auto t = small_ring();
  const routing::EcmpRouting routing(t.graph);
  const routing::EcmpOracle oracle(routing);
  Network net(t, oracle, {});
  FluidBackground fluid(net, oracle,
                        {{t.host_groups[0][1], t.host_groups[1][1], rate_bps},
                         {t.host_groups[2][0], t.host_groups[3][0], rate_bps / 2}},
                        FluidParams{});
  fluid.arm();
  net.run_until(milliseconds(2));
  return {fluid.epochs(), fluid.digest()};
}

TEST(FluidBackground, DigestIsRunToRunStable) {
  const auto a = hybrid_run(8e9);
  const auto b = hybrid_run(8e9);
  EXPECT_GT(a.first, 0u);
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
  // ... and actually witnesses the solve: a different load digests
  // differently.
  const auto c = hybrid_run(4e9);
  EXPECT_NE(a.second, c.second);
}

TEST(FluidBackground, SaveRestoreRoundTripsEpochState) {
  const auto t = small_ring();
  const routing::EcmpRouting routing(t.graph);
  const routing::EcmpOracle oracle(routing);
  const std::vector<FluidDemand> demands{{t.host_groups[0][1], t.host_groups[1][1], 8e9}};

  Network net(t, oracle, {});
  FluidBackground fluid(net, oracle, demands, FluidParams{});
  fluid.arm();
  net.run_until(milliseconds(1));
  ASSERT_GT(fluid.epochs(), 0u);

  snapshot::Writer w;
  w.begin_chunk(snapshot::chunk_id("FLUI"));
  fluid.save(w);
  w.end_chunk();
  std::string error;
  auto reader = snapshot::Reader::from_bytes(snapshot::file_bytes(w, 0), &error);
  ASSERT_TRUE(reader.has_value()) << error;

  Network net2(t, oracle, {});
  FluidBackground restored(net2, oracle, demands, FluidParams{});
  reader->open_chunk(snapshot::chunk_id("FLUI"));
  restored.restore(*reader);
  reader->close_chunk();

  EXPECT_EQ(restored.epochs(), fluid.epochs());
  EXPECT_EQ(restored.digest(), fluid.digest());
  EXPECT_EQ(restored.aggregate_bps(), fluid.aggregate_bps());
  EXPECT_EQ(restored.bias(), fluid.bias());
}

TEST(FluidBackground, RestoreRefusesDifferentDemandCount) {
  const auto t = small_ring();
  const routing::EcmpRouting routing(t.graph);
  const routing::EcmpOracle oracle(routing);

  Network net(t, oracle, {});
  FluidBackground fluid(net, oracle, {{t.host_groups[0][1], t.host_groups[1][1], 8e9}},
                        FluidParams{});
  fluid.arm();
  net.run_until(milliseconds(1));
  snapshot::Writer w;
  w.begin_chunk(snapshot::chunk_id("FLUI"));
  fluid.save(w);
  w.end_chunk();
  std::string error;
  auto reader = snapshot::Reader::from_bytes(snapshot::file_bytes(w, 0), &error);
  ASSERT_TRUE(reader.has_value()) << error;

  Network net2(t, oracle, {});
  FluidBackground other(net2, oracle,
                        {{t.host_groups[0][1], t.host_groups[1][1], 8e9},
                         {t.host_groups[2][0], t.host_groups[3][0], 4e9}},
                        FluidParams{});
  reader->open_chunk(snapshot::chunk_id("FLUI"));
  EXPECT_THROW(other.restore(*reader), std::invalid_argument);
}

TEST(FluidBackground, RejectsMalformedDemands) {
  const auto t = small_ring();
  const routing::EcmpRouting routing(t.graph);
  const routing::EcmpOracle oracle(routing);
  Network net(t, oracle, {});

  using Demands = std::vector<FluidDemand>;
  EXPECT_THROW(FluidBackground(net, oracle, Demands{{t.hosts[0], t.hosts[0], 1e9}},
                               FluidParams{}),
               std::invalid_argument);
  EXPECT_THROW(FluidBackground(net, oracle, Demands{{t.hosts[0], t.tors[1], 1e9}},
                               FluidParams{}),
               std::invalid_argument);
  EXPECT_THROW(FluidBackground(net, oracle, Demands{{t.hosts[0], t.hosts[1], 0.0}},
                               FluidParams{}),
               std::invalid_argument);
  FluidParams bad_epoch;
  bad_epoch.epoch = 0;
  EXPECT_THROW(FluidBackground(net, oracle, Demands{{t.hosts[0], t.hosts[1], 1e9}}, bad_epoch),
               std::invalid_argument);
}

TEST(FluidBackground, DetachesItsBiasOnDestruction) {
  const auto t = small_ring();
  const routing::EcmpRouting routing(t.graph);
  const routing::EcmpOracle oracle(routing);
  Network net(t, oracle, {});
  {
    FluidBackground fluid(net, oracle, {{t.hosts[0], t.hosts[4], 8e9}}, FluidParams{});
    EXPECT_NE(net.queue_bias(), nullptr);
  }
  EXPECT_EQ(net.queue_bias(), nullptr);
}

TEST(CbrSource, PacesDeterministically) {
  const auto t = small_ring();
  const routing::EcmpRouting routing(t.graph);
  const routing::EcmpOracle oracle(routing);

  auto run = [&] {
    Network net(t, oracle, {});
    std::uint64_t delivered = 0;
    const int task = net.new_task([&](const Packet&, TimePs) { ++delivered; });
    // 1 Gbps of 1500B frames = one packet every 12 us.
    CbrSource source(net, {{t.host_groups[0][0], t.host_groups[1][0], 1e9, 1500 * 8}}, task, 0,
                     microseconds(1200));
    source.arm();
    net.run_until(milliseconds(2));
    return std::pair<std::uint64_t, std::uint64_t>{source.packets_sent(), delivered};
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, 101u);  // phases start at t=0: ticks 0..1200us inclusive
  EXPECT_EQ(a.first, a.second);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace quartz::sim
