#include "sim/retry_budget.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace quartz::sim {
namespace {

TEST(RetryBudget, ValidatesConfig) {
  RetryBudget::Config config;
  config.ratio = -0.1;
  EXPECT_THROW(RetryBudget{config}, std::invalid_argument);
  config = {};
  config.burst = -1.0;
  EXPECT_THROW(RetryBudget{config}, std::invalid_argument);
}

TEST(RetryBudget, StartsWithABurstAndAccruesPerFirstAttempt) {
  RetryBudget::Config config;
  config.ratio = 0.5;
  config.burst = 2.0;
  RetryBudget budget(config);
  EXPECT_DOUBLE_EQ(budget.tokens(), 2.0);

  // Drain the burst, then refill half a token per first attempt.
  EXPECT_TRUE(budget.try_acquire());
  budget.release();
  EXPECT_TRUE(budget.try_acquire());
  budget.release();
  EXPECT_FALSE(budget.try_acquire());  // empty
  budget.on_first_attempt();
  EXPECT_FALSE(budget.try_acquire());  // 0.5 < 1
  budget.on_first_attempt();
  EXPECT_TRUE(budget.try_acquire());  // 1.0
  budget.release();
  EXPECT_EQ(budget.granted(), 3u);
  EXPECT_EQ(budget.denied(), 2u);
  EXPECT_EQ(budget.first_attempts(), 2u);
}

TEST(RetryBudget, BurstCapsAccrual) {
  RetryBudget::Config config;
  config.ratio = 1.0;
  config.burst = 3.0;
  RetryBudget budget(config);
  for (int i = 0; i < 100; ++i) budget.on_first_attempt();
  EXPECT_DOUBLE_EQ(budget.tokens(), 3.0);
}

TEST(RetryBudget, InflightCeilingDeniesEvenWithTokens) {
  RetryBudget::Config config;
  config.ratio = 1.0;
  config.burst = 100.0;
  config.max_inflight = 2;
  RetryBudget budget(config);
  EXPECT_TRUE(budget.try_acquire());
  EXPECT_TRUE(budget.try_acquire());
  EXPECT_GT(budget.tokens(), 1.0);
  EXPECT_FALSE(budget.try_acquire());  // ceiling, not tokens
  EXPECT_EQ(budget.inflight(), 2);
  budget.release();
  EXPECT_TRUE(budget.try_acquire());
  budget.release();
  budget.release();
  EXPECT_EQ(budget.inflight(), 0);
}

TEST(RetryBudget, ReleaseWithoutAcquireThrows) {
  RetryBudget budget;
  EXPECT_THROW(budget.release(), std::logic_error);
}

TEST(RetryBudget, AmplificationBoundTracksGrantsOverFirstAttempts) {
  RetryBudget::Config config;
  config.ratio = 0.5;
  config.burst = 2.0;
  RetryBudget budget(config);
  EXPECT_DOUBLE_EQ(budget.amplification_bound(), 1.0);  // nothing sent yet
  for (int i = 0; i < 4; ++i) budget.on_first_attempt();
  ASSERT_TRUE(budget.try_acquire());
  budget.release();
  ASSERT_TRUE(budget.try_acquire());
  budget.release();
  EXPECT_DOUBLE_EQ(budget.amplification_bound(), 1.5);  // 2 grants / 4 firsts
}

}  // namespace
}  // namespace quartz::sim
