#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace quartz::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(30, [&] { order.push_back(3); });
  q.schedule(10, [&] { order.push_back(1); });
  q.schedule(20, [&] { order.push_back(2); });
  q.run_until(100);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 100);
}

TEST(EventQueue, TiesBreakByScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5, [&order, i] { order.push_back(i); });
  }
  q.run_until(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, EventsMayScheduleMoreEvents) {
  EventQueue q;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) q.schedule(q.now() + 10, chain);
  };
  q.schedule(0, chain);
  q.run_until(1000);
  EXPECT_EQ(fired, 5);
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
  EventQueue q;
  int fired = 0;
  q.schedule(10, [&] { ++fired; });
  q.schedule(20, [&] { ++fired; });
  q.run_until(15);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.now(), 15);
  q.run_until(20);  // boundary inclusive
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, CannotScheduleIntoThePast) {
  EventQueue q;
  q.run_until(100);
  EXPECT_THROW(q.schedule(50, [] {}), std::invalid_argument);
}

TEST(EventQueue, RunOneAdvancesClock) {
  EventQueue q;
  q.schedule(42, [] {});
  EXPECT_EQ(q.next_time(), 42);
  q.run_one();
  EXPECT_EQ(q.now(), 42);
  EXPECT_TRUE(q.empty());
  EXPECT_THROW(q.run_one(), std::invalid_argument);
}

TEST(EventQueue, SizeTracksPending) {
  EventQueue q;
  q.schedule(1, [] {});
  q.schedule(2, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.run_one();
  EXPECT_EQ(q.size(), 1u);
}

// --- typed events -----------------------------------------------------------

/// Records every typed event it receives, in dispatch order.
class RecordingHandler : public EventHandler {
 public:
  struct Record {
    EventType type;
    std::uint64_t id;
    TimePs at;
  };

  explicit RecordingHandler(EventQueue& queue) : queue_(queue) { queue.set_handler(this); }

  void on_packet_event(EventType type, PacketEvent& event) override {
    records.push_back({type, event.packet.id, queue_.now()});
  }
  void on_fault_event(const FaultEvent& event) override {
    records.push_back({EventType::kFaultTransition, event.link_seq, queue_.now()});
  }

  std::vector<Record> records;

 private:
  EventQueue& queue_;
};

class RecordingProbeHandler : public ProbeHandler {
 public:
  void on_probe_event(const ProbeEvent& event) override { probes.push_back(event); }
  std::vector<ProbeEvent> probes;
};

TEST(EventQueue, TypedEventsInterleaveWithCallbacksInTimeOrder) {
  EventQueue q;
  RecordingHandler handler(q);
  RecordingProbeHandler probe_handler;
  std::vector<std::string> order;

  PacketEvent pe;
  pe.packet.id = 1;
  q.schedule_packet(30, EventType::kDelivery, pe);
  q.schedule(10, [&order] { order.push_back("callback"); });
  q.schedule_fault(20, FaultEvent{3, 7, true});
  ProbeEvent probe;
  probe.handler = &probe_handler;
  probe.link = 5;
  q.schedule_probe(25, probe);

  q.run_until(100);
  ASSERT_EQ(handler.records.size(), 2u);
  EXPECT_EQ(handler.records[0].type, EventType::kFaultTransition);
  EXPECT_EQ(handler.records[0].at, 20);
  EXPECT_EQ(handler.records[1].type, EventType::kDelivery);
  EXPECT_EQ(handler.records[1].at, 30);
  EXPECT_EQ(order, (std::vector<std::string>{"callback"}));
  ASSERT_EQ(probe_handler.probes.size(), 1u);
  EXPECT_EQ(probe_handler.probes[0].link, 5);
  EXPECT_EQ(q.events_run(), 4u);
}

TEST(EventQueue, SameTimeTypedEventsKeepScheduleOrder) {
  EventQueue q;
  RecordingHandler handler(q);
  for (std::uint64_t i = 0; i < 8; ++i) {
    PacketEvent pe;
    pe.packet.id = i;
    q.schedule_packet(50, i % 2 == 0 ? EventType::kHeaderDecision : EventType::kDelivery, pe);
  }
  q.run_until(50);
  ASSERT_EQ(handler.records.size(), 8u);
  for (std::uint64_t i = 0; i < 8; ++i) EXPECT_EQ(handler.records[i].id, i);
}

TEST(EventQueue, SchedulePacketRejectsNonPacketTypes) {
  EventQueue q;
  RecordingHandler handler(q);
  EXPECT_THROW(q.schedule_packet(1, EventType::kFaultTransition, PacketEvent{}),
               std::logic_error);
  EXPECT_THROW(q.schedule_packet(1, EventType::kCallback, PacketEvent{}), std::logic_error);
}

TEST(EventQueue, ProbeEventsRequireAHandler) {
  EventQueue q;
  EXPECT_THROW(q.schedule_probe(1, ProbeEvent{}), std::invalid_argument);
}

TEST(EventQueue, PoolCapacityPlateausUnderRecycling) {
  EventQueue q;
  RecordingHandler handler(q);
  // Keep exactly 4 packet events in flight for many rounds: the pool
  // must grow to the in-flight high-water mark and then stop.
  for (std::uint64_t i = 0; i < 4; ++i) {
    PacketEvent pe;
    pe.packet.id = i;
    q.schedule_packet(static_cast<TimePs>(1 + i), EventType::kDelivery, pe);
  }
  for (int round = 0; round < 1000; ++round) {
    const TimePs horizon = q.next_time();
    q.run_one();
    PacketEvent pe;
    pe.packet.id = static_cast<std::uint64_t>(round);
    q.schedule_packet(horizon + 4, EventType::kDelivery, pe);
  }
  EXPECT_EQ(q.packet_pool_capacity(), 4u);
  EXPECT_EQ(handler.records.size(), 1000u);
}

TEST(EventQueue, HandlersMayScheduleReentrantlyIntoRecycledSlots) {
  EventQueue q;
  // The slot is released before dispatch, so a handler scheduling a new
  // event of the same type reuses the slot it is being dispatched from;
  // the payload it sees must be the popped copy, not the recycled slot.
  class Chained : public EventHandler {
   public:
    explicit Chained(EventQueue& queue) : queue_(queue) { queue.set_handler(this); }
    void on_packet_event(EventType, PacketEvent& event) override {
      ids.push_back(event.packet.id);
      if (event.packet.id < 10) {
        PacketEvent next;
        next.packet.id = event.packet.id + 1;
        queue_.schedule_packet(queue_.now() + 1, EventType::kDelivery, next);
      }
    }
    void on_fault_event(const FaultEvent&) override {}
    std::vector<std::uint64_t> ids;

   private:
    EventQueue& queue_;
  } chained(q);

  PacketEvent pe;
  pe.packet.id = 0;
  q.schedule_packet(0, EventType::kDelivery, pe);
  q.run_until(100);
  ASSERT_EQ(chained.ids.size(), 11u);
  for (std::uint64_t i = 0; i <= 10; ++i) EXPECT_EQ(chained.ids[i], i);
  EXPECT_EQ(q.packet_pool_capacity(), 1u);
}

TEST(EventQueue, MillionEventMixedStressKeepsTotalOrder) {
  // Satellite regression for the const_cast-move-from-top() bug the
  // manual heap replaced: a large adversarial mix of all event types
  // must dispatch in exact (time, seq) order with pools plateauing.
  EventQueue q;
  struct OrderCheck : EventHandler {
    void on_packet_event(EventType, PacketEvent& event) override { check(event.t0); }
    void on_fault_event(const FaultEvent&) override {}
    void check(TimePs at) {
      EXPECT_LE(last, at);
      last = at;
      ++seen;
    }
    TimePs last = 0;
    std::uint64_t seen = 0;
  } handler;
  q.set_handler(&handler);

  constexpr std::uint64_t kEvents = 1'000'000;
  std::uint64_t state = 0x243F6A8885A308D3ull;  // deterministic pseudo-times
  auto next_u64 = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  std::uint64_t scheduled = 0;
  TimePs last_callback = 0;
  std::uint64_t callbacks = 0;
  while (scheduled < kEvents) {
    // Drain a little between bursts so the heap shrinks and regrows.
    if (scheduled % 10'000 == 0 && !q.empty()) {
      q.run_until(q.next_time() + 1000);
    }
    const TimePs when = q.now() + static_cast<TimePs>(next_u64() % 5000);
    switch (next_u64() % 4) {
      case 0: {
        PacketEvent pe;
        pe.t0 = when;
        q.schedule_packet(when, EventType::kHeaderDecision, pe);
        break;
      }
      case 1: {
        PacketEvent pe;
        pe.t0 = when;
        q.schedule_packet(when, EventType::kDelivery, pe);
        break;
      }
      case 2:
        q.schedule_fault(when, FaultEvent{1, 1, false});
        break;
      default:
        q.schedule(when, [&handler, &last_callback, &callbacks, when] {
          EXPECT_LE(last_callback, when);
          last_callback = when;
          ++callbacks;
        });
        break;
    }
    ++scheduled;
  }
  q.run_until(q.now() + 10 * kSecond);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.events_run(), kEvents);
  EXPECT_GT(handler.seen, 0u);
  EXPECT_GT(callbacks, 0u);
  // Pools grew to the in-flight high-water mark, not the event count.
  EXPECT_LT(q.packet_pool_capacity(), kEvents / 2);
}

}  // namespace
}  // namespace quartz::sim
