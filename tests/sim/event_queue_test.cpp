#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace quartz::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(30, [&] { order.push_back(3); });
  q.schedule(10, [&] { order.push_back(1); });
  q.schedule(20, [&] { order.push_back(2); });
  q.run_until(100);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 100);
}

TEST(EventQueue, TiesBreakByScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5, [&order, i] { order.push_back(i); });
  }
  q.run_until(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, EventsMayScheduleMoreEvents) {
  EventQueue q;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) q.schedule(q.now() + 10, chain);
  };
  q.schedule(0, chain);
  q.run_until(1000);
  EXPECT_EQ(fired, 5);
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
  EventQueue q;
  int fired = 0;
  q.schedule(10, [&] { ++fired; });
  q.schedule(20, [&] { ++fired; });
  q.run_until(15);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.now(), 15);
  q.run_until(20);  // boundary inclusive
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, CannotScheduleIntoThePast) {
  EventQueue q;
  q.run_until(100);
  EXPECT_THROW(q.schedule(50, [] {}), std::invalid_argument);
}

TEST(EventQueue, RunOneAdvancesClock) {
  EventQueue q;
  q.schedule(42, [] {});
  EXPECT_EQ(q.next_time(), 42);
  q.run_one();
  EXPECT_EQ(q.now(), 42);
  EXPECT_TRUE(q.empty());
  EXPECT_THROW(q.run_one(), std::invalid_argument);
}

TEST(EventQueue, SizeTracksPending) {
  EventQueue q;
  q.schedule(1, [] {});
  q.schedule(2, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.run_one();
  EXPECT_EQ(q.size(), 1u);
}

}  // namespace
}  // namespace quartz::sim
