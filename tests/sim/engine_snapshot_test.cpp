// Checkpoint/restore of the event engine itself: pending typed events
// survive a save into a fresh engine with their exact (time, seq)
// dispatch order, and the non-serializable callback escape hatch is
// refused up front.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "sim/event_queue.hpp"
#include "snapshot/io.hpp"

namespace quartz::sim {
namespace {

using Fired = std::vector<std::tuple<TimePs, std::uint32_t, std::uint64_t>>;

/// Records every firing; optionally chains follow-up timers so a
/// restored engine keeps producing new work.
class RecordingHandler final : public TimerHandler {
 public:
  explicit RecordingHandler(EventQueue& q) : q_(q) {}

  void on_timer(const TimerEvent& event) override {
    fired.emplace_back(q_.now(), event.tag, event.a);
    if (event.tag == kChainTag && event.a > 0) {
      q_.schedule_timer(q_.now() + 7, {this, kChainTag, event.a - 1, 0});
    }
  }

  static constexpr std::uint32_t kChainTag = 9;
  Fired fired;

 private:
  EventQueue& q_;
};

snapshot::Reader saved(const EventQueue& q, const HandlerMap& handlers) {
  snapshot::Writer w;
  w.begin_chunk(snapshot::chunk_id("ENGN"));
  q.save(w, handlers);
  w.end_chunk();
  std::string error;
  auto reader = snapshot::Reader::from_bytes(snapshot::file_bytes(w, 0), &error);
  EXPECT_TRUE(reader.has_value()) << error;
  reader->open_chunk(snapshot::chunk_id("ENGN"));
  return std::move(*reader);
}

TEST(EngineSnapshot, TimersSurviveWithExactOrder) {
  EventQueue q;
  RecordingHandler handler(q);
  HandlerMap handlers;
  handlers.timers.push_back(&handler);

  // Ties at t=50 must fire in schedule order; the far-future timer
  // lands in the overflow tier; the chain keeps spawning post-restore.
  q.schedule_timer(50, {&handler, 1, 10, 0});
  q.schedule_timer(50, {&handler, 2, 20, 0});
  q.schedule_timer(30, {&handler, RecordingHandler::kChainTag, 3, 0});
  q.schedule_timer(10'000'000, {&handler, 3, 30, 0});
  q.run_until(40);
  const std::size_t pre = handler.fired.size();

  auto reader = saved(q, handlers);
  EventQueue restored;
  RecordingHandler handler2(restored);
  HandlerMap handlers2;
  handlers2.timers.push_back(&handler2);
  restored.restore(reader, handlers2);
  reader.close_chunk();

  EXPECT_EQ(restored.now(), q.now());
  EXPECT_EQ(restored.size(), q.size());
  EXPECT_EQ(restored.events_run(), q.events_run());

  q.run_until(20'000'000);
  restored.run_until(20'000'000);
  EXPECT_EQ(handler2.fired,
            Fired(handler.fired.begin() + static_cast<std::ptrdiff_t>(pre), handler.fired.end()));
  EXPECT_EQ(restored.events_run(), q.events_run());
}

TEST(EngineSnapshot, RefusesPendingCallbacks) {
  EventQueue q;
  q.schedule(5, [] {});
  snapshot::Writer w;
  w.begin_chunk(snapshot::chunk_id("ENGN"));
  EXPECT_THROW(q.save(w, HandlerMap{}), std::invalid_argument);
}

TEST(EngineSnapshot, RefusesRestoreIntoUsedEngine) {
  EventQueue q;
  RecordingHandler handler(q);
  HandlerMap handlers;
  handlers.timers.push_back(&handler);
  q.schedule_timer(10, {&handler, 1, 0, 0});
  auto reader = saved(q, handlers);

  EventQueue used;
  RecordingHandler handler2(used);
  used.schedule_timer(1, {&handler2, 1, 0, 0});
  used.run_until(2);
  HandlerMap handlers2;
  handlers2.timers.push_back(&handler2);
  EXPECT_THROW(used.restore(reader, handlers2), std::invalid_argument);
}

TEST(EngineSnapshot, UnregisteredHandlerIsRejectedAtSave) {
  EventQueue q;
  RecordingHandler handler(q);
  q.schedule_timer(10, {&handler, 1, 0, 0});
  snapshot::Writer w;
  w.begin_chunk(snapshot::chunk_id("ENGN"));
  // Empty handler map: the pending timer's handler has no index.
  EXPECT_THROW(q.save(w, HandlerMap{}), std::invalid_argument);
}

TEST(EngineSnapshot, SequencePreservationAcrossMixedTiers) {
  // Schedule across all three tiers (active window, wheel, overflow) at
  // one shared time tick per tier, then prove the restored engine fires
  // them in the original schedule order.
  EventQueue q;
  RecordingHandler handler(q);
  HandlerMap handlers;
  handlers.timers.push_back(&handler);
  const TimePs times[] = {1, 5'000, 1, 3'000'000, 5'000, 1};
  for (std::uint64_t i = 0; i < 6; ++i) {
    q.schedule_timer(times[i], {&handler, 4, i, 0});
  }
  auto reader = saved(q, handlers);
  EventQueue restored;
  RecordingHandler handler2(restored);
  HandlerMap handlers2;
  handlers2.timers.push_back(&handler2);
  restored.restore(reader, handlers2);
  reader.close_chunk();
  restored.run_until(4'000'000);
  q.run_until(4'000'000);
  ASSERT_EQ(handler2.fired.size(), 6u);
  EXPECT_EQ(handler2.fired, handler.fired);
  // Ties at t=1 fired as scheduled: operands 0, 2, 5.
  EXPECT_EQ(std::get<2>(handler2.fired[0]), 0u);
  EXPECT_EQ(std::get<2>(handler2.fired[1]), 2u);
  EXPECT_EQ(std::get<2>(handler2.fired[2]), 5u);
}

}  // namespace
}  // namespace quartz::sim
