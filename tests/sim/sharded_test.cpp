// Sharded-engine units: the partition planner, the SPSC mailbox (incl.
// a concurrent stress), and ShardedSim window semantics — with a
// barrier-boundary tie harness that sends packets timed so cross-shard
// heads land EXACTLY on window barriers, the case the strict-window +
// stamp protocol exists for.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "routing/ecmp.hpp"
#include "routing/oracle.hpp"
#include "sim/mailbox.hpp"
#include "sim/network.hpp"
#include "sim/partition.hpp"
#include "sim/sharded.hpp"
#include "topo/builders.hpp"
#include "topo/composite.hpp"

namespace quartz {
namespace {

topo::BuiltTopology flat_ring(int switches, int hosts_per_switch) {
  topo::QuartzRingParams params;
  params.switches = switches;
  params.hosts_per_switch = hosts_per_switch;
  return topo::quartz_ring(params);
}

topo::BuiltTopology ring_of_rings(const char* spec_text) {
  const auto spec = topo::CompositeSpec::parse(spec_text);
  EXPECT_TRUE(spec.has_value());
  return topo::build_composite(*spec);
}

TEST(Partition, SingleShardIsUnbounded) {
  const auto topo = flat_ring(8, 1);
  const sim::PartitionPlan plan = sim::plan_partition(topo, 1);
  EXPECT_EQ(plan.shards, 1);
  EXPECT_EQ(plan.strategy, "single");
  EXPECT_TRUE(plan.cross_links.empty());
  EXPECT_EQ(plan.nodes_per_shard[0], static_cast<std::int64_t>(topo.graph.node_count()));
}

TEST(Partition, FlatRingSegments) {
  const auto topo = flat_ring(16, 2);
  const sim::PartitionPlan plan = sim::plan_partition(topo, 4);
  EXPECT_EQ(plan.strategy, "ring-segment");
  EXPECT_FALSE(plan.cross_links.empty());
  EXPECT_GT(plan.lookahead, 0);
  // Hosts follow their attachment switch: no host link may be cut.
  for (const topo::LinkId id : plan.cross_links) {
    const auto& link = topo.graph.link(id);
    EXPECT_TRUE(topo.graph.is_switch(link.a) && topo.graph.is_switch(link.b));
  }
  // Every shard is populated and the population is balanced.
  for (const std::int64_t n : plan.nodes_per_shard) EXPECT_EQ(n, 12);  // 4 switches + 8 hosts
}

TEST(Partition, CompositeBlocksTopLevelElements) {
  const auto topo = ring_of_rings("ring-of-rings:8x4@2");
  const sim::PartitionPlan plan = sim::plan_partition(topo, 4);
  EXPECT_EQ(plan.strategy, "composite");
  ASSERT_NE(topo.composite, nullptr);
  // Two top-level elements per shard; every node of one element lands
  // with its element.
  for (const topo::NodeId sw : topo.graph.switches()) {
    const int group = topo.composite->path_at(sw, 0);
    EXPECT_EQ(plan.owner[static_cast<std::size_t>(sw)], group / 2);
  }
  // Only level-0 trunks are cut, so the lookahead is the trunk
  // propagation (500 ns), not the intra-ring propagation.
  EXPECT_EQ(plan.lookahead, nanoseconds(500));
}

TEST(Partition, RefusesMoreShardsThanElements) {
  const auto composite = ring_of_rings("ring-of-rings:4x4@1");
  EXPECT_THROW(sim::plan_partition(composite, 5), std::invalid_argument);
  const auto flat = flat_ring(4, 1);
  EXPECT_THROW(sim::plan_partition(flat, 5), std::invalid_argument);
}

TEST(Partition, LayoutDigestDistinguishesLayouts) {
  const auto topo = flat_ring(16, 2);
  const auto a = sim::plan_partition(topo, 2);
  const auto b = sim::plan_partition(topo, 4);
  EXPECT_NE(a.layout_digest(), b.layout_digest());
  EXPECT_EQ(a.layout_digest(), sim::plan_partition(topo, 2).layout_digest());
}

TEST(ShardStamp, NonZeroAndIdDetermined) {
  EXPECT_NE(sim::shard_stamp(0), 0u);
  EXPECT_NE(sim::shard_stamp(1), sim::shard_stamp(2));
  EXPECT_EQ(sim::shard_stamp(7), sim::shard_stamp(7));
  EXPECT_EQ(sim::shard_stamp(42) & 1, 1u);
}

TEST(Mailbox, PreservesOrderAcrossChunks) {
  sim::Mailbox box;
  // More than one chunk's worth to force chunk linking + retirement.
  const int n = 1500;
  for (int i = 0; i < n; ++i) {
    sim::PacketEvent event;
    event.packet.id = static_cast<std::uint64_t>(i);
    box.push(event, TimePs{i}, sim::shard_stamp(static_cast<std::uint64_t>(i)));
  }
  EXPECT_EQ(box.posted(), static_cast<std::uint64_t>(n));
  std::vector<std::uint64_t> seen;
  box.drain([&seen](const sim::Mailbox::Entry& entry) { seen.push_back(entry.event.packet.id); });
  ASSERT_EQ(seen.size(), static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) EXPECT_EQ(seen[static_cast<std::size_t>(i)], static_cast<std::uint64_t>(i));
  EXPECT_EQ(box.pending(), 0u);
}

TEST(Mailbox, ConcurrentProducerConsumerStress) {
  sim::Mailbox box;
  constexpr std::uint64_t kTotal = 200000;
  std::thread producer([&box] {
    for (std::uint64_t i = 0; i < kTotal; ++i) {
      sim::PacketEvent event;
      event.packet.id = i;
      box.push(event, static_cast<TimePs>(i), sim::shard_stamp(i));
    }
  });
  std::uint64_t next = 0;
  while (next < kTotal) {
    box.drain([&next](const sim::Mailbox::Entry& entry) {
      // In-order, no loss, no duplication — even while the producer is
      // concurrently appending and linking fresh chunks.
      ASSERT_EQ(entry.event.packet.id, next);
      ASSERT_EQ(entry.stamp, sim::shard_stamp(next));
      ++next;
    });
  }
  producer.join();
  EXPECT_EQ(box.pending(), 0u);
  EXPECT_EQ(box.consumed(), kTotal);
}

// ---------------------------------------------------------------------------
// Barrier-boundary ties.
//
// Flat ring, every switch-to-switch propagation equal to the partition
// lookahead W.  Each host sends on an exact multiple of W, so every
// cross-shard head arrival lands EXACTLY on a window barrier — the
// adversarial case: the entry must be deferred to the next window and
// then interleaved with local same-time events purely by stamp.  The
// delivery digest must still match the single-shard reference.

struct TieRecord {
  TimePs when = 0;
  std::uint64_t id = 0;
};

class TieShard final : public sim::Shard, public sim::TimerHandler {
 public:
  TieShard(const topo::BuiltTopology& topo, const routing::EcmpRouting& routing,
           const sim::ShardContext& ctx, TimePs gap, int packets)
      : topo_(topo), oracle_(routing), net_(topo, oracle_), gap_(gap), packets_(packets) {
    net_.bind_shard(ctx.binding);
    task_ = net_.new_task([this](const sim::Packet& p, TimePs) {
      records_.push_back({net_.now(), p.id});
    });
  }

  sim::Network& network() override { return net_; }
  const std::vector<TieRecord>& records() const { return records_; }

  void arm() {
    const auto& hosts = topo_.hosts;
    for (std::size_t i = 0; i < hosts.size(); ++i) {
      if (!net_.owns_node(hosts[i])) continue;
      // Aligned start: every send lands on a multiple of the gap.
      net_.schedule_timer(0, {this, 1, i, 0});
    }
  }

 private:
  void on_timer(const sim::TimerEvent& event) override {
    const std::uint64_t i = event.a;
    const std::uint64_t k = event.b;
    const auto& hosts = topo_.hosts;
    // Fixed pairing with the diametrically opposite host: guaranteed
    // cross-shard at every shard count > 1.
    const std::size_t n = hosts.size();
    const std::size_t dst = (static_cast<std::size_t>(i) + n / 2) % n;
    net_.send(hosts[static_cast<std::size_t>(i)], hosts[dst], bytes(125), task_,
              i * 1000 + k);
    if (k + 1 < static_cast<std::uint64_t>(packets_)) {
      net_.schedule_timer(gap_ * static_cast<TimePs>(k + 1), {this, 1, i, k + 1});
    }
  }

  const topo::BuiltTopology& topo_;
  routing::EcmpOracle oracle_;
  sim::Network net_;
  TimePs gap_;
  int packets_;
  int task_ = -1;
  std::vector<TieRecord> records_;
};

std::uint64_t tie_digest(const topo::BuiltTopology& topo, const routing::EcmpRouting& routing,
                         int shards, TimePs gap, int packets, TimePs horizon) {
  sim::ShardedSim sharded(
      sim::plan_partition(topo, shards),
      [&](const sim::ShardContext& ctx) -> std::unique_ptr<sim::Shard> {
        return std::make_unique<TieShard>(topo, routing, ctx, gap, packets);
      });
  std::vector<std::unique_ptr<TieShard>> dummy;  // keep type visible
  sharded.visit([](int, sim::Shard& shard) { static_cast<TieShard&>(shard).arm(); });
  sharded.run_until(horizon);
  // Merge per-shard records by (time, stamp) — the engine's own order.
  std::vector<TieRecord> all;
  sharded.visit([&all](int, sim::Shard& shard) {
    const auto& recs = static_cast<TieShard&>(shard).records();
    all.insert(all.end(), recs.begin(), recs.end());
  });
  std::sort(all.begin(), all.end(), [](const TieRecord& a, const TieRecord& b) {
    if (a.when != b.when) return a.when < b.when;
    return sim::shard_stamp(a.id) < sim::shard_stamp(b.id);
  });
  std::uint64_t digest = 14695981039346656037ull;
  for (const TieRecord& rec : all) {
    for (const std::uint64_t v : {static_cast<std::uint64_t>(rec.when), rec.id}) {
      for (int byte = 0; byte < 8; ++byte) {
        digest ^= (v >> (8 * byte)) & 0xFF;
        digest *= 1099511628211ull;
      }
    }
  }
  EXPECT_GT(all.size(), 0u);
  return digest;
}

TEST(ShardedSim, BarrierBoundaryTiesMatchSerial) {
  const auto topo = flat_ring(8, 1);
  const routing::EcmpRouting routing(topo.graph);
  const sim::PartitionPlan probe = sim::plan_partition(topo, 2);
  // The send cadence IS the lookahead: heads of cross-shard hops land
  // exactly on barrier times.
  const TimePs gap = probe.lookahead;
  const int packets = 40;
  const TimePs horizon = gap * 200;
  const std::uint64_t serial = tie_digest(topo, routing, 1, gap, packets, horizon);
  EXPECT_EQ(tie_digest(topo, routing, 2, gap, packets, horizon), serial);
  EXPECT_EQ(tie_digest(topo, routing, 4, gap, packets, horizon), serial);
}

TEST(ShardedSim, CrossShardTrafficUsesMailboxes) {
  const auto topo = flat_ring(8, 1);
  const routing::EcmpRouting routing(topo.graph);
  sim::ShardedSim sharded(
      sim::plan_partition(topo, 2),
      [&](const sim::ShardContext& ctx) -> std::unique_ptr<sim::Shard> {
        return std::make_unique<TieShard>(topo, routing, ctx, nanoseconds(300), 20);
      });
  sharded.visit([](int, sim::Shard& shard) { static_cast<TieShard&>(shard).arm(); });
  sharded.run_until(microseconds(50));
  EXPECT_GT(sharded.mail_posted(), 0u);
  EXPECT_GT(sharded.events_processed(), 0u);
}

TEST(ShardedSim, FactoryErrorPropagates) {
  const auto topo = flat_ring(8, 1);
  EXPECT_THROW(
      sim::ShardedSim(sim::plan_partition(topo, 2),
                      [](const sim::ShardContext&) -> std::unique_ptr<sim::Shard> {
                        throw std::runtime_error("boom");
                      }),
      std::runtime_error);
}

}  // namespace
}  // namespace quartz
