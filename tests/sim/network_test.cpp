#include "sim/network.hpp"

#include <gtest/gtest.h>

#include "routing/oracle.hpp"
#include "sim/workloads.hpp"
#include "topo/builders.hpp"

namespace quartz::sim {
namespace {

using topo::NodeId;

struct Fixture {
  topo::BuiltTopology topo;
  std::unique_ptr<routing::EcmpRouting> routing;
  std::unique_ptr<routing::EcmpOracle> oracle;

  static Fixture single_switch(topo::SwitchModel model, BitsPerSecond rate) {
    topo::SingleSwitchParams p;
    p.hosts = 4;
    p.host_rate = rate;
    p.switch_model = model;
    p.propagation = 0;
    Fixture f;
    f.topo = topo::single_switch(p);
    f.routing = std::make_unique<routing::EcmpRouting>(f.topo.graph);
    f.oracle = std::make_unique<routing::EcmpOracle>(*f.routing);
    return f;
  }
};

TEST(Network, CutThroughLatencyArithmetic) {
  // One ULL switch at 10 Gb/s, zero propagation.  400B packet: the
  // host serializes 320 ns; the cut-through decision lands at first
  // bit + 380 ns, and the egress serialization overlaps the ingress
  // (classic cut-through pipelining), so the last bit leaves at
  // last-bit-in + 380 ns.  End to end = 320 + 380 = 700 ns.
  auto f = Fixture::single_switch(topo::SwitchModel::ull(), gigabits_per_second(10));
  Network net(f.topo, *f.oracle);
  TimePs measured = -1;
  const int task = net.new_task([&](const Packet&, TimePs latency) { measured = latency; });
  net.send(f.topo.hosts[0], f.topo.hosts[1], bytes(400), task, 1);
  net.run_until(milliseconds(1));
  EXPECT_EQ(measured, nanoseconds(320 + 380));
}

TEST(Network, StoreAndForwardWaitsForLastBit) {
  // Same topology with a CCS: decision at LAST bit + 6 us.
  // End to end = 320 (receive) + 6000 + 320 (egress) ns.
  auto f = Fixture::single_switch(topo::SwitchModel::ccs(), gigabits_per_second(10));
  Network net(f.topo, *f.oracle);
  TimePs measured = -1;
  const int task = net.new_task([&](const Packet&, TimePs latency) { measured = latency; });
  net.send(f.topo.hosts[0], f.topo.hosts[1], bytes(400), task, 1);
  net.run_until(milliseconds(1));
  EXPECT_EQ(measured, nanoseconds(320) + microseconds(6) + nanoseconds(320));
}

TEST(Network, PropagationAdds) {
  topo::SingleSwitchParams p;
  p.hosts = 2;
  p.host_rate = gigabits_per_second(10);
  p.switch_model = topo::SwitchModel::ull();
  p.propagation = nanoseconds(100);
  auto topo = topo::single_switch(p);
  routing::EcmpRouting routing(topo.graph);
  routing::EcmpOracle oracle(routing);
  Network net(topo, oracle);
  TimePs measured = -1;
  const int task = net.new_task([&](const Packet&, TimePs latency) { measured = latency; });
  net.send(topo.hosts[0], topo.hosts[1], bytes(400), task, 1);
  net.run_until(milliseconds(1));
  // Cut-through pipelining hides the egress serialization; both
  // propagation delays add.
  EXPECT_EQ(measured, nanoseconds(320 + 380 + 200));
}

TEST(Network, HostOverheadsIncluded) {
  auto f = Fixture::single_switch(topo::SwitchModel::ull(), gigabits_per_second(10));
  SimConfig config;
  config.host_send_overhead = microseconds(1);
  config.host_recv_overhead = microseconds(2);
  Network net(f.topo, *f.oracle, config);
  TimePs measured = -1;
  const int task = net.new_task([&](const Packet&, TimePs latency) { measured = latency; });
  net.send(f.topo.hosts[0], f.topo.hosts[1], bytes(400), task, 1);
  net.run_until(milliseconds(1));
  EXPECT_EQ(measured, nanoseconds(320 + 380) + microseconds(3));
}

TEST(Network, BackToBackPacketsQueueOnEgress) {
  auto f = Fixture::single_switch(topo::SwitchModel::ull(), gigabits_per_second(10));
  Network net(f.topo, *f.oracle);
  std::vector<TimePs> latencies;
  const int task =
      net.new_task([&](const Packet&, TimePs latency) { latencies.push_back(latency); });
  // Two packets sent at the same instant from different hosts to the
  // same destination: the second serializes behind the first on the
  // destination's access link.
  net.send(f.topo.hosts[0], f.topo.hosts[2], bytes(400), task, 1);
  net.send(f.topo.hosts[1], f.topo.hosts[2], bytes(400), task, 2);
  net.run_until(milliseconds(1));
  ASSERT_EQ(latencies.size(), 2u);
  std::sort(latencies.begin(), latencies.end());
  EXPECT_EQ(latencies[0], nanoseconds(700));
  EXPECT_EQ(latencies[1], nanoseconds(700 + 320));  // one extra serialization
}

TEST(Network, DropsWhenQueueDelayExceeded) {
  auto f = Fixture::single_switch(topo::SwitchModel::ull(), gigabits_per_second(10));
  SimConfig config;
  config.max_queue_delay = microseconds(1);  // ~3 packets of headroom
  Network net(f.topo, *f.oracle, config);
  const int task = net.new_task({});
  for (int i = 0; i < 50; ++i) {
    net.send(f.topo.hosts[0], f.topo.hosts[1], bytes(400), task, 1);
  }
  net.run_until(milliseconds(1));
  EXPECT_GT(net.packets_dropped(), 0u);
  EXPECT_EQ(net.packets_sent(), 50u);
  EXPECT_EQ(net.packets_delivered() + net.packets_dropped(), 50u);
}

TEST(Network, CountsDeliveries) {
  auto f = Fixture::single_switch(topo::SwitchModel::ull(), gigabits_per_second(10));
  Network net(f.topo, *f.oracle);
  const int task = net.new_task({});
  for (int i = 0; i < 10; ++i) {
    net.send(f.topo.hosts[static_cast<std::size_t>(i % 3)], f.topo.hosts[3], bytes(400), task,
             static_cast<std::uint64_t>(i));
  }
  net.run_until(milliseconds(1));
  EXPECT_EQ(net.packets_delivered(), 10u);
  EXPECT_EQ(net.packets_dropped(), 0u);
}

TEST(Network, RejectsNonHostEndpoints) {
  auto f = Fixture::single_switch(topo::SwitchModel::ull(), gigabits_per_second(10));
  Network net(f.topo, *f.oracle);
  const int task = net.new_task({});
  EXPECT_THROW(net.send(f.topo.cores[0], f.topo.hosts[0], bytes(400), task, 1),
               std::invalid_argument);
  EXPECT_THROW(net.send(f.topo.hosts[0], f.topo.hosts[0], bytes(400), task, 1),
               std::invalid_argument);
  EXPECT_THROW(net.send(f.topo.hosts[0], f.topo.hosts[1], 0, task, 1), std::invalid_argument);
}

TEST(Network, CutThroughCannotFinishBeforeReceiving) {
  // Host link 10G feeds a 40G mesh: egress tx (80 ns) would finish
  // before the 320 ns ingress completes; the model must stretch the
  // egress to respect causality.
  topo::QuartzRingParams p;
  p.switches = 2;
  p.hosts_per_switch = 1;
  p.mesh_rate = gigabits_per_second(40);
  p.links.host_rate = gigabits_per_second(10);
  p.links.host_propagation = 0;
  p.links.fabric_propagation = 0;
  auto topo = topo::quartz_ring(p);
  routing::EcmpRouting routing(topo.graph);
  routing::EcmpOracle oracle(routing);
  Network net(topo, oracle);
  TimePs measured = -1;
  const int task = net.new_task([&](const Packet&, TimePs latency) { measured = latency; });
  net.send(topo.hosts[0], topo.hosts[1], bytes(400), task, 1);
  net.run_until(milliseconds(1));
  // The first switch's 80 ns mesh egress is stretched to last-bit-in +
  // 380 ns = 700 ns (it cannot finish before receiving); the second
  // switch's 10G egress then finishes at 700 + 380 = 1080 ns.
  EXPECT_EQ(measured, nanoseconds(320 + 380 + 380));
}

TEST(Network, QueueingMatchesMD1Theory) {
  // The paper validated its simulator against queueing theory (§7).
  // Poisson arrivals into a single deterministic-service link form an
  // M/D/1 queue: W = rho * S / (2 (1 - rho)).
  auto f = Fixture::single_switch(topo::SwitchModel::ull(), gigabits_per_second(10));
  Network net(f.topo, *f.oracle);
  SampleSet latencies;
  const int task = net.new_task(
      [&](const Packet&, TimePs latency) { latencies.add(to_nanoseconds(latency)); });

  const double rho = 0.6;
  FlowParams flow;
  flow.packet_size = bytes(400);
  flow.rate = gigabits_per_second(10) * rho;
  flow.stop = milliseconds(400);
  Rng rng(99);
  PoissonFlow source(net, f.topo.hosts[0], f.topo.hosts[1], task, flow, rng);
  net.run_until(flow.stop + milliseconds(1));

  // Queueing happens on the sender's access link; service time S =
  // 320 ns.  Expected wait = 0.6*320/(2*0.4) = 240 ns on top of the
  // 700 ns pipelined base.
  const double base_ns = 700.0;
  const double expected_wait_ns = rho * 320.0 / (2.0 * (1.0 - rho));
  ASSERT_GT(latencies.count(), 100'000u);
  EXPECT_NEAR(latencies.mean() - base_ns, expected_wait_ns, expected_wait_ns * 0.08);
}

TEST(Network, ArrivalHookTracesTheRoute) {
  topo::QuartzRingParams p;
  p.switches = 5;
  p.hosts_per_switch = 2;
  auto topo = topo::quartz_ring(p);
  routing::EcmpRouting routing(topo.graph);
  routing::EcmpOracle oracle(routing);
  Network net(topo, oracle);

  std::vector<topo::NodeId> trace;
  net.add_arrival_hook([&trace](const Packet&, topo::NodeId node, TimePs) {
    trace.push_back(node);
  });
  const int task = net.new_task({});
  net.send(topo.host_groups[0][0], topo.host_groups[3][1], bytes(400), task, 1);
  net.run_until(milliseconds(1));

  // host -> ToR0 -> ToR3 -> host: three arrivals after the send.
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace[0], topo.tors[0]);
  EXPECT_EQ(trace[1], topo.tors[3]);
  EXPECT_EQ(trace[2], topo.host_groups[3][1]);
}

TEST(Network, TwoArrivalSubscribersBothFire) {
  // Regression: hook registration used to be last-writer-wins, so a
  // second subscriber silently replaced the first.
  auto f = Fixture::single_switch(topo::SwitchModel::ull(), gigabits_per_second(10));
  Network net(f.topo, *f.oracle);
  int first = 0;
  int second = 0;
  net.add_arrival_hook([&first](const Packet&, topo::NodeId, TimePs) { ++first; });
  net.add_arrival_hook([&second](const Packet&, topo::NodeId, TimePs) { ++second; });
  const int task = net.new_task({});
  net.send(f.topo.hosts[0], f.topo.hosts[1], bytes(400), task, 1);
  net.run_until(milliseconds(1));
  EXPECT_EQ(first, 2);  // switch + destination host
  EXPECT_EQ(second, 2);
}

TEST(Network, TwoDropSubscribersBothFire) {
  auto f = Fixture::single_switch(topo::SwitchModel::ull(), gigabits_per_second(10));
  SimConfig config;
  config.max_queue_delay = microseconds(1);
  Network net(f.topo, *f.oracle, config);
  std::uint64_t first = 0;
  std::uint64_t second = 0;
  // One subscriber arrives through the deprecated set_* shim on purpose:
  // this is the regression test that keeps the shim appending (not
  // replacing) until the last out-of-tree caller migrates to add_*.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  net.set_drop_hook([&first](const Packet&, DropReason) { ++first; });
#pragma GCC diagnostic pop
  net.add_drop_hook([&second](const Packet&, DropReason) { ++second; });
  const int task = net.new_task({});
  for (int i = 0; i < 50; ++i) {
    net.send(f.topo.hosts[0], f.topo.hosts[1], bytes(400), task, 1);
  }
  net.run_until(milliseconds(1));
  ASSERT_GT(net.packets_dropped(), 0u);
  EXPECT_EQ(first, net.packets_dropped());
  EXPECT_EQ(second, net.packets_dropped());
}

TEST(Network, SinkAndHookCoexist) {
  // A telemetry sink and a legacy hook observe the same events, and a
  // removed sink stops observing.
  struct CountingSink final : TelemetrySink {
    int arrivals = 0;
    int deliveries = 0;
    void on_arrival(const Packet&, topo::NodeId, TimePs, TimePs) override { ++arrivals; }
    void on_delivery(const Packet&, TimePs, TimePs) override { ++deliveries; }
  };
  auto f = Fixture::single_switch(topo::SwitchModel::ull(), gigabits_per_second(10));
  Network net(f.topo, *f.oracle);
  CountingSink sink;
  net.add_sink(&sink);
  int hook_arrivals = 0;
  // The other shim also stays covered here, next to a modern sink.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  net.set_arrival_hook(
      [&hook_arrivals](const Packet&, topo::NodeId, TimePs) { ++hook_arrivals; });
#pragma GCC diagnostic pop
  const int task = net.new_task({});
  net.send(f.topo.hosts[0], f.topo.hosts[1], bytes(400), task, 1);
  net.run_until(milliseconds(1));
  EXPECT_EQ(sink.arrivals, 2);
  EXPECT_EQ(hook_arrivals, 2);
  EXPECT_EQ(sink.deliveries, 1);

  net.remove_sink(&sink);
  net.send(f.topo.hosts[0], f.topo.hosts[1], bytes(400), task, 2);
  net.run_until(net.now() + milliseconds(1));
  EXPECT_EQ(sink.arrivals, 2);  // unchanged after removal
  EXPECT_EQ(hook_arrivals, 4);
}

TEST(Network, TracedHopsMatchRoutingDistance) {
  // Property: for random host pairs, the number of arrivals equals the
  // ECMP distance (route conformance of the simulator).
  topo::ThreeTierParams p;
  auto topo = topo::three_tier_tree(p);
  routing::EcmpRouting routing(topo.graph);
  routing::EcmpOracle oracle(routing);
  Network net(topo, oracle);

  int arrivals = 0;
  net.add_arrival_hook([&arrivals](const Packet&, topo::NodeId, TimePs) { ++arrivals; });
  const int task = net.new_task({});
  Rng rng(57);
  for (int i = 0; i < 100; ++i) {
    const auto src = topo.hosts[rng.next_below(topo.hosts.size())];
    auto dst = topo.hosts[rng.next_below(topo.hosts.size())];
    while (dst == src) dst = topo.hosts[rng.next_below(topo.hosts.size())];
    arrivals = 0;
    net.send(src, dst, bytes(400), task, rng.next_u64());
    net.run_until(net.now() + milliseconds(1));
    EXPECT_EQ(arrivals, routing.distance(src, dst)) << "pair " << src << "->" << dst;
  }
}

class MD1Sweep : public ::testing::TestWithParam<double> {};

TEST_P(MD1Sweep, WaitMatchesTheoryAcrossUtilizations) {
  // The full M/D/1 waiting-time curve W = rho*S/(2(1-rho)), not just
  // one point — the "validated against queueing theory" claim (§7).
  const double rho = GetParam();
  auto f = Fixture::single_switch(topo::SwitchModel::ull(), gigabits_per_second(10));
  Network net(f.topo, *f.oracle);
  RunningStats latencies;
  const int task = net.new_task(
      [&](const Packet&, TimePs latency) { latencies.add(to_nanoseconds(latency)); });
  FlowParams flow;
  flow.rate = gigabits_per_second(10) * rho;
  flow.stop = milliseconds(rho > 0.75 ? 600 : 300);
  Rng rng(static_cast<std::uint64_t>(rho * 1000));
  PoissonFlow source(net, f.topo.hosts[0], f.topo.hosts[1], task, flow, rng);
  net.run_until(flow.stop + milliseconds(1));

  const double expected_wait_ns = rho * 320.0 / (2.0 * (1.0 - rho));
  ASSERT_GT(latencies.count(), 50'000u);
  EXPECT_NEAR(latencies.mean() - 700.0, expected_wait_ns,
              std::max(5.0, expected_wait_ns * 0.1))
      << "rho=" << rho;
}

INSTANTIATE_TEST_SUITE_P(Utilizations, MD1Sweep, ::testing::Values(0.3, 0.5, 0.7, 0.8));

TEST(Network, ServerRelayChargesOsStack) {
  topo::BCubeParams p;
  p.n = 3;
  p.links.host_propagation = 0;
  p.links.fabric_propagation = 0;
  auto topo = topo::bcube1(p);
  routing::EcmpRouting routing(topo.graph, /*allow_host_relay=*/true);
  routing::EcmpOracle oracle(routing);
  SimConfig config;
  config.server_forward_latency = microseconds(15);
  Network net(topo, oracle, config);
  TimePs measured = -1;
  const int task = net.new_task([&](const Packet&, TimePs latency) { measured = latency; });
  // Host (0,0) -> (1,1) needs a server relay.
  net.send(topo.host_groups[0][0], topo.host_groups[1][1], bytes(400), task, 1);
  net.run_until(milliseconds(1));
  EXPECT_GT(measured, microseconds(15));
}

}  // namespace
}  // namespace quartz::sim
