// Satellite regression for the engine refactor: the typed pooled event
// queue must keep simulations bit-reproducible — the same seed replays
// the exact same delivery and drop stream, and the Fig. 18 experiment
// returns bit-identical statistics run to run.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "routing/ecmp.hpp"
#include "routing/fib.hpp"
#include "routing/health_monitor.hpp"
#include "routing/oracle.hpp"
#include "sim/experiments.hpp"
#include "sim/fault_injection.hpp"
#include "sim/network.hpp"
#include "sim/probes.hpp"
#include "sim/workloads.hpp"
#include "telemetry/sink.hpp"
#include "topo/builders.hpp"

namespace quartz::sim {
namespace {

std::string hex_bits(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(bits));
  return buf;
}

/// FNV-1a digest of the full delivery and drop streams: any change in
/// which packet arrives when (or is dropped why) changes the digest.
class DigestSink : public telemetry::TelemetrySink {
 public:
  void on_delivery(const Packet& packet, TimePs delivered, TimePs latency) override {
    mix(delivery_digest, packet.id);
    mix(delivery_digest, static_cast<std::uint64_t>(delivered));
    mix(delivery_digest, static_cast<std::uint64_t>(latency));
    ++deliveries;
  }
  void on_drop(const Packet& packet, telemetry::DropReason reason, TimePs when) override {
    mix(drop_digest, packet.id);
    mix(drop_digest, static_cast<std::uint64_t>(reason));
    mix(drop_digest, static_cast<std::uint64_t>(when));
    ++drops;
  }

  std::uint64_t delivery_digest = 14695981039346656037ull;
  std::uint64_t drop_digest = 14695981039346656037ull;
  std::uint64_t deliveries = 0;
  std::uint64_t drops = 0;

 private:
  static void mix(std::uint64_t& digest, std::uint64_t value) {
    for (int byte = 0; byte < 8; ++byte) {
      digest ^= (value >> (8 * byte)) & 0xFF;
      digest *= 1099511628211ull;
    }
  }
};

struct DigestResult {
  std::uint64_t delivery_digest;
  std::uint64_t drop_digest;
  std::uint64_t deliveries;
  std::uint64_t drops;
  routing::Fib::Stats fib;
};

/// A Fig. 18-shaped run on a live mesh: localized all-to-all Poisson
/// traffic on an 8-switch ring with a fiber cut and repair mid-run, so
/// the digest covers deliveries, link-down drops, and fault detection.
/// With `use_fib` the run routes through a compiled routing::Fib whose
/// epoch invalidation the cut and repair both exercise.
DigestResult run_digest(std::uint64_t seed, bool use_fib = false) {
  topo::QuartzRingParams ring;
  ring.switches = 8;
  ring.hosts_per_switch = 2;
  const topo::BuiltTopology topo = topo::quartz_ring(ring);
  routing::EcmpRouting routing(topo.graph);
  routing::EcmpOracle oracle(routing);
  SimConfig config;
  config.failure_detection_delay = milliseconds(1);
  Network net(topo, oracle, config);
  oracle.attach_failure_view(&net.failure_view());
  routing::Fib fib(routing, oracle);
  if (use_fib) net.set_fib(&fib);

  DigestSink digest;
  net.add_sink(&digest);

  const int task = net.new_task([](const Packet&, TimePs) {});
  Rng rng(seed);
  std::vector<std::unique_ptr<PoissonFlow>> flows;
  FlowParams flow;
  flow.rate = megabits_per_second(50);
  flow.stop = milliseconds(20);
  for (const topo::NodeId src : topo.hosts) {
    for (const topo::NodeId dst : topo.hosts) {
      if (src == dst) continue;
      flows.push_back(std::make_unique<PoissonFlow>(net, src, dst, task, flow, rng.fork()));
    }
  }

  FaultScheduler faults(net);
  faults.schedule_fiber_cut(milliseconds(5), {0, 0}, milliseconds(12));
  net.run_until(milliseconds(22));

  return {digest.delivery_digest, digest.drop_digest, digest.deliveries, digest.drops,
          fib.stats()};
}

/// A chaos storm with churn: VLB over the mesh, a probe-driven
/// HealthMonitor as the loss view (every probe can move an EWMA and
/// bump the routing epoch), a gray link, and staggered cuts/repairs.
/// The digest must not depend on whether the compiled FIB fronts the
/// oracle.
DigestResult run_storm_digest(std::uint64_t seed, bool use_fib) {
  topo::QuartzRingParams ring;
  ring.switches = 8;
  ring.hosts_per_switch = 2;
  const topo::BuiltTopology topo = topo::quartz_ring(ring);
  routing::EcmpRouting routing(topo.graph);
  routing::VlbOracle oracle(routing, topo.quartz_rings, 0.4);
  SimConfig config;
  config.failure_detection_delay = milliseconds(1);
  Network net(topo, oracle, config);
  oracle.attach_failure_view(&net.failure_view());

  routing::HealthMonitor monitor(topo.graph.link_count());
  oracle.attach_loss_view(&monitor);
  ProbePlane::Options probe_options;
  probe_options.interval = microseconds(50);
  ProbePlane probes(net, monitor, probe_options);
  probes.start();

  routing::Fib fib(routing, oracle);
  if (use_fib) net.set_fib(&fib);

  DigestSink digest;
  net.add_sink(&digest);

  const int task = net.new_task([](const Packet&, TimePs) {});
  Rng rng(seed);
  std::vector<std::unique_ptr<PoissonFlow>> flows;
  FlowParams flow;
  flow.rate = megabits_per_second(50);
  flow.stop = milliseconds(18);
  for (const topo::NodeId src : topo.hosts) {
    for (const topo::NodeId dst : topo.hosts) {
      if (src == dst) continue;
      flows.push_back(std::make_unique<PoissonFlow>(net, src, dst, task, flow, rng.fork()));
    }
  }

  // Gray failure on one mesh lightpath plus two staggered cuts.
  topo::LinkId gray = 0;
  for (const auto& link : topo.graph.links()) {
    if (topo.graph.is_switch(link.a) && topo.graph.is_switch(link.b)) gray = link.id;
  }
  net.at(milliseconds(2), [&net, gray] { net.set_link_loss(gray, 0.3); });
  net.at(milliseconds(14), [&net, gray] { net.set_link_loss(gray, 0.0); });
  FaultScheduler faults(net);
  faults.schedule_fiber_cut(milliseconds(4), {0, 0}, milliseconds(9));
  faults.schedule_fiber_cut(milliseconds(7), {0, 2}, milliseconds(15));
  net.run_until(milliseconds(20));

  return {digest.delivery_digest, digest.drop_digest, digest.deliveries, digest.drops,
          fib.stats()};
}

TEST(Determinism, DeliveryAndDropDigestsReplayExactly) {
  const DigestResult first = run_digest(7);
  const DigestResult second = run_digest(7);
  EXPECT_GT(first.deliveries, 0u);
  EXPECT_GT(first.drops, 0u);  // the cut must actually bite
  EXPECT_EQ(first.delivery_digest, second.delivery_digest);
  EXPECT_EQ(first.drop_digest, second.drop_digest);
  EXPECT_EQ(first.deliveries, second.deliveries);
  EXPECT_EQ(first.drops, second.drops);
}

TEST(Determinism, DifferentSeedsDiverge) {
  const DigestResult first = run_digest(7);
  const DigestResult other = run_digest(8);
  EXPECT_NE(first.delivery_digest, other.delivery_digest);
}

TEST(Determinism, FibDigestsMatchLegacyUnderFaults) {
  const DigestResult legacy = run_digest(7, /*use_fib=*/false);
  const DigestResult fib = run_digest(7, /*use_fib=*/true);
  EXPECT_GT(fib.deliveries, 0u);
  EXPECT_GT(fib.drops, 0u);
  EXPECT_EQ(legacy.delivery_digest, fib.delivery_digest);
  EXPECT_EQ(legacy.drop_digest, fib.drop_digest);
  EXPECT_EQ(legacy.deliveries, fib.deliveries);
  EXPECT_EQ(legacy.drops, fib.drops);
  // The FIB must actually have been on the path and been invalidated by
  // the cut's detection and the repair (epoch churn), not just idle.
  EXPECT_GT(fib.fib.hits, 0u);
  EXPECT_GT(fib.fib.invalidations, 1u);
  EXPECT_EQ(legacy.fib.hits + legacy.fib.misses + legacy.fib.slow_path, 0u);
}

TEST(Determinism, FibDigestsMatchLegacyOnChaosStorm) {
  const DigestResult legacy = run_storm_digest(21, /*use_fib=*/false);
  const DigestResult fib = run_storm_digest(21, /*use_fib=*/true);
  EXPECT_GT(fib.deliveries, 0u);
  EXPECT_GT(fib.drops, 0u);
  EXPECT_EQ(legacy.delivery_digest, fib.delivery_digest);
  EXPECT_EQ(legacy.drop_digest, fib.drop_digest);
  EXPECT_EQ(legacy.deliveries, fib.deliveries);
  EXPECT_EQ(legacy.drops, fib.drops);
  // Probe-driven EWMA movement churns the epoch constantly; the FIB
  // must keep recompiling (misses) yet still serve fast hits between
  // probes.
  EXPECT_GT(fib.fib.invalidations, 10u);
  EXPECT_GT(fib.fib.misses, 0u);
  EXPECT_GT(fib.fib.hits, 0u);
}

TEST(Determinism, Fig18StatisticsIdenticalFibOnVsOff) {
  TaskExperimentParams params;
  params.localized = true;
  params.tasks = 3;
  params.duration = milliseconds(4);
  params.seed = 7;
  FabricConfig fib_on;
  fib_on.use_fib = true;
  FabricConfig fib_off;
  fib_off.use_fib = false;
  const TaskExperimentResult a = run_task_experiment(Fabric::kQuartzInEdgeAndCore, fib_on, params);
  const TaskExperimentResult b =
      run_task_experiment(Fabric::kQuartzInEdgeAndCore, fib_off, params);
  EXPECT_GT(a.packets_measured, 0u);
  EXPECT_EQ(hex_bits(a.mean_latency_us), hex_bits(b.mean_latency_us));
  EXPECT_EQ(hex_bits(a.p99_latency_us), hex_bits(b.p99_latency_us));
  EXPECT_EQ(hex_bits(a.ci95_us), hex_bits(b.ci95_us));
  EXPECT_EQ(hex_bits(a.mean_queueing_us), hex_bits(b.mean_queueing_us));
  EXPECT_EQ(a.packets_measured, b.packets_measured);
  EXPECT_EQ(a.packets_dropped, b.packets_dropped);
}

TEST(Determinism, Fig18ExperimentBitReproducible) {
  TaskExperimentParams params;
  params.localized = true;  // Fig. 18: one local task plus cross-traffic
  params.tasks = 3;
  params.duration = milliseconds(4);
  params.seed = 7;
  const TaskExperimentResult a = run_task_experiment(Fabric::kQuartzInEdgeAndCore, {}, params);
  const TaskExperimentResult b = run_task_experiment(Fabric::kQuartzInEdgeAndCore, {}, params);
  EXPECT_GT(a.packets_measured, 0u);
  EXPECT_EQ(hex_bits(a.mean_latency_us), hex_bits(b.mean_latency_us));
  EXPECT_EQ(hex_bits(a.p99_latency_us), hex_bits(b.p99_latency_us));
  EXPECT_EQ(hex_bits(a.ci95_us), hex_bits(b.ci95_us));
  EXPECT_EQ(hex_bits(a.mean_queueing_us), hex_bits(b.mean_queueing_us));
  EXPECT_EQ(a.packets_measured, b.packets_measured);
  EXPECT_EQ(a.packets_dropped, b.packets_dropped);
}

}  // namespace
}  // namespace quartz::sim
