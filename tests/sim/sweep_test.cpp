#include "sim/sweep.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/experiments.hpp"
#include "telemetry/metrics.hpp"

namespace quartz::sim {
namespace {

/// Bit-exact serialization of a double: byte-identity across jobs means
/// the very bits match, not just values within an epsilon.
std::string hex_bits(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(bits));
  return buf;
}

TEST(DeriveSeed, DeterministicAndDecorrelated) {
  EXPECT_EQ(derive_seed(7, 0), derive_seed(7, 0));
  std::set<std::uint64_t> seeds;
  for (std::uint64_t point = 0; point < 1000; ++point) {
    seeds.insert(derive_seed(7, point));
  }
  EXPECT_EQ(seeds.size(), 1000u);  // no collisions across points
  EXPECT_NE(derive_seed(7, 0), derive_seed(8, 0));  // root matters
}

TEST(ResolveJobs, PositivePassesThroughNonPositiveMeansHardware) {
  EXPECT_EQ(resolve_jobs(1), 1);
  EXPECT_EQ(resolve_jobs(5), 5);
  EXPECT_GE(resolve_jobs(0), 1);
  EXPECT_GE(resolve_jobs(-3), 1);
}

TEST(SweepRunner, ResultsComeBackInPointOrder) {
  SweepRunner runner({4, 1});
  std::vector<int> points;
  for (int i = 0; i < 100; ++i) points.push_back(i);
  const std::vector<int> doubled = runner.run(points, [](int p) { return 2 * p; });
  ASSERT_EQ(doubled.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(doubled[static_cast<std::size_t>(i)], 2 * i);
}

TEST(SweepRunner, ContextCarriesIndexAndDerivedSeed) {
  SweepRunner runner({2, 99});
  const std::vector<int> points{10, 11, 12};
  const auto seeds = runner.run(points, [](int, SweepContext ctx) {
    return std::pair<std::size_t, std::uint64_t>{ctx.index, ctx.seed};
  });
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(seeds[i].first, i);
    EXPECT_EQ(seeds[i].second, derive_seed(99, i));
    EXPECT_EQ(seeds[i].second, runner.seed_for(i));
  }
}

TEST(SweepRunner, ByteIdenticalAcrossJobCounts) {
  const std::vector<int> points{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11};
  auto compute = [&points](int jobs) {
    SweepRunner runner({jobs, 42});
    std::string digest;
    for (const double v : runner.run(points, [](int p, SweepContext ctx) {
           // A value that depends on both the point and its seed.
           return static_cast<double>(ctx.seed % 1000003) / (p + 1.5);
         })) {
      digest += hex_bits(v);
    }
    return digest;
  };
  const std::string serial = compute(1);
  EXPECT_EQ(serial, compute(2));
  EXPECT_EQ(serial, compute(8));
}

TEST(SweepRunner, FirstExceptionPropagatesAfterJoin) {
  SweepRunner runner({4, 1});
  std::vector<int> points;
  for (int i = 0; i < 64; ++i) points.push_back(i);
  std::atomic<int> completed{0};
  EXPECT_THROW(runner.run(points,
                          [&completed](int p) {
                            if (p == 13) throw std::runtime_error("point 13 failed");
                            ++completed;
                            return p;
                          }),
               std::runtime_error);
  // The pool joined cleanly: every non-throwing point either ran or was
  // claimed; nothing deadlocks or leaks a thread (ASan/TSan-visible).
  EXPECT_LE(completed.load(), 63);
}

TEST(SweepRunner, InlineWhenSinglePointOrSingleJob) {
  SweepRunner runner({1, 5});
  EXPECT_EQ(runner.jobs(), 1);
  const std::vector<int> one{41};
  const auto out = runner.run(one, [](int p) { return p + 1; });
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 42);
}

TEST(MergedStats, MatchesSingleAccumulator) {
  RunningStats all;
  std::vector<RunningStats> parts(3);
  for (int i = 0; i < 300; ++i) {
    const double v = 0.25 * i - 17.0;
    all.add(v);
    parts[static_cast<std::size_t>(i % 3)].add(v);
  }
  const RunningStats merged = merged_stats(parts);
  EXPECT_EQ(merged.count(), all.count());
  EXPECT_NEAR(merged.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(merged.stddev(), all.stddev(), 1e-9);
  EXPECT_EQ(merged.min(), all.min());
  EXPECT_EQ(merged.max(), all.max());
}

// --- replica sweeps over the real simulator ---------------------------------

TaskExperimentParams small_experiment() {
  TaskExperimentParams params;
  params.tasks = 2;
  params.fanout = 4;
  params.duration = milliseconds(2);
  return params;
}

TEST(RunTaskReplicas, ByteIdenticalAcrossJobCounts) {
  auto digest = [](int jobs) {
    SweepOptions sweep;
    sweep.jobs = jobs;
    sweep.root_seed = 7;
    const ReplicaSweepResult r = run_task_replicas(
        Fabric::kQuartzInEdgeAndCore, {}, small_experiment(), 8, sweep);
    std::string out;
    for (const TaskExperimentResult& replica : r.replicas) {
      out += hex_bits(replica.mean_latency_us);
      out += hex_bits(replica.p99_latency_us);
      out += std::to_string(replica.packets_measured) + ",";
      out += std::to_string(replica.packets_dropped) + ";";
    }
    out += hex_bits(r.mean_latency_us.mean());
    out += hex_bits(r.p99_latency_us.mean());
    out += hex_bits(r.mean_latency_us.stddev());
    return out;
  };
  const std::string serial = digest(1);
  EXPECT_EQ(serial, digest(2));
  EXPECT_EQ(serial, digest(8));
}

TEST(RunTaskReplicas, ReplicasAreIndependentButDeterministic) {
  SweepOptions sweep;
  sweep.root_seed = 7;
  const ReplicaSweepResult r =
      run_task_replicas(Fabric::kThreeTierTree, {}, small_experiment(), 3, sweep);
  ASSERT_EQ(r.replicas.size(), 3u);
  EXPECT_EQ(r.mean_latency_us.count(), 3u);
  EXPECT_GT(r.packets_measured, 0u);
  // Distinct traffic seeds: replicas should not be bit-identical twins.
  EXPECT_NE(hex_bits(r.replicas[0].mean_latency_us), hex_bits(r.replicas[1].mean_latency_us));
  // Same root seed reproduces the same replicas.
  const ReplicaSweepResult again =
      run_task_replicas(Fabric::kThreeTierTree, {}, small_experiment(), 3, sweep);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(hex_bits(r.replicas[i].mean_latency_us),
              hex_bits(again.replicas[i].mean_latency_us));
  }
}

TEST(RunTaskReplicas, RejectsSharedMetricsRegistryWhenParallel) {
  telemetry::MetricRegistry metrics(true);
  TaskExperimentParams params = small_experiment();
  params.telemetry.metrics = &metrics;
  SweepOptions sweep;
  sweep.jobs = 4;
  EXPECT_THROW(run_task_replicas(Fabric::kThreeTierTree, {}, params, 2, sweep),
               std::invalid_argument);
  // Serial replica sweeps may keep the registry.
  sweep.jobs = 1;
  EXPECT_NO_THROW(run_task_replicas(Fabric::kThreeTierTree, {}, params, 2, sweep));
}

}  // namespace
}  // namespace quartz::sim
