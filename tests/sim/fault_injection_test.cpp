#include "sim/fault_injection.hpp"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "core/fault.hpp"
#include "routing/oracle.hpp"
#include "sim/network.hpp"
#include "sim/workloads.hpp"
#include "topo/builders.hpp"
#include "topo/failures.hpp"

namespace quartz::sim {
namespace {

topo::BuiltTopology eight_ring() {
  topo::QuartzRingParams p;
  p.switches = 8;
  p.hosts_per_switch = 2;
  return topo::quartz_ring(p);
}

/// First host hanging off a switch.
topo::NodeId host_of(const topo::BuiltTopology& topo, topo::NodeId sw) {
  for (const auto& adj : topo.graph.neighbors(sw)) {
    if (topo.graph.is_host(adj.peer)) return adj.peer;
  }
  return topo::kInvalidNode;
}

/// Direct mesh link between two switches.
topo::LinkId direct_link(const topo::BuiltTopology& topo, topo::NodeId a, topo::NodeId b) {
  for (const auto& adj : topo.graph.neighbors(a)) {
    if (adj.peer == b) return adj.link;
  }
  return topo::kInvalidLink;
}

TEST(FaultInjection, TransmitOntoDeadLinkIsDroppedAndCounted) {
  const auto t = eight_ring();
  routing::EcmpRouting routing(t.graph);
  routing::EcmpOracle oracle(routing);  // failure-oblivious: no view attached
  Network net(t, oracle);

  const topo::LinkId direct = direct_link(t, t.tors[0], t.tors[1]);
  ASSERT_NE(direct, topo::kInvalidLink);
  net.fail_link(direct);
  EXPECT_FALSE(net.link_up(direct));
  EXPECT_EQ(net.link_failures(), 1u);
  net.fail_link(direct);  // double fail is idempotent
  EXPECT_EQ(net.link_failures(), 1u);

  int hook_drops = 0;
  DropReason hook_reason = DropReason::kQueueOverflow;
  net.set_drop_hook([&](const Packet&, DropReason reason) {
    ++hook_drops;
    hook_reason = reason;
  });
  const int task = net.new_task({});
  net.send(host_of(t, t.tors[0]), host_of(t, t.tors[1]), bytes(400), task, 1);
  net.run_until(milliseconds(1));

  EXPECT_EQ(net.packets_delivered(), 0u);
  EXPECT_EQ(net.packets_dropped(), 1u);
  EXPECT_EQ(net.packets_dropped(DropReason::kLinkDown), 1u);
  EXPECT_EQ(net.packets_dropped(DropReason::kQueueOverflow), 0u);
  EXPECT_EQ(net.task_drops(task), 1u);
  EXPECT_EQ(hook_drops, 1);
  EXPECT_EQ(hook_reason, DropReason::kLinkDown);

  // After repair the same pair delivers again.
  net.repair_link(direct);
  EXPECT_TRUE(net.link_up(direct));
  EXPECT_EQ(net.link_repairs(), 1u);
  net.send(host_of(t, t.tors[0]), host_of(t, t.tors[1]), bytes(400), task, 1);
  net.run_until(milliseconds(2));
  EXPECT_EQ(net.packets_delivered(), 1u);
  EXPECT_EQ(net.packets_dropped(), 1u);
}

TEST(FaultInjection, InFlightPacketDropsWhenItsLinkFails) {
  // A long fiber span (100 us propagation): the packet is on the wire
  // when the cut lands, so it must be lost even though the transmit
  // started while the link was still up.
  topo::QuartzRingParams p;
  p.switches = 8;
  p.hosts_per_switch = 2;
  p.links.fabric_propagation = microseconds(100);
  const auto t = topo::quartz_ring(p);
  routing::EcmpRouting routing(t.graph);
  routing::EcmpOracle oracle(routing);
  Network net(t, oracle);
  const int task = net.new_task({});
  const topo::LinkId direct = direct_link(t, t.tors[0], t.tors[1]);
  net.send(host_of(t, t.tors[0]), host_of(t, t.tors[1]), bytes(400), task, 1);
  net.at(microseconds(10), [&net, direct] { net.fail_link(direct); });
  net.run_until(milliseconds(1));
  EXPECT_EQ(net.packets_delivered(), 0u);
  EXPECT_EQ(net.packets_dropped(DropReason::kLinkDown), 1u);
}

TEST(FaultInjection, FailureViewUpdatesAfterDetectionDelay) {
  const auto t = eight_ring();
  routing::EcmpRouting routing(t.graph);
  routing::EcmpOracle oracle(routing);
  SimConfig config;
  config.failure_detection_delay = microseconds(100);
  Network net(t, oracle, config);
  const topo::LinkId direct = direct_link(t, t.tors[0], t.tors[1]);

  net.fail_link(direct);
  EXPECT_FALSE(net.link_up(direct));                  // physically down now
  EXPECT_FALSE(net.failure_view().is_dead(direct));   // but not yet detected
  net.run_until(microseconds(50));
  EXPECT_FALSE(net.failure_view().is_dead(direct));
  net.run_until(microseconds(150));
  EXPECT_TRUE(net.failure_view().is_dead(direct));

  // Repair detection is symmetric.
  net.repair_link(direct);
  EXPECT_TRUE(net.link_up(direct));
  EXPECT_TRUE(net.failure_view().is_dead(direct));
  net.run_until(microseconds(300));
  EXPECT_FALSE(net.failure_view().is_dead(direct));
  EXPECT_EQ(net.failure_view().dead_count(), 0u);
}

TEST(FaultInjection, RapidFlapNeverAppliesStaleDetection) {
  // Fail then repair inside one detection window: the stale "mark dead"
  // event must not fire after the link already came back.
  const auto t = eight_ring();
  routing::EcmpRouting routing(t.graph);
  routing::EcmpOracle oracle(routing);
  SimConfig config;
  config.failure_detection_delay = microseconds(100);
  Network net(t, oracle, config);
  const topo::LinkId direct = direct_link(t, t.tors[0], t.tors[1]);
  net.at(0, [&] { net.fail_link(direct); });
  net.at(microseconds(50), [&] { net.repair_link(direct); });
  bool ever_dead = false;
  for (TimePs when = 0; when <= microseconds(400); when += microseconds(10)) {
    net.at(when, [&] { ever_dead = ever_dead || net.failure_view().is_dead(direct); });
  }
  net.run_until(microseconds(500));
  EXPECT_FALSE(ever_dead);
  EXPECT_EQ(net.failure_view().dead_count(), 0u);
}

TEST(FaultInjection, ScriptedCutShowsLossOnlyInsideDetectionWindow) {
  // The acceptance scenario: cut ring 0 segment 0 at t=1s, detection
  // delay 50ms, repair at t=3s.  An affected pair loses packets only
  // during the blackhole, rides a one-switch-longer detour until the
  // repair is detected, then returns to its direct lightpath.
  const auto t = eight_ring();
  routing::EcmpRouting routing(t.graph);
  routing::EcmpOracle oracle(routing);
  SimConfig config;
  config.failure_detection_delay = milliseconds(50);
  Network net(t, oracle, config);
  oracle.attach_failure_view(&net.failure_view());

  const auto severed = topo::severed_links(t, {{0, 0}});
  ASSERT_FALSE(severed.empty());
  const topo::Link& victim = t.graph.link(severed.front());
  const topo::NodeId src = host_of(t, victim.a);
  const topo::NodeId dst = host_of(t, victim.b);

  std::vector<std::pair<TimePs, int>> delivered;  // (delivery time, switch hops)
  std::vector<TimePs> dropped;
  const int task = net.new_task(
      [&](const Packet& p, TimePs) { delivered.emplace_back(net.now(), p.hops); });
  net.set_drop_hook([&](const Packet&, DropReason reason) {
    EXPECT_EQ(reason, DropReason::kLinkDown);
    dropped.push_back(net.now());
  });

  for (int i = 0; i < 4'000; ++i) {
    net.at(milliseconds(1) * i, [&net, src, dst, task] {
      net.send(src, dst, bytes(400), task, 99);  // one flow, stable hash
    });
  }
  FaultScheduler faults(net);
  faults.schedule_fiber_cut(seconds(1), {0, 0}, seconds(3));
  net.run_until(seconds(5));

  EXPECT_EQ(delivered.size() + dropped.size(), 4'000u);
  ASSERT_FALSE(dropped.empty());
  for (const TimePs when : dropped) {
    EXPECT_GE(when, seconds(1));
    EXPECT_LE(when, seconds(1) + milliseconds(51));
  }

  int baseline_hops = -1;
  for (const auto& [when, hops] : delivered) {
    if (when < seconds(1)) {
      if (baseline_hops < 0) baseline_hops = hops;
      EXPECT_EQ(hops, baseline_hops);            // healthy: direct lightpath
    } else if (when > seconds(1) + milliseconds(60) && when < seconds(3)) {
      EXPECT_EQ(hops, baseline_hops + 1);        // self-healed two-hop detour
    } else if (when > seconds(3) + milliseconds(60)) {
      EXPECT_EQ(hops, baseline_hops);            // repair detected: direct again
    }
  }
  EXPECT_EQ(baseline_hops, 2);  // ingress + egress switch
}

TEST(FaultInjection, RpcRetriesDeliverEverythingAcrossACutRepairCycle) {
  const auto t = eight_ring();
  routing::EcmpRouting routing(t.graph);
  routing::EcmpOracle oracle(routing);
  SimConfig config;
  config.failure_detection_delay = milliseconds(5);
  Network net(t, oracle, config);
  oracle.attach_failure_view(&net.failure_view());

  const auto severed = topo::severed_links(t, {{0, 0}});
  const topo::Link& victim = t.graph.link(severed.front());
  RpcParams rpc;
  rpc.calls = 200;
  rpc.service_time = microseconds(100);
  rpc.timeout = microseconds(300);
  rpc.max_retries = 20;
  rpc.backoff_base = microseconds(50);
  rpc.backoff_cap = milliseconds(2);
  RpcWorkload load(net, host_of(t, victim.a), host_of(t, victim.b), rpc, Rng(5));

  FaultScheduler faults(net);
  faults.schedule_cut(milliseconds(10), severed, milliseconds(100));
  net.run_until(seconds(1));

  // 100% eventual delivery: the blackhole only delays calls.
  EXPECT_TRUE(load.done());
  EXPECT_EQ(load.completed_calls(), rpc.calls);
  EXPECT_EQ(load.abandoned_calls(), 0);
  EXPECT_GT(load.total_retries(), 0u);
  ASSERT_FALSE(load.recovery_us().empty());
  // Recovery spans the detection window, so it is far above healthy RTT.
  EXPECT_GT(load.recovery_us().max(), to_microseconds(config.failure_detection_delay));
  EXPECT_GT(faults.cuts(), 0u);
  EXPECT_EQ(faults.cuts(), faults.repairs());
}

TEST(FaultInjection, PoissonChurnConservesPacketsAndConverges) {
  const auto t = eight_ring();
  routing::EcmpRouting routing(t.graph);
  routing::EcmpOracle oracle(routing);
  SimConfig config;
  config.failure_detection_delay = microseconds(500);
  Network net(t, oracle, config);
  oracle.attach_failure_view(&net.failure_view());

  const int task = net.new_task({});
  Rng rng(17);
  for (int i = 0; i < 20'000; ++i) {
    net.at(microseconds(10) * i, [&net, &t, &rng, task] {
      const auto src = t.hosts[rng.next_below(t.hosts.size())];
      auto dst = t.hosts[rng.next_below(t.hosts.size())];
      while (dst == src) dst = t.hosts[rng.next_below(t.hosts.size())];
      net.send(src, dst, bytes(400), task, rng.next_u64());
    });
  }

  FaultScheduler faults(net);
  PoissonFaultParams churn;
  churn.failures_per_link_per_hour = 3.6e5;  // mean TTF 10 ms per link
  churn.mean_repair_hours = 1e-6;            // mean TTR 3.6 ms
  churn.stop = milliseconds(200);
  faults.run_poisson(churn, {}, Rng(23));
  net.run_until(seconds(2));

  EXPECT_GT(faults.cuts(), 0u);
  EXPECT_GT(faults.repairs(), 0u);
  EXPECT_EQ(net.link_failures(), faults.cuts());
  EXPECT_EQ(net.packets_sent(), 20'000u);
  EXPECT_EQ(net.packets_delivered() + net.packets_dropped(), net.packets_sent());
  EXPECT_GT(net.packets_delivered(), 0u);
}

TEST(PoissonFaultParams, FromAvailabilityMatchesSteadyStateModel) {
  core::AvailabilityParams availability;  // 0.5 cuts/km/year over 0.1 km spans
  const auto p = PoissonFaultParams::from_availability(availability, 0, seconds(2));
  EXPECT_NEAR(p.failures_per_link_per_hour,
              availability.cuts_per_km_per_year * availability.span_km / 8766.0, 1e-12);
  EXPECT_DOUBLE_EQ(p.mean_repair_hours, availability.mttr_hours);
  EXPECT_EQ(p.start, 0);
  EXPECT_EQ(p.stop, seconds(2));
}

TEST(FaultScheduler, RejectsBadTimelines) {
  const auto t = eight_ring();
  routing::EcmpRouting routing(t.graph);
  routing::EcmpOracle oracle(routing);
  Network net(t, oracle);
  FaultScheduler faults(net);
  EXPECT_THROW(faults.schedule_cut(seconds(1), {}), std::invalid_argument);
  EXPECT_THROW(faults.schedule_cut(seconds(1), {0}, seconds(1)), std::invalid_argument);
  PoissonFaultParams churn;
  churn.failures_per_link_per_hour = 0.0;
  EXPECT_THROW(faults.run_poisson(churn, {}, Rng(1)), std::invalid_argument);
}

}  // namespace
}  // namespace quartz::sim
