#include "sim/fault_injection.hpp"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "core/fault.hpp"
#include "routing/oracle.hpp"
#include "sim/network.hpp"
#include "sim/workloads.hpp"
#include "topo/builders.hpp"
#include "topo/failures.hpp"

namespace quartz::sim {
namespace {

topo::BuiltTopology eight_ring() {
  topo::QuartzRingParams p;
  p.switches = 8;
  p.hosts_per_switch = 2;
  return topo::quartz_ring(p);
}

/// First host hanging off a switch.
topo::NodeId host_of(const topo::BuiltTopology& topo, topo::NodeId sw) {
  for (const auto& adj : topo.graph.neighbors(sw)) {
    if (topo.graph.is_host(adj.peer)) return adj.peer;
  }
  return topo::kInvalidNode;
}

/// Direct mesh link between two switches.
topo::LinkId direct_link(const topo::BuiltTopology& topo, topo::NodeId a, topo::NodeId b) {
  for (const auto& adj : topo.graph.neighbors(a)) {
    if (adj.peer == b) return adj.link;
  }
  return topo::kInvalidLink;
}

TEST(FaultInjection, TransmitOntoDeadLinkIsDroppedAndCounted) {
  const auto t = eight_ring();
  routing::EcmpRouting routing(t.graph);
  routing::EcmpOracle oracle(routing);  // failure-oblivious: no view attached
  Network net(t, oracle);

  const topo::LinkId direct = direct_link(t, t.tors[0], t.tors[1]);
  ASSERT_NE(direct, topo::kInvalidLink);
  net.fail_link(direct);
  EXPECT_FALSE(net.link_up(direct));
  EXPECT_EQ(net.link_failures(), 1u);
  net.fail_link(direct);  // double fail is idempotent
  EXPECT_EQ(net.link_failures(), 1u);

  int hook_drops = 0;
  DropReason hook_reason = DropReason::kQueueOverflow;
  net.add_drop_hook([&](const Packet&, DropReason reason) {
    ++hook_drops;
    hook_reason = reason;
  });
  const int task = net.new_task({});
  net.send(host_of(t, t.tors[0]), host_of(t, t.tors[1]), bytes(400), task, 1);
  net.run_until(milliseconds(1));

  EXPECT_EQ(net.packets_delivered(), 0u);
  EXPECT_EQ(net.packets_dropped(), 1u);
  EXPECT_EQ(net.packets_dropped(DropReason::kLinkDown), 1u);
  EXPECT_EQ(net.packets_dropped(DropReason::kQueueOverflow), 0u);
  EXPECT_EQ(net.task_drops(task), 1u);
  EXPECT_EQ(hook_drops, 1);
  EXPECT_EQ(hook_reason, DropReason::kLinkDown);

  // After repair the same pair delivers again.
  net.repair_link(direct);
  EXPECT_TRUE(net.link_up(direct));
  EXPECT_EQ(net.link_repairs(), 1u);
  net.send(host_of(t, t.tors[0]), host_of(t, t.tors[1]), bytes(400), task, 1);
  net.run_until(milliseconds(2));
  EXPECT_EQ(net.packets_delivered(), 1u);
  EXPECT_EQ(net.packets_dropped(), 1u);
}

TEST(FaultInjection, InFlightPacketDropsWhenItsLinkFails) {
  // A long fiber span (100 us propagation): the packet is on the wire
  // when the cut lands, so it must be lost even though the transmit
  // started while the link was still up.
  topo::QuartzRingParams p;
  p.switches = 8;
  p.hosts_per_switch = 2;
  p.links.fabric_propagation = microseconds(100);
  const auto t = topo::quartz_ring(p);
  routing::EcmpRouting routing(t.graph);
  routing::EcmpOracle oracle(routing);
  Network net(t, oracle);
  const int task = net.new_task({});
  const topo::LinkId direct = direct_link(t, t.tors[0], t.tors[1]);
  net.send(host_of(t, t.tors[0]), host_of(t, t.tors[1]), bytes(400), task, 1);
  net.at(microseconds(10), [&net, direct] { net.fail_link(direct); });
  net.run_until(milliseconds(1));
  EXPECT_EQ(net.packets_delivered(), 0u);
  EXPECT_EQ(net.packets_dropped(DropReason::kLinkDown), 1u);
}

TEST(FaultInjection, FailureViewUpdatesAfterDetectionDelay) {
  const auto t = eight_ring();
  routing::EcmpRouting routing(t.graph);
  routing::EcmpOracle oracle(routing);
  SimConfig config;
  config.failure_detection_delay = microseconds(100);
  Network net(t, oracle, config);
  const topo::LinkId direct = direct_link(t, t.tors[0], t.tors[1]);

  net.fail_link(direct);
  EXPECT_FALSE(net.link_up(direct));                  // physically down now
  EXPECT_FALSE(net.failure_view().is_dead(direct));   // but not yet detected
  net.run_until(microseconds(50));
  EXPECT_FALSE(net.failure_view().is_dead(direct));
  net.run_until(microseconds(150));
  EXPECT_TRUE(net.failure_view().is_dead(direct));

  // Repair detection is symmetric.
  net.repair_link(direct);
  EXPECT_TRUE(net.link_up(direct));
  EXPECT_TRUE(net.failure_view().is_dead(direct));
  net.run_until(microseconds(300));
  EXPECT_FALSE(net.failure_view().is_dead(direct));
  EXPECT_EQ(net.failure_view().dead_count(), 0u);
}

TEST(FaultInjection, RapidFlapNeverAppliesStaleDetection) {
  // Fail then repair inside one detection window: the stale "mark dead"
  // event must not fire after the link already came back.
  const auto t = eight_ring();
  routing::EcmpRouting routing(t.graph);
  routing::EcmpOracle oracle(routing);
  SimConfig config;
  config.failure_detection_delay = microseconds(100);
  Network net(t, oracle, config);
  const topo::LinkId direct = direct_link(t, t.tors[0], t.tors[1]);
  net.at(0, [&] { net.fail_link(direct); });
  net.at(microseconds(50), [&] { net.repair_link(direct); });
  bool ever_dead = false;
  for (TimePs when = 0; when <= microseconds(400); when += microseconds(10)) {
    net.at(when, [&] { ever_dead = ever_dead || net.failure_view().is_dead(direct); });
  }
  net.run_until(microseconds(500));
  EXPECT_FALSE(ever_dead);
  EXPECT_EQ(net.failure_view().dead_count(), 0u);
}

TEST(FaultInjection, ScriptedCutShowsLossOnlyInsideDetectionWindow) {
  // The acceptance scenario: cut ring 0 segment 0 at t=1s, detection
  // delay 50ms, repair at t=3s.  An affected pair loses packets only
  // during the blackhole, rides a one-switch-longer detour until the
  // repair is detected, then returns to its direct lightpath.
  const auto t = eight_ring();
  routing::EcmpRouting routing(t.graph);
  routing::EcmpOracle oracle(routing);
  SimConfig config;
  config.failure_detection_delay = milliseconds(50);
  Network net(t, oracle, config);
  oracle.attach_failure_view(&net.failure_view());

  const auto severed = topo::severed_links(t, {{0, 0}});
  ASSERT_FALSE(severed.empty());
  const topo::Link& victim = t.graph.link(severed.front());
  const topo::NodeId src = host_of(t, victim.a);
  const topo::NodeId dst = host_of(t, victim.b);

  std::vector<std::pair<TimePs, int>> delivered;  // (delivery time, switch hops)
  std::vector<TimePs> dropped;
  const int task = net.new_task(
      [&](const Packet& p, TimePs) { delivered.emplace_back(net.now(), p.hops); });
  net.add_drop_hook([&](const Packet&, DropReason reason) {
    EXPECT_EQ(reason, DropReason::kLinkDown);
    dropped.push_back(net.now());
  });

  for (int i = 0; i < 4'000; ++i) {
    net.at(milliseconds(1) * i, [&net, src, dst, task] {
      net.send(src, dst, bytes(400), task, 99);  // one flow, stable hash
    });
  }
  FaultScheduler faults(net);
  faults.schedule_fiber_cut(seconds(1), {0, 0}, seconds(3));
  net.run_until(seconds(5));

  EXPECT_EQ(delivered.size() + dropped.size(), 4'000u);
  ASSERT_FALSE(dropped.empty());
  for (const TimePs when : dropped) {
    EXPECT_GE(when, seconds(1));
    EXPECT_LE(when, seconds(1) + milliseconds(51));
  }

  int baseline_hops = -1;
  for (const auto& [when, hops] : delivered) {
    if (when < seconds(1)) {
      if (baseline_hops < 0) baseline_hops = hops;
      EXPECT_EQ(hops, baseline_hops);            // healthy: direct lightpath
    } else if (when > seconds(1) + milliseconds(60) && when < seconds(3)) {
      EXPECT_EQ(hops, baseline_hops + 1);        // self-healed two-hop detour
    } else if (when > seconds(3) + milliseconds(60)) {
      EXPECT_EQ(hops, baseline_hops);            // repair detected: direct again
    }
  }
  EXPECT_EQ(baseline_hops, 2);  // ingress + egress switch
}

TEST(FaultInjection, RpcRetriesDeliverEverythingAcrossACutRepairCycle) {
  const auto t = eight_ring();
  routing::EcmpRouting routing(t.graph);
  routing::EcmpOracle oracle(routing);
  SimConfig config;
  config.failure_detection_delay = milliseconds(5);
  Network net(t, oracle, config);
  oracle.attach_failure_view(&net.failure_view());

  const auto severed = topo::severed_links(t, {{0, 0}});
  const topo::Link& victim = t.graph.link(severed.front());
  RpcParams rpc;
  rpc.calls = 200;
  rpc.service_time = microseconds(100);
  rpc.timeout = microseconds(300);
  rpc.max_retries = 20;
  rpc.backoff_base = microseconds(50);
  rpc.backoff_cap = milliseconds(2);
  RpcWorkload load(net, host_of(t, victim.a), host_of(t, victim.b), rpc, Rng(5));

  FaultScheduler faults(net);
  faults.schedule_cut(milliseconds(10), severed, milliseconds(100));
  net.run_until(seconds(1));

  // 100% eventual delivery: the blackhole only delays calls.
  EXPECT_TRUE(load.done());
  EXPECT_EQ(load.completed_calls(), rpc.calls);
  EXPECT_EQ(load.abandoned_calls(), 0);
  EXPECT_GT(load.total_retries(), 0u);
  ASSERT_FALSE(load.recovery_us().empty());
  // Recovery spans the detection window, so it is far above healthy RTT.
  EXPECT_GT(load.recovery_us().max(), to_microseconds(config.failure_detection_delay));
  EXPECT_GT(faults.cuts(), 0u);
  EXPECT_EQ(faults.cuts(), faults.repairs());
}

TEST(FaultInjection, PoissonChurnConservesPacketsAndConverges) {
  const auto t = eight_ring();
  routing::EcmpRouting routing(t.graph);
  routing::EcmpOracle oracle(routing);
  SimConfig config;
  config.failure_detection_delay = microseconds(500);
  Network net(t, oracle, config);
  oracle.attach_failure_view(&net.failure_view());

  const int task = net.new_task({});
  Rng rng(17);
  for (int i = 0; i < 20'000; ++i) {
    net.at(microseconds(10) * i, [&net, &t, &rng, task] {
      const auto src = t.hosts[rng.next_below(t.hosts.size())];
      auto dst = t.hosts[rng.next_below(t.hosts.size())];
      while (dst == src) dst = t.hosts[rng.next_below(t.hosts.size())];
      net.send(src, dst, bytes(400), task, rng.next_u64());
    });
  }

  FaultScheduler faults(net);
  PoissonFaultParams churn;
  churn.failures_per_link_per_hour = 3.6e5;  // mean TTF 10 ms per link
  churn.mean_repair_hours = 1e-6;            // mean TTR 3.6 ms
  churn.stop = milliseconds(200);
  faults.run_poisson(churn, {}, Rng(23));
  net.run_until(seconds(2));

  EXPECT_GT(faults.cuts(), 0u);
  EXPECT_GT(faults.repairs(), 0u);
  EXPECT_EQ(net.link_failures(), faults.cuts());
  EXPECT_EQ(net.packets_sent(), 20'000u);
  EXPECT_EQ(net.packets_delivered() + net.packets_dropped(), net.packets_sent());
  EXPECT_GT(net.packets_delivered(), 0u);
}

TEST(PoissonFaultParams, FromAvailabilityMatchesSteadyStateModel) {
  core::AvailabilityParams availability;  // 0.5 cuts/km/year over 0.1 km spans
  const auto p = PoissonFaultParams::from_availability(availability, 0, seconds(2));
  EXPECT_NEAR(p.failures_per_link_per_hour,
              availability.cuts_per_km_per_year * availability.span_km / 8766.0, 1e-12);
  EXPECT_DOUBLE_EQ(p.mean_repair_hours, availability.mttr_hours);
  EXPECT_EQ(p.start, 0);
  EXPECT_EQ(p.stop, seconds(2));
}

TEST(FaultScheduler, OverlappingCutWindowsDoNotResurrectTheLink) {
  // Regression: two scripted cut windows overlap on one link.  The
  // first window's repair used to bring the link back up while the
  // second window still held it down; the down-state is now
  // reference-counted, so only the LAST overlapping repair revives it.
  const auto t = eight_ring();
  routing::EcmpRouting routing(t.graph);
  routing::EcmpOracle oracle(routing);
  Network net(t, oracle);
  FaultScheduler faults(net);
  const topo::LinkId direct = direct_link(t, t.tors[0], t.tors[1]);

  faults.schedule_cut(milliseconds(10), {direct}, milliseconds(100));
  faults.schedule_cut(milliseconds(50), {direct}, milliseconds(150));

  std::vector<std::pair<TimePs, bool>> observed;
  for (const TimePs when :
       {milliseconds(20), milliseconds(60), milliseconds(120), milliseconds(160)}) {
    net.at(when, [&net, &observed, direct] { observed.emplace_back(net.now(), net.link_up(direct)); });
  }
  net.run_until(milliseconds(200));

  ASSERT_EQ(observed.size(), 4u);
  EXPECT_FALSE(observed[0].second);  // first window active
  EXPECT_FALSE(observed[1].second);  // both windows active
  EXPECT_FALSE(observed[2].second);  // first repaired, second still holds it down
  EXPECT_TRUE(observed[3].second);   // last repair revives it
  // The scheduler counted both windows, the network flipped state once.
  EXPECT_EQ(faults.cuts(), 2u);
  EXPECT_EQ(faults.repairs(), 2u);
  EXPECT_EQ(net.link_failures(), 1u);
  EXPECT_EQ(net.link_repairs(), 1u);
}

TEST(FaultScheduler, NeverRepairedCutKeepsTrafficOnDetours) {
  const auto t = eight_ring();
  routing::EcmpRouting routing(t.graph);
  routing::EcmpOracle oracle(routing);
  SimConfig config;
  config.failure_detection_delay = milliseconds(1);
  Network net(t, oracle, config);
  oracle.attach_failure_view(&net.failure_view());

  const auto severed = topo::severed_links(t, {{0, 0}});
  const topo::Link& victim = t.graph.link(severed.front());
  const topo::NodeId src = host_of(t, victim.a);
  const topo::NodeId dst = host_of(t, victim.b);

  std::vector<std::pair<TimePs, int>> delivered;
  const int task = net.new_task(
      [&](const Packet& p, TimePs) { delivered.emplace_back(net.now(), p.hops); });
  for (int i = 0; i < 200; ++i) {
    net.at(milliseconds(1) * i, [&net, src, dst, task] {
      net.send(src, dst, bytes(400), task, 99);
    });
  }
  FaultScheduler faults(net);
  faults.schedule_cut(milliseconds(10), severed);  // repair_at omitted: never
  net.run_until(milliseconds(300));

  // The dead set stays elevated forever and routing never returns to
  // the direct lightpath.
  EXPECT_TRUE(net.failure_view().is_dead(severed.front()));
  EXPECT_EQ(net.failure_view().dead_count(), severed.size());
  EXPECT_EQ(faults.cuts(), severed.size());
  EXPECT_EQ(faults.repairs(), 0u);
  ASSERT_FALSE(delivered.empty());
  int baseline_hops = -1;
  for (const auto& [when, hops] : delivered) {
    if (when < milliseconds(10)) {
      if (baseline_hops < 0) baseline_hops = hops;
      EXPECT_EQ(hops, baseline_hops);
    } else if (when > milliseconds(12)) {
      EXPECT_EQ(hops, baseline_hops + 1);  // detour, until the end of time
    }
  }
  EXPECT_EQ(baseline_hops, 2);
}

TEST(FaultScheduler, TransceiverAgingCorruptsPacketsOnlyWhileActive) {
  const auto t = eight_ring();
  routing::EcmpRouting routing(t.graph);
  routing::EcmpOracle oracle(routing);
  Network net(t, oracle);  // no failure view: traffic stays on the gray link
  FaultScheduler faults(net);
  const topo::LinkId direct = direct_link(t, t.tors[0], t.tors[1]);
  const topo::NodeId src = host_of(t, t.tors[0]);
  const topo::NodeId dst = host_of(t, t.tors[1]);

  const int task = net.new_task({});
  for (int i = 0; i < 3'000; ++i) {
    net.at(microseconds(10) * i, [&net, src, dst, task] {
      net.send(src, dst, bytes(400), task, 99);
    });
  }
  faults.schedule_transceiver_aging(milliseconds(5), direct, 0.5, milliseconds(20));
  std::uint64_t corrupted_at_restore = 0;
  net.at(milliseconds(20), [&] {
    corrupted_at_restore = net.packets_dropped(DropReason::kCorrupted);
    EXPECT_DOUBLE_EQ(net.link_loss_rate(direct), 0.0);  // restored
  });
  net.run_until(milliseconds(40));

  // Roughly half the ~1500 packets inside the gray window were eaten…
  const std::uint64_t corrupted = net.packets_dropped(DropReason::kCorrupted);
  EXPECT_GT(corrupted, 500u);
  EXPECT_LT(corrupted, 1'000u);
  // …and none outside it.
  EXPECT_EQ(corrupted, corrupted_at_restore);
  // The link never went down: gray failures are invisible to the
  // binary liveness machinery but exact in the per-reason accounting.
  EXPECT_TRUE(net.link_up(direct));
  EXPECT_EQ(net.link_failures(), 0u);
  EXPECT_EQ(net.packets_dropped(DropReason::kLinkDown), 0u);
  EXPECT_EQ(net.packets_delivered() + corrupted, 3'000u);
  EXPECT_EQ(net.task_drops(task), corrupted);
  EXPECT_EQ(faults.degradations(), 1u);
  EXPECT_EQ(faults.restorations(), 1u);
}

TEST(FaultScheduler, StackedDegradationsCombineAndUnwindIndependently) {
  const auto t = eight_ring();
  routing::EcmpRouting routing(t.graph);
  routing::EcmpOracle oracle(routing);
  Network net(t, oracle);
  FaultScheduler faults(net);
  const topo::LinkId direct = direct_link(t, t.tors[0], t.tors[1]);

  // Amplifier (0.5) and transceiver (0.2) overlap on the same link:
  // combined drop probability is 1 - (1-0.5)(1-0.2) = 0.6.
  faults.schedule_transceiver_aging(milliseconds(1), direct, 0.5, milliseconds(30));
  faults.schedule_transceiver_aging(milliseconds(10), direct, 0.2, milliseconds(20));
  std::vector<double> loss;
  for (const TimePs when : {milliseconds(5), milliseconds(15), milliseconds(25), milliseconds(35)}) {
    net.at(when, [&net, &loss, direct] { loss.push_back(net.link_loss_rate(direct)); });
  }
  net.run_until(milliseconds(40));

  ASSERT_EQ(loss.size(), 4u);
  EXPECT_DOUBLE_EQ(loss[0], 0.5);
  EXPECT_DOUBLE_EQ(loss[1], 0.6);
  EXPECT_DOUBLE_EQ(loss[2], 0.5);  // inner window lifted, outer remains
  EXPECT_DOUBLE_EQ(loss[3], 0.0);
  EXPECT_EQ(faults.degradations(), 2u);
  EXPECT_EQ(faults.restorations(), 2u);
  EXPECT_EQ(net.link_health(direct), routing::LinkHealth::kHealthy);
}

TEST(FaultScheduler, RejectsBadComponentFaultInputs) {
  const auto t = eight_ring();
  routing::EcmpRouting routing(t.graph);
  routing::EcmpOracle oracle(routing);
  Network net(t, oracle);
  FaultScheduler faults(net);
  const topo::LinkId direct = direct_link(t, t.tors[0], t.tors[1]);

  EXPECT_THROW(faults.schedule_cut(-1, {direct}), std::invalid_argument);
  EXPECT_THROW(faults.schedule_cut(0, {topo::LinkId(999'999)}), std::invalid_argument);
  EXPECT_THROW(faults.schedule_transceiver_aging(0, direct, 0.0), std::invalid_argument);
  EXPECT_THROW(faults.schedule_transceiver_aging(0, direct, 1.5), std::invalid_argument);
  EXPECT_THROW(faults.schedule_transceiver_aging(seconds(1), direct, 0.5, seconds(1)),
               std::invalid_argument);
  EXPECT_THROW(faults.schedule_flapping(0, direct, 0, microseconds(1), 3), std::invalid_argument);
  EXPECT_THROW(faults.schedule_flapping(0, direct, microseconds(1), microseconds(1), 0),
               std::invalid_argument);
  EXPECT_THROW(net.set_link_loss(direct, -0.1), std::invalid_argument);
  EXPECT_THROW(net.set_link_loss(direct, 1.1), std::invalid_argument);
}

TEST(PoissonFaultParams, FromAvailabilityRejectsDegenerateInputs) {
  core::AvailabilityParams availability;
  availability.cuts_per_km_per_year = 0.0;
  EXPECT_THROW(PoissonFaultParams::from_availability(availability, 0, seconds(1)),
               std::invalid_argument);
  availability = {};
  availability.span_km = -1.0;
  EXPECT_THROW(PoissonFaultParams::from_availability(availability, 0, seconds(1)),
               std::invalid_argument);
  availability = {};
  availability.mttr_hours = 0.0;
  EXPECT_THROW(PoissonFaultParams::from_availability(availability, 0, seconds(1)),
               std::invalid_argument);
  availability = {};
  EXPECT_THROW(PoissonFaultParams::from_availability(availability, seconds(1), seconds(1)),
               std::invalid_argument);
}

TEST(FaultScheduler, RejectsBadTimelines) {
  const auto t = eight_ring();
  routing::EcmpRouting routing(t.graph);
  routing::EcmpOracle oracle(routing);
  Network net(t, oracle);
  FaultScheduler faults(net);
  EXPECT_THROW(faults.schedule_cut(seconds(1), {}), std::invalid_argument);
  EXPECT_THROW(faults.schedule_cut(seconds(1), {0}, seconds(1)), std::invalid_argument);
  PoissonFaultParams churn;
  churn.failures_per_link_per_hour = 0.0;
  EXPECT_THROW(faults.run_poisson(churn, {}, Rng(1)), std::invalid_argument);
}

}  // namespace
}  // namespace quartz::sim
