// Integration tests: the experiment harnesses must reproduce the
// paper's qualitative results (shapes, orderings, crossovers) at small
// scale.  These are the paper's headline claims encoded as assertions.
#include "sim/experiments.hpp"

#include "sim/workloads.hpp"

#include <gtest/gtest.h>

namespace quartz::sim {
namespace {

TEST(BuildFabric, AllFabricsConstructAndValidate) {
  for (Fabric fabric :
       {Fabric::kThreeTierTree, Fabric::kJellyfish, Fabric::kQuartzInCore,
        Fabric::kQuartzInEdge, Fabric::kQuartzInEdgeAndCore, Fabric::kQuartzInJellyfish}) {
    const BuiltFabric built = build_fabric(fabric);
    EXPECT_NO_THROW(built.topo.graph.validate()) << fabric_name(fabric);
    EXPECT_EQ(built.topo.hosts.size(), 64u) << fabric_name(fabric);
  }
}

TEST(BuildFabric, VlbRequestedWhereMeaningful) {
  FabricConfig config;
  config.vlb_fraction = 0.5;
  const BuiltFabric quartz = build_fabric(Fabric::kQuartzInEdge, config);
  EXPECT_NE(dynamic_cast<routing::VlbOracle*>(quartz.oracle.get()), nullptr);
  const BuiltFabric tree = build_fabric(Fabric::kThreeTierTree, config);
  EXPECT_NE(dynamic_cast<routing::EcmpOracle*>(tree.oracle.get()), nullptr);
}

TEST(Fig17, TreeIsSlowestAndQuartzEdgeCoreHalvesIt) {
  TaskExperimentParams params;
  params.pattern = Pattern::kScatter;
  params.tasks = 4;
  params.duration = milliseconds(5);
  const FabricConfig config;

  const double tree =
      run_task_experiment(Fabric::kThreeTierTree, config, params).mean_latency_us;
  const double edge_core =
      run_task_experiment(Fabric::kQuartzInEdgeAndCore, config, params).mean_latency_us;
  const double core = run_task_experiment(Fabric::kQuartzInCore, config, params).mean_latency_us;

  EXPECT_GT(tree, edge_core);
  EXPECT_GT(tree, core);
  // §9: "using Quartz in both the core and edge can reduce latency by
  // 50% in typical scenarios."
  EXPECT_LT(edge_core, 0.6 * tree);
  // §7.1: "more than a three microsecond reduction in latency by
  // replacing the core switches ... with Quartz rings."
  EXPECT_GT(tree - core, 2.0);
}

TEST(Fig17, GatherShowsSameOrdering) {
  TaskExperimentParams params;
  params.pattern = Pattern::kGather;
  params.tasks = 4;
  params.duration = milliseconds(5);
  const FabricConfig config;
  const double tree =
      run_task_experiment(Fabric::kThreeTierTree, config, params).mean_latency_us;
  const double edge_core =
      run_task_experiment(Fabric::kQuartzInEdgeAndCore, config, params).mean_latency_us;
  EXPECT_GT(tree, edge_core);
}

TEST(Fig18, LocalizedTaskFavorsQuartzOverJellyfish) {
  TaskExperimentParams params;
  params.pattern = Pattern::kScatter;
  params.tasks = 3;
  params.localized = true;
  params.duration = milliseconds(5);
  const FabricConfig config;

  const double jellyfish =
      run_task_experiment(Fabric::kJellyfish, config, params).mean_latency_us;
  const double quartz_jf =
      run_task_experiment(Fabric::kQuartzInJellyfish, config, params).mean_latency_us;
  const double edge_core =
      run_task_experiment(Fabric::kQuartzInEdgeAndCore, config, params).mean_latency_us;

  // §7.1: Jellyfish cannot exploit locality; Quartz variants keep the
  // local task inside one ring.
  EXPECT_GT(jellyfish, quartz_jf);
  EXPECT_GT(jellyfish, edge_core);
}

TEST(Fig14, TreeDegradesQuartzDoesNot) {
  CrossTrafficParams quiet;
  quiet.cross_mbps = 0;
  quiet.rpc_calls = 300;
  CrossTrafficParams loud;
  loud.cross_mbps = 200;
  loud.rpc_calls = 300;

  const double tree_quiet =
      run_cross_traffic(PrototypeFabric::kTwoTierTree, quiet).mean_rtt_us;
  const double tree_loud = run_cross_traffic(PrototypeFabric::kTwoTierTree, loud).mean_rtt_us;
  const double quartz_quiet = run_cross_traffic(PrototypeFabric::kQuartz, quiet).mean_rtt_us;
  const double quartz_loud = run_cross_traffic(PrototypeFabric::kQuartz, loud).mean_rtt_us;

  // §6.1: tree RPC latency rises sharply with cross-traffic; Quartz is
  // unaffected.
  EXPECT_GT(tree_loud, tree_quiet * 1.15);
  EXPECT_NEAR(quartz_loud, quartz_quiet, quartz_quiet * 0.02);
  // Quartz also has the lower baseline (one fewer switch hop).
  EXPECT_LT(quartz_quiet, tree_quiet);
}

TEST(Fig20, NonBlockingFlatEcmpSaturatesVlbSurvives) {
  PathologicalParams params;
  params.duration = milliseconds(2);

  params.aggregate_gbps = 20;
  const auto nb20 = run_pathological(CoreKind::kNonBlockingSwitch, params);
  const auto ecmp20 = run_pathological(CoreKind::kQuartzEcmp, params);
  const auto vlb20 = run_pathological(CoreKind::kQuartzVlb, params);

  // Below saturation: both Quartz variants beat the 6us store-and-
  // forward core by a wide margin.
  EXPECT_GT(nb20.mean_latency_us, 5.5);
  EXPECT_LT(ecmp20.mean_latency_us, 2.5);
  EXPECT_LT(vlb20.mean_latency_us, 3.0);
  EXPECT_FALSE(ecmp20.saturated);

  params.aggregate_gbps = 50;
  const auto nb50 = run_pathological(CoreKind::kNonBlockingSwitch, params);
  const auto ecmp50 = run_pathological(CoreKind::kQuartzEcmp, params);
  const auto vlb50 = run_pathological(CoreKind::kQuartzVlb, params);

  // Past the 40 Gb/s direct lightpath: ECMP latency becomes unbounded
  // (Fig. 20's 125us arrow); VLB and the non-blocking switch stay flat.
  EXPECT_GT(ecmp50.mean_latency_us, 50.0);
  EXPECT_LT(vlb50.mean_latency_us, 3.5);
  EXPECT_NEAR(nb50.mean_latency_us, nb20.mean_latency_us, 0.5);
}

TEST(Fig20, VlbCostsSlightlyMoreThanEcmpWhenIdle) {
  PathologicalParams params;
  params.aggregate_gbps = 10;
  params.duration = milliseconds(2);
  const auto ecmp = run_pathological(CoreKind::kQuartzEcmp, params);
  const auto vlb = run_pathological(CoreKind::kQuartzVlb, params);
  // The detour adds one cut-through hop for the detoured fraction.
  EXPECT_GT(vlb.mean_latency_us, ecmp.mean_latency_us);
  EXPECT_LT(vlb.mean_latency_us, ecmp.mean_latency_us + 1.5);
}

TEST(Fig20, AdaptiveVlbDominatesFixedPolicies) {
  // Our §3.4 extension: adaptive detouring must match ECMP when the
  // direct lightpath is healthy and match VLB's flatness when it is
  // saturated.
  PathologicalParams params;
  params.duration = milliseconds(2);

  params.aggregate_gbps = 15;
  const auto ecmp_cold = run_pathological(CoreKind::kQuartzEcmp, params);
  const auto adaptive_cold = run_pathological(CoreKind::kQuartzAdaptive, params);
  EXPECT_NEAR(adaptive_cold.mean_latency_us, ecmp_cold.mean_latency_us, 0.05);

  params.aggregate_gbps = 50;
  const auto adaptive_hot = run_pathological(CoreKind::kQuartzAdaptive, params);
  EXPECT_LT(adaptive_hot.mean_latency_us, 4.0);
  EXPECT_EQ(adaptive_hot.packets_dropped, 0u);
}

TEST(Fig20, AdaptiveThresholdControlsSensitivity) {
  PathologicalParams params;
  params.duration = milliseconds(2);
  params.aggregate_gbps = 44;
  params.adaptive_threshold = microseconds(1);
  const auto eager = run_pathological(CoreKind::kQuartzAdaptive, params);
  params.adaptive_threshold = milliseconds(1);  // effectively never detour
  const auto lazy = run_pathological(CoreKind::kQuartzAdaptive, params);
  // A detour bar the queue never reaches degenerates to ECMP, which is
  // past saturation here.
  EXPECT_LT(eager.mean_latency_us, lazy.mean_latency_us / 3);
}

class ConservationSweep : public ::testing::TestWithParam<std::tuple<Fabric, std::uint64_t>> {};

TEST_P(ConservationSweep, EveryPacketDeliveredOrDropped) {
  // Conservation invariant: across fabrics and seeds, sent packets are
  // fully accounted for once the network drains.
  const auto [fabric, seed] = GetParam();
  FabricConfig config;
  config.seed = seed;
  BuiltFabric built = build_fabric(fabric, config);
  Network network(built.topo, *built.oracle);
  Rng rng(seed * 31 + 7);
  std::vector<std::unique_ptr<PoissonFlow>> flows;
  FlowParams flow;
  flow.rate = megabits_per_second(300);
  flow.stop = milliseconds(3);
  for (int i = 0; i < 16; ++i) {
    const auto src = built.topo.hosts[rng.next_below(built.topo.hosts.size())];
    auto dst = built.topo.hosts[rng.next_below(built.topo.hosts.size())];
    while (dst == src) dst = built.topo.hosts[rng.next_below(built.topo.hosts.size())];
    flows.push_back(std::make_unique<PoissonFlow>(network, src, dst, network.new_task({}),
                                                  flow, rng.fork()));
  }
  network.run_until(milliseconds(20));
  EXPECT_EQ(network.packets_delivered() + network.packets_dropped(), network.packets_sent())
      << fabric_name(fabric) << " seed " << seed;
  EXPECT_GT(network.packets_sent(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    FabricsAndSeeds, ConservationSweep,
    ::testing::Combine(::testing::Values(Fabric::kThreeTierTree, Fabric::kJellyfish,
                                         Fabric::kQuartzInCore, Fabric::kQuartzInEdge,
                                         Fabric::kQuartzInEdgeAndCore,
                                         Fabric::kQuartzInJellyfish),
                       ::testing::Values(1u, 2u, 3u)));

TEST(Fig20, FlowletModeEliminatesReordering) {
  // Per-packet adaptive detouring can reorder flows when it oscillates
  // between the short direct path and longer detours; flowlet
  // stickiness must remove that while keeping latency flat.
  PathologicalParams params;
  params.duration = milliseconds(4);
  params.aggregate_gbps = 44;  // past the 40G direct lightpath

  const auto per_packet = run_pathological(CoreKind::kQuartzAdaptive, params);
  params.adaptive_flowlet_timeout = microseconds(100);
  const auto flowlet = run_pathological(CoreKind::kQuartzAdaptive, params);

  EXPECT_GT(per_packet.reordered_packets, 0u);
  // Flowlet stickiness removes the bulk of the reordering while keeping
  // latency flat (re-decisions only at flowlet boundaries or when the
  // sticky path saturates).
  EXPECT_LT(flowlet.reordered_packets, per_packet.reordered_packets / 4 + 1);
  EXPECT_LT(flowlet.mean_latency_us, 5.0);
  EXPECT_EQ(flowlet.packets_dropped, 0u);
}

TEST(Fig20, FixedVlbNeverReorders) {
  // The per-flow hashed VLB picks one path per flow: no reordering by
  // construction, at any load.
  PathologicalParams params;
  params.duration = milliseconds(3);
  for (double gbps : {20.0, 50.0}) {
    params.aggregate_gbps = gbps;
    EXPECT_EQ(run_pathological(CoreKind::kQuartzVlb, params).reordered_packets, 0u);
    EXPECT_EQ(run_pathological(CoreKind::kQuartzEcmp, params).reordered_packets, 0u);
  }
}

TEST(Decomposition, QueueingShareSmallAtLightLoadLargeNearSaturation) {
  // The per-packet latency decomposition must attribute almost nothing
  // to queueing at light load and (by construction of the hop budget)
  // everything beyond switch latency + serialization near saturation.
  TaskExperimentParams light;
  light.tasks = 1;
  light.per_flow_rate = megabits_per_second(20);
  light.duration = milliseconds(5);
  const auto quiet = run_task_experiment(Fabric::kQuartzInEdgeAndCore, {}, light);
  EXPECT_LT(quiet.mean_queueing_us, 0.15);
  EXPECT_LT(quiet.mean_queueing_us, quiet.mean_latency_us * 0.1);

  TaskExperimentParams heavy = light;
  heavy.tasks = 8;
  heavy.per_flow_rate = megabits_per_second(550);  // pushes sender NICs hard
  const auto loud = run_task_experiment(Fabric::kQuartzInEdgeAndCore, {}, heavy);
  EXPECT_GT(loud.mean_queueing_us, quiet.mean_queueing_us * 5);
  // Decomposition sanity: queueing never exceeds total latency.
  EXPECT_LT(loud.mean_queueing_us, loud.mean_latency_us);
}

TEST(Names, AllEnumsHaveNames) {
  EXPECT_EQ(fabric_name(Fabric::kThreeTierTree), "three-tier tree");
  EXPECT_EQ(pattern_name(Pattern::kScatterGather), "scatter/gather");
  EXPECT_EQ(prototype_name(PrototypeFabric::kQuartz), "quartz");
  EXPECT_EQ(core_kind_name(CoreKind::kQuartzVlb), "quartz in core (VLB)");
}

}  // namespace
}  // namespace quartz::sim
