#include "core/upgrade.hpp"

#include <gtest/gtest.h>

namespace quartz::core {
namespace {

TEST(Upgrade, ReachesTarget) {
  const auto plan = plan_incremental_growth({});
  ASSERT_FALSE(plan.empty());
  EXPECT_GE(plan.back().ports_supported, 1056);
  EXPECT_EQ(plan.front().ring_size, 2);
  EXPECT_EQ(plan.back().ring_size, 33);
}

TEST(Upgrade, CumulativeCostsMonotone) {
  const auto plan = plan_incremental_growth({});
  for (std::size_t i = 1; i < plan.size(); ++i) {
    EXPECT_GT(plan[i].quartz_cumulative_usd, plan[i - 1].quartz_cumulative_usd);
    EXPECT_GE(plan[i].chassis_cumulative_usd, plan[i - 1].chassis_cumulative_usd);
    EXPECT_EQ(plan[i].ring_size, plan[i - 1].ring_size + 1);
  }
}

TEST(Upgrade, StepCostsSumToCumulative) {
  const auto plan = plan_incremental_growth({});
  double sum = 0.0;
  for (const auto& step : plan) sum += step.step_cost_usd;
  EXPECT_NEAR(sum, plan.back().quartz_cumulative_usd, 1e-6);
}

TEST(Upgrade, QuartzCheaperEarlyOn) {
  // §4.2: the chassis path pays the big box up front; the quartz path
  // must undercut it for every early step.
  const auto plan = plan_incremental_growth({});
  for (const auto& step : plan) {
    if (step.ports_supported <= 512) {
      EXPECT_LT(step.quartz_cumulative_usd, step.chassis_cumulative_usd)
          << "at " << step.ports_supported << " ports";
    }
  }
}

TEST(Upgrade, NoGiantStep) {
  // Incremental means no single step dominates the spend.
  const auto plan = plan_incremental_growth({});
  EXPECT_LT(max_step_fraction(plan), 0.35);
}

TEST(Upgrade, SecondRingAppearsWhenMuxOverflows) {
  const auto plan = plan_incremental_growth({});
  int transition = -1;
  for (const auto& step : plan) {
    if (step.physical_rings == 2 && transition < 0) transition = step.ring_size;
    EXPECT_LE(step.channels, step.physical_rings * 80);
  }
  EXPECT_GT(transition, 20);  // 80 channels last until M ~ 25
  EXPECT_LT(transition, 30);
}

TEST(Upgrade, CustomTarget) {
  UpgradePlanParams params;
  params.target_ports = 256;
  const auto plan = plan_incremental_growth({}, params);
  EXPECT_GE(plan.back().ports_supported, 256);
  EXPECT_LT(plan.back().ports_supported, 256 + params.ports_per_switch);
}

TEST(Upgrade, RejectsBadParams) {
  UpgradePlanParams params;
  params.target_ports = 0;
  EXPECT_THROW(plan_incremental_growth({}, params), std::invalid_argument);
  params.target_ports = 1'000'000;  // beyond a single ring
  EXPECT_THROW(plan_incremental_growth({}, params), std::invalid_argument);
  EXPECT_THROW(max_step_fraction({}), std::invalid_argument);
}

}  // namespace
}  // namespace quartz::core
