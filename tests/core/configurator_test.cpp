#include "core/configurator.hpp"

#include <gtest/gtest.h>

namespace quartz::core {
namespace {

TEST(LatencyModel, SingleRingBeatsTwoTier) {
  // Table 8 small-DC rows: 33% reduction at low utilization, ~50% at
  // high (one fewer hop plus no shared aggregation tier).
  const double tree_low = estimate_latency_us(DesignChoice::kTwoTierTree, Utilization::kLow);
  const double ring_low =
      estimate_latency_us(DesignChoice::kSingleQuartzRing, Utilization::kLow);
  EXPECT_NEAR(1.0 - ring_low / tree_low, 0.33, 0.03);

  const double tree_high = estimate_latency_us(DesignChoice::kTwoTierTree, Utilization::kHigh);
  const double ring_high =
      estimate_latency_us(DesignChoice::kSingleQuartzRing, Utilization::kHigh);
  EXPECT_NEAR(1.0 - ring_high / tree_high, 0.50, 0.05);
}

TEST(LatencyModel, HighUtilizationCostsMore) {
  for (auto choice : {DesignChoice::kTwoTierTree, DesignChoice::kThreeTierTree,
                      DesignChoice::kSingleQuartzRing, DesignChoice::kQuartzInEdge,
                      DesignChoice::kQuartzInCore, DesignChoice::kQuartzInEdgeAndCore}) {
    EXPECT_GT(estimate_latency_us(choice, Utilization::kHigh),
              estimate_latency_us(choice, Utilization::kLow))
        << design_choice_name(choice);
  }
}

TEST(LatencyModel, TreeDominatedByCcsCore) {
  const double tree = estimate_latency_us(DesignChoice::kThreeTierTree, Utilization::kLow);
  // 70% of traffic crosses the 6us core: the mean must exceed 4us.
  EXPECT_GT(tree, 4.0);
}

TEST(LatencyModel, EdgeAndCoreRemovesCcsEntirely) {
  const double tree = estimate_latency_us(DesignChoice::kThreeTierTree, Utilization::kHigh);
  const double both =
      estimate_latency_us(DesignChoice::kQuartzInEdgeAndCore, Utilization::kHigh);
  // §4.4: more than 74% reduction for the large/high scenario.
  EXPECT_GT(1.0 - both / tree, 0.70);
}

TEST(LatencyModel, PathLatencyMonotoneInRho) {
  const auto hops = path_profile(DesignChoice::kThreeTierTree);
  double previous = 0.0;
  for (double rho : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const double latency = path_latency_us(hops, rho);
    EXPECT_GT(latency, previous);
    previous = latency;
  }
  EXPECT_THROW(path_latency_us(hops, 1.0), std::invalid_argument);
}

TEST(Configurator, ProducesSixScenarios) {
  const auto rows = run_configurator();
  ASSERT_EQ(rows.size(), 6u);
  // Scenario order: small/low, small/high, medium/low, medium/high,
  // large/low, large/high.
  EXPECT_EQ(rows[0].size, DcSize::kSmall);
  EXPECT_EQ(rows[5].size, DcSize::kLarge);
  EXPECT_EQ(rows[5].quartz, DesignChoice::kQuartzInEdgeAndCore);
}

TEST(Configurator, EveryRowReducesLatency) {
  for (const auto& row : run_configurator()) {
    EXPECT_GT(row.latency_reduction_percent, 15.0)
        << dc_size_name(row.size) << "/" << utilization_name(row.utilization);
    EXPECT_LT(row.latency_reduction_percent, 95.0);
  }
}

TEST(Configurator, CostPremiumStaysModest) {
  // Table 8: the worst-case premium in the paper is 17%.
  for (const auto& row : run_configurator()) {
    EXPECT_LT(row.cost_increase_percent, 35.0);
    EXPECT_GT(row.cost_increase_percent, -25.0);
  }
}

TEST(Configurator, HighUtilizationReducesAtLeastAsMuch) {
  const auto rows = run_configurator();
  // Within each size, the high-utilization row benefits at least as
  // much as the low one (cross-traffic hits trees hardest).
  EXPECT_GE(rows[1].latency_reduction_percent, rows[0].latency_reduction_percent - 1e-9);
  EXPECT_GE(rows[3].latency_reduction_percent, rows[2].latency_reduction_percent - 1e-9);
}

TEST(Configurator, ScenarioHelperNames) {
  EXPECT_EQ(servers_for(DcSize::kSmall), 500);
  EXPECT_EQ(servers_for(DcSize::kMedium), 10'000);
  EXPECT_EQ(servers_for(DcSize::kLarge), 100'000);
  EXPECT_DOUBLE_EQ(rho_for(Utilization::kLow), 0.5);
  EXPECT_DOUBLE_EQ(rho_for(Utilization::kHigh), 0.7);
  EXPECT_EQ(design_choice_name(DesignChoice::kQuartzInCore), "quartz in core");
}

}  // namespace
}  // namespace quartz::core
