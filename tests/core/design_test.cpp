#include "core/design.hpp"

#include <gtest/gtest.h>

namespace quartz::core {
namespace {

TEST(Design, PaperFlagship33Switch) {
  DesignParams params;  // 33 switches x 32 server ports on 64-port ULLs
  const QuartzDesign design = plan_design(params);
  ASSERT_TRUE(design.feasible) << design.infeasible_reason;
  EXPECT_EQ(design.total_server_ports, 1056);  // §3.2's 32 x 33
  EXPECT_EQ(design.transceivers_per_switch, 32);
  EXPECT_EQ(design.physical_rings, 2);  // ~137 channels need two muxes
  EXPECT_EQ(design.muxes_per_switch, 2);
  EXPECT_TRUE(design.amplifiers.feasible);
  EXPECT_NEAR(design.oversubscription(), 1.0, 1e-9);
}

TEST(Design, SmallRingSingleMux) {
  DesignParams params;
  params.switches = 8;
  params.server_ports_per_switch = 32;
  const QuartzDesign design = plan_design(params);
  ASSERT_TRUE(design.feasible);
  EXPECT_EQ(design.physical_rings, 1);
  EXPECT_EQ(design.transceivers_per_switch, 7);
}

TEST(Design, PortBudgetEnforced) {
  DesignParams params;
  params.switches = 33;
  params.server_ports_per_switch = 40;  // 40 + 32 > 64
  const QuartzDesign design = plan_design(params);
  EXPECT_FALSE(design.feasible);
  EXPECT_NE(design.infeasible_reason.find("ports"), std::string::npos);
}

TEST(Design, RedundantRingsAdded) {
  DesignParams params;
  params.switches = 33;
  params.redundant_rings = 2;
  const QuartzDesign design = plan_design(params);
  ASSERT_TRUE(design.feasible);
  EXPECT_EQ(design.physical_rings, 4);
  EXPECT_EQ(design.muxes_per_switch, 4);
}

TEST(Design, RingSizeCapEnforced) {
  DesignParams params;
  params.switches = 65;
  params.server_ports_per_switch = 1;
  params.switch_model.port_count = 128;
  const QuartzDesign design = plan_design(params);
  EXPECT_FALSE(design.feasible);
}

TEST(Design, TinyRingRejected) {
  DesignParams params;
  params.switches = 1;
  EXPECT_FALSE(plan_design(params).feasible);
}

TEST(Design, OversubscriptionDial) {
  // §3: n:k sets the server-to-switch ratio.
  DesignParams params;
  params.switches = 9;       // k = 8
  params.server_ports_per_switch = 48;
  params.switch_model.port_count = 64;
  const QuartzDesign design = plan_design(params);
  ASSERT_TRUE(design.feasible);
  EXPECT_NEAR(design.oversubscription(), 6.0, 1e-9);
}

TEST(Design, ChannelsVerifyAgainstPlan) {
  DesignParams params;
  params.switches = 12;
  params.server_ports_per_switch = 32;
  const QuartzDesign design = plan_design(params);
  ASSERT_TRUE(design.feasible);
  std::string error;
  EXPECT_TRUE(wavelength::verify(design.channels, &error)) << error;
}

TEST(Scalability, PaperNumbers) {
  // §3.2: 64-port switches -> 1056 single-ToR ports, 2080 dual-ToR.
  EXPECT_EQ(max_single_tor_ports(64), 1056);
  EXPECT_EQ(max_dual_tor_ports(64), 2080);
  // If cut-through port counts grow, Quartz scales quadratically.
  EXPECT_EQ(max_single_tor_ports(128), 64 * 65);
  EXPECT_THROW(max_single_tor_ports(1), std::invalid_argument);
}

}  // namespace
}  // namespace quartz::core
