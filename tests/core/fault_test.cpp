#include "core/fault.hpp"

#include <gtest/gtest.h>

#include "wavelength/assign.hpp"

namespace quartz::core {
namespace {

TEST(FaultTrial, NoFailuresNoLoss) {
  const auto plan = wavelength::greedy_assign(8);
  const FaultTrial trial = evaluate_failures(plan, 1, {});
  EXPECT_EQ(trial.lost_lightpaths, 0);
  EXPECT_FALSE(trial.partitioned);
  EXPECT_EQ(trial.total_lightpaths, 28);
}

TEST(FaultTrial, SingleCutLosesCrossingPaths) {
  const auto plan = wavelength::greedy_assign(8);
  const FaultTrial trial = evaluate_failures(plan, 1, {{0, 0}});
  // Load on segment 0 with balanced routing is about M^2/8 = 8.
  EXPECT_GT(trial.lost_lightpaths, 0);
  EXPECT_LT(trial.lost_lightpaths, trial.total_lightpaths);
  EXPECT_FALSE(trial.partitioned);
}

TEST(FaultTrial, TwoCutsOnOneRingAlwaysPartition) {
  // Two cuts split a single physical ring into two arcs; every
  // lightpath between the arcs crosses a cut, so the mesh partitions.
  const auto plan = wavelength::greedy_assign(12);
  for (int second = 1; second < 12; ++second) {
    const FaultTrial trial = evaluate_failures(plan, 1, {{0, 0}, {0, second}});
    EXPECT_TRUE(trial.partitioned) << "second cut at " << second;
  }
}

TEST(FaultTrial, TwoRingsSurviveTwoCutsOnDifferentRings) {
  const auto plan = wavelength::greedy_assign(12);
  const FaultTrial trial = evaluate_failures(plan, 2, {{0, 0}, {1, 6}});
  EXPECT_FALSE(trial.partitioned);
}

TEST(FaultTrial, RejectsOutOfRangeFailures) {
  const auto plan = wavelength::greedy_assign(6);
  EXPECT_THROW(evaluate_failures(plan, 1, {{1, 0}}), std::invalid_argument);
  EXPECT_THROW(evaluate_failures(plan, 1, {{0, 6}}), std::invalid_argument);
}

TEST(Fault, SingleRingLossMatchesLinkLoad) {
  // Fig. 6 top: one failure on a single ring loses ~20-26% of the
  // bandwidth (the fraction of lightpaths crossing one segment).
  FaultParams params;
  params.switches = 33;
  params.physical_rings = 1;
  params.failed_links = 1;
  params.trials = 2000;
  const FaultResult result = analyze_faults(params);
  EXPECT_GT(result.mean_bandwidth_loss, 0.15);
  EXPECT_LT(result.mean_bandwidth_loss, 0.30);
  EXPECT_DOUBLE_EQ(result.partition_probability, 0.0);
}

TEST(Fault, LossScalesInverselyWithRings) {
  FaultParams params;
  params.switches = 33;
  params.failed_links = 1;
  params.trials = 2000;
  params.physical_rings = 1;
  const double one_ring = analyze_faults(params).mean_bandwidth_loss;
  params.physical_rings = 4;
  const double four_rings = analyze_faults(params).mean_bandwidth_loss;
  // Fig. 6: ~20% with one ring vs ~6% with four.
  EXPECT_NEAR(four_rings, one_ring / 4.0, one_ring * 0.15);
}

TEST(Fault, SingleRingPartitionsAtTwoFailures) {
  FaultParams params;
  params.switches = 33;
  params.physical_rings = 1;
  params.failed_links = 2;
  params.trials = 500;
  // Fig. 6 bottom: "more than 90%" — structurally it is certain.
  EXPECT_GT(analyze_faults(params).partition_probability, 0.9);
}

TEST(Fault, TwoRingsAlmostNeverPartition) {
  // Fig. 6's headline: with two rings, four simultaneous failures
  // partition with probability ~0.24%.
  FaultParams params;
  params.switches = 33;
  params.physical_rings = 2;
  params.failed_links = 4;
  params.trials = 20000;
  const double p = analyze_faults(params).partition_probability;
  EXPECT_LT(p, 0.01);
  EXPECT_GT(p, 0.0);  // but it is possible
}

TEST(Fault, DeterministicForSeed) {
  FaultParams params;
  params.trials = 500;
  params.failed_links = 2;
  params.physical_rings = 2;
  const FaultResult a = analyze_faults(params);
  const FaultResult b = analyze_faults(params);
  EXPECT_DOUBLE_EQ(a.mean_bandwidth_loss, b.mean_bandwidth_loss);
  EXPECT_DOUBLE_EQ(a.partition_probability, b.partition_probability);
}

TEST(Fault, MoreFailuresMoreLoss) {
  FaultParams params;
  params.switches = 17;
  params.physical_rings = 2;
  params.trials = 1000;
  double previous = 0.0;
  for (int fails = 1; fails <= 4; ++fails) {
    params.failed_links = fails;
    const double loss = analyze_faults(params).mean_bandwidth_loss;
    EXPECT_GT(loss, previous);
    previous = loss;
  }
}

TEST(Fault, RejectsBadParams) {
  FaultParams params;
  params.failed_links = 1000;
  EXPECT_THROW(analyze_faults(params), std::invalid_argument);
  params.failed_links = 1;
  params.trials = 0;
  EXPECT_THROW(analyze_faults(params), std::invalid_argument);
}

TEST(Availability, PerfectFiberMeansFullAvailability) {
  AvailabilityParams params;
  params.cuts_per_km_per_year = 0.0;
  params.trials = 200;
  const AvailabilityResult r = analyze_availability(params);
  EXPECT_DOUBLE_EQ(r.segment_down_probability, 0.0);
  EXPECT_DOUBLE_EQ(r.mean_bandwidth_availability, 1.0);
  EXPECT_DOUBLE_EQ(r.partition_minutes_per_year, 0.0);
}

TEST(Availability, MoreRingsCutPartitionTimeNotLoss) {
  // Under a fixed per-segment failure *rate*, striping over more rings
  // does not change expected bandwidth loss (every lightpath still
  // crosses the same number of independently-failing segments) — what
  // extra rings buy is partition resistance.  This distinguishes the
  // steady-state view from Fig. 6's fixed-failure-count view.
  AvailabilityParams params;
  params.cuts_per_km_per_year = 200.0;  // absurdly bad plant to get signal
  params.trials = 20'000;
  params.physical_rings = 1;
  const auto one = analyze_availability(params);
  params.physical_rings = 4;
  const auto four = analyze_availability(params);
  EXPECT_NEAR(four.mean_bandwidth_availability, one.mean_bandwidth_availability, 0.01);
  EXPECT_LT(four.partition_minutes_per_year, one.partition_minutes_per_year * 0.25);
}

TEST(Availability, RealisticPlantIsThreeNinesPlus) {
  // Pessimistic plant (0.5 cuts/km/year) on 2 rings: each of the 66
  // segments is down with p ~ 4.6e-5, so expected bandwidth
  // availability is ~1 - p*66*0.13 ~ 0.9996 and partitions (needing
  // two co-located cuts) are vanishingly rare.
  AvailabilityParams params;
  params.trials = 50'000;
  const auto r = analyze_availability(params);
  EXPECT_GT(r.mean_bandwidth_availability, 0.999);
  EXPECT_LT(r.partition_minutes_per_year, 5.0);
}

TEST(Availability, DownProbabilityFormula) {
  AvailabilityParams params;
  params.cuts_per_km_per_year = 1.0;
  params.span_km = 1.0;
  params.mttr_hours = 8766.0;  // down a whole year per cut
  params.trials = 10;
  const auto r = analyze_availability(params);
  EXPECT_DOUBLE_EQ(r.segment_down_probability, 1.0);
}

TEST(Availability, RejectsNegativeRates) {
  AvailabilityParams params;
  params.cuts_per_km_per_year = -1.0;
  EXPECT_THROW(analyze_availability(params), std::invalid_argument);
}

}  // namespace
}  // namespace quartz::core
