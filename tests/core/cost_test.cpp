#include "core/cost.hpp"

#include <gtest/gtest.h>

namespace quartz::core {
namespace {

TEST(Cost, TwoTierSmallDc) {
  const CostBreakdown c = cost_two_tier({}, 500);
  EXPECT_EQ(c.servers, 500);
  EXPECT_EQ(c.ull_switches, 12);  // 11 ToRs + 1 agg
  EXPECT_EQ(c.ccs_switches, 0);
  EXPECT_GT(c.per_server_usd, 100.0);
  EXPECT_LT(c.per_server_usd, 2000.0);
}

TEST(Cost, ThreeTierUsesCcsCores) {
  const CostBreakdown c = cost_three_tier({}, 10'000);
  EXPECT_GE(c.ccs_switches, 2);
  EXPECT_GT(c.ull_switches, 200);
}

TEST(Cost, SingleRingSizesToDemand) {
  const CostBreakdown c = cost_quartz_single_ring({}, 500);
  EXPECT_EQ(c.quartz_rings, 1);
  EXPECT_GT(c.ull_switches, 2);
  EXPECT_LE(c.ull_switches, 35);
  EXPECT_GT(c.dwdm_transceivers, 0);
  EXPECT_GT(c.muxes, 0);
  // A single ring cannot serve 10k servers.
  EXPECT_THROW(cost_quartz_single_ring({}, 10'000), std::invalid_argument);
}

TEST(Cost, QuartzPremiumIsModest) {
  // Table 8: the Quartz premium over the same-size tree is small
  // (paper: +7% small, +13% medium).
  const double small_tree = cost_two_tier({}, 500).per_server_usd;
  const double small_ring = cost_quartz_single_ring({}, 500).per_server_usd;
  EXPECT_GT(small_ring, small_tree * 0.9);
  EXPECT_LT(small_ring, small_tree * 1.4);

  const double medium_tree = cost_three_tier({}, 10'000).per_server_usd;
  const double medium_edge = cost_quartz_in_edge({}, 10'000).per_server_usd;
  EXPECT_GT(medium_edge, medium_tree);
  EXPECT_LT(medium_edge, medium_tree * 1.35);
}

TEST(Cost, QuartzInCoreCompetitiveAtScale) {
  // Table 8's large-DC row: replacing CCS chassis with Quartz rings
  // does not increase cost per server materially.
  const double tree = cost_three_tier({}, 100'000).per_server_usd;
  const double core = cost_quartz_in_core({}, 100'000).per_server_usd;
  EXPECT_NEAR(core, tree, tree * 0.15);
}

TEST(Cost, PerServerDecreasesWithScaleForTrees) {
  const double small = cost_three_tier({}, 5'000).per_server_usd;
  const double large = cost_three_tier({}, 100'000).per_server_usd;
  EXPECT_LT(large, small * 1.2);
}

TEST(Cost, CatalogPricesPropagate) {
  PriceCatalog expensive;
  expensive.ull_switch_usd *= 2;
  const double base = cost_two_tier({}, 1'000).per_server_usd;
  const double doubled = cost_two_tier(expensive, 1'000).per_server_usd;
  EXPECT_GT(doubled, base * 1.5);
}

TEST(Cost, EdgeAndCoreAddsCoreRings) {
  const CostBreakdown edge = cost_quartz_in_edge({}, 20'000);
  const CostBreakdown both = cost_quartz_in_edge_and_core({}, 20'000);
  EXPECT_GT(both.quartz_rings, edge.quartz_rings);
  EXPECT_EQ(both.ccs_switches, 0);
  EXPECT_GT(edge.ccs_switches, 0);
}

TEST(Cost, TotalsAreSumOfParts) {
  const PriceCatalog catalog;
  const CostBreakdown c = cost_quartz_single_ring(catalog, 300);
  const double expected = c.ull_switches * catalog.ull_switch_usd +
                          c.ccs_switches * catalog.ccs_switch_usd +
                          c.dwdm_transceivers * catalog.dwdm_transceiver_usd +
                          c.sr_transceivers * catalog.sr_transceiver_usd +
                          c.muxes * catalog.mux_usd + c.amplifiers * catalog.edfa_usd +
                          c.cables * catalog.cable_usd;
  EXPECT_DOUBLE_EQ(c.total_usd, expected);
  EXPECT_DOUBLE_EQ(c.per_server_usd, c.total_usd / 300);
}

TEST(Cost, RejectsZeroServers) {
  EXPECT_THROW(cost_two_tier({}, 0), std::invalid_argument);
  EXPECT_THROW(cost_three_tier({}, -5), std::invalid_argument);
}

class CostScaleSweep : public ::testing::TestWithParam<int> {};

TEST_P(CostScaleSweep, AllModelsProducePositiveCosts) {
  const int servers = GetParam();
  EXPECT_GT(cost_three_tier({}, servers).total_usd, 0.0);
  EXPECT_GT(cost_quartz_in_edge({}, servers).total_usd, 0.0);
  EXPECT_GT(cost_quartz_in_core({}, servers).total_usd, 0.0);
  EXPECT_GT(cost_quartz_in_edge_and_core({}, servers).total_usd, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Scales, CostScaleSweep,
                         ::testing::Values(500, 2'000, 10'000, 50'000, 100'000));

}  // namespace
}  // namespace quartz::core
