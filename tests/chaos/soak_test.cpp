// The chaos-soak sweep: full-length randomized fault storms, every
// fault class at once, four invariants checked at quiescence.  This is
// deliberately heavier than tier-1 — it is registered under the ctest
// `soak` configuration/label and runs in the nightly CI job:
//
//   ctest -C soak -L soak --output-on-failure
//
// Environment knobs (for CI and for reproducing nightly failures):
//   QUARTZ_CHAOS_SEED    base seed of the sweep (default 1)
//   QUARTZ_CHAOS_STORMS  storms per detection mode (default 10)
//   QUARTZ_CHAOS_JOBS    sweep worker threads (default 1; 0 = all
//                        hardware threads — reports are byte-identical
//                        for every value, jobs only changes wall-clock)
//
// Every storm is a pure function of its seed: rerun with the seed a
// failing nightly printed and it reproduces bit for bit.
#include "chaos/soak.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <iostream>

#include "chaos/slo_storm.hpp"

namespace quartz::chaos {
namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return static_cast<std::uint64_t>(std::strtoull(value, nullptr, 10));
}

void expect_sweep_passes(const StormParams& base, int storms) {
  const int jobs = static_cast<int>(env_u64("QUARTZ_CHAOS_JOBS", 1));
  const std::vector<StormReport> reports = run_sweep(base, storms, jobs);
  ASSERT_EQ(reports.size(), static_cast<std::size_t>(storms));
  for (const StormReport& r : reports) {
    std::cout << r.summary() << '\n';
    EXPECT_TRUE(r.passed()) << r.summary();
    EXPECT_EQ(r.cuts, r.repairs) << r.summary();
    EXPECT_EQ(r.degradations, r.restorations) << r.summary();
  }
}

TEST(ChaosSoak, HealthMonitorSweepHoldsAllInvariants) {
  StormParams base;  // full-length default storm
  base.seed = env_u64("QUARTZ_CHAOS_SEED", 1);
  base.mode = DetectionMode::kHealthMonitor;
  expect_sweep_passes(base, static_cast<int>(env_u64("QUARTZ_CHAOS_STORMS", 10)));
}

TEST(ChaosSoak, FixedDelaySweepHoldsAllInvariants) {
  StormParams base;
  base.seed = env_u64("QUARTZ_CHAOS_SEED", 1);
  base.mode = DetectionMode::kFixedDelay;
  expect_sweep_passes(base, static_cast<int>(env_u64("QUARTZ_CHAOS_STORMS", 10)));
}

TEST(ChaosSoak, SloStormSweepReconfiguresMidChaosAndHoldsInvariants) {
  // The defended serve stack — admission, retry budgets, and a regroom
  // fired mid-storm — against full-length cut + blackhole storms.
  SloStormParams base;  // full-length default SLO storm
  base.seed = env_u64("QUARTZ_CHAOS_SEED", 1);
  const int storms = static_cast<int>(env_u64("QUARTZ_CHAOS_STORMS", 10));
  const int jobs = static_cast<int>(env_u64("QUARTZ_CHAOS_JOBS", 1));
  const std::vector<SloStormReport> reports = run_slo_sweep(base, storms, jobs);
  ASSERT_EQ(reports.size(), static_cast<std::size_t>(storms));
  for (const SloStormReport& r : reports) {
    std::cout << r.summary() << '\n';
    EXPECT_TRUE(r.passed()) << r.summary();
    EXPECT_EQ(r.serve.reconfigurations, 1u) << r.summary();
    EXPECT_LE(r.serve.retry_amplification, 2.0) << r.summary();
  }
}

}  // namespace
}  // namespace quartz::chaos
