// Checkpoint/restore bit-exactness under the full chaos storm: a run
// snapshotted mid-storm and resumed in a fresh StormRun must reproduce
// the uninterrupted run's digests, counters and invariants — at every
// parallel sweep width.
#include <gtest/gtest.h>

#include <string>

#include "chaos/soak.hpp"
#include "chaos/storm_run.hpp"
#include "common/units.hpp"
#include "snapshot/io.hpp"

namespace quartz::chaos {
namespace {

/// Small but complete storm: every fault class fires, ~400k events.
StormParams quick_params(std::uint64_t seed) {
  StormParams params;
  params.seed = seed;
  params.packets = 10'000;
  params.storm_start = milliseconds(10);
  params.storm_end = milliseconds(40);
  params.quiesce_at = milliseconds(60);
  params.run_until = milliseconds(110);
  return params;
}

void expect_identical(const StormReport& a, const StormReport& b) {
  EXPECT_EQ(a.delivery_digest, b.delivery_digest);
  EXPECT_EQ(a.drop_digest, b.drop_digest);
  EXPECT_EQ(a.events_dispatched, b.events_dispatched);
  EXPECT_EQ(a.sent, b.sent);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.queue_drops, b.queue_drops);
  EXPECT_EQ(a.link_down_drops, b.link_down_drops);
  EXPECT_EQ(a.corrupted_drops, b.corrupted_drops);
  EXPECT_EQ(a.probes, b.probes);
  EXPECT_EQ(a.deaths, b.deaths);
  EXPECT_EQ(a.max_hops, b.max_hops);
  EXPECT_EQ(a.baseline_mean_us, b.baseline_mean_us);
  EXPECT_EQ(a.tail_mean_us, b.tail_mean_us);
  EXPECT_EQ(a.fluid_epochs, b.fluid_epochs);
  EXPECT_EQ(a.fluid_digest, b.fluid_digest);
  EXPECT_EQ(a.passed(), b.passed());
}

TEST(StormSnapshot, MidStormRestoreIsBitExact) {
  const StormReport plain = run_storm(quick_params(101));
  StormParams rehearsed = quick_params(101);
  rehearsed.restore_rehearsal = true;
  const StormReport resumed = run_storm(rehearsed);
  EXPECT_TRUE(plain.passed()) << plain.summary();
  expect_identical(plain, resumed);
}

TEST(StormSnapshot, FixedDelayModeRestoresToo) {
  StormParams params = quick_params(202);
  params.mode = DetectionMode::kFixedDelay;
  const StormReport plain = run_storm(params);
  StormParams rehearsed = params;
  rehearsed.restore_rehearsal = true;
  expect_identical(plain, run_storm(rehearsed));
}

TEST(StormSnapshot, SweepWithRehearsalIsJobsInvariant) {
  // Every storm in the sweep snapshots and restores mid-run; the report
  // vector must be identical at jobs 1, 2 and 8 — checkpoint/restore
  // composes with the parallel runner.
  StormParams base = quick_params(301);
  base.restore_rehearsal = true;
  const std::vector<StormReport> jobs1 = run_sweep(base, 3, 1);
  const std::vector<StormReport> jobs2 = run_sweep(base, 3, 2);
  const std::vector<StormReport> jobs8 = run_sweep(base, 3, 8);
  ASSERT_EQ(jobs1.size(), 3u);
  ASSERT_EQ(jobs2.size(), 3u);
  ASSERT_EQ(jobs8.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    SCOPED_TRACE(i);
    EXPECT_TRUE(jobs1[i].passed()) << jobs1[i].summary();
    expect_identical(jobs1[i], jobs2[i]);
    expect_identical(jobs1[i], jobs8[i]);
  }
}

TEST(StormSnapshot, HybridStormRestoresBitExact) {
  // Hybrid slice: the fluid background's epoch chain and bias state
  // ride the mid-storm snapshot, so a restored run must reproduce the
  // fluid digest along with the packet digests.
  StormParams params = quick_params(606);
  params.hybrid_background = true;
  const StormReport plain = run_storm(params);
  EXPECT_TRUE(plain.passed()) << plain.summary();
  EXPECT_GT(plain.fluid_epochs, 0u);
  StormParams rehearsed = params;
  rehearsed.restore_rehearsal = true;
  const StormReport resumed = run_storm(rehearsed);
  expect_identical(plain, resumed);
}

TEST(StormSnapshot, RestoreRefusesHybridMismatch) {
  // A snapshot from a hybrid storm must not restore into a plain run:
  // the handler map (and the FLUI chunk) would not line up.
  StormParams hybrid = quick_params(707);
  hybrid.hybrid_background = true;
  StormRun run(hybrid);
  run.arm();
  run.run_to(milliseconds(20));
  snapshot::Writer w;
  run.save(w);
  std::string error;
  auto reader = snapshot::Reader::from_bytes(snapshot::file_bytes(w, 0), &error);
  ASSERT_TRUE(reader.has_value()) << error;
  StormRun plain(quick_params(707));
  EXPECT_THROW(plain.restore(*reader), std::invalid_argument);
}

TEST(StormSnapshot, RestoreRefusesDifferentParams) {
  StormRun run(quick_params(404));
  run.arm();
  run.run_to(milliseconds(20));
  snapshot::Writer w;
  run.save(w);
  std::string error;
  auto reader = snapshot::Reader::from_bytes(snapshot::file_bytes(w, 0), &error);
  ASSERT_TRUE(reader.has_value()) << error;
  StormRun other(quick_params(405));  // different seed
  EXPECT_THROW(other.restore(*reader), std::invalid_argument);
}

TEST(StormSnapshot, RestoreRefusesArmedRun) {
  StormRun run(quick_params(505));
  run.arm();
  run.run_to(milliseconds(20));
  snapshot::Writer w;
  run.save(w);
  std::string error;
  auto reader = snapshot::Reader::from_bytes(snapshot::file_bytes(w, 0), &error);
  ASSERT_TRUE(reader.has_value()) << error;
  StormRun armed(quick_params(505));
  armed.arm();
  EXPECT_THROW(armed.restore(*reader), std::invalid_argument);
}

}  // namespace
}  // namespace quartz::chaos
