// The tentpole acceptance tests for the parallel engine: a full chaos
// storm (cuts + gray transceivers + flap damping) over a composed
// fabric must produce BYTE-IDENTICAL delivery and drop digests at
// every shard count, and a mid-storm checkpoint taken at a window
// barrier must restore bit-exactly — but only at the shard count it
// was saved with.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "chaos/sharded_storm.hpp"
#include "common/units.hpp"
#include "snapshot/io.hpp"

namespace quartz::chaos {
namespace {

ShardedStormParams composite_params(std::uint64_t seed, int shards) {
  ShardedStormParams params;
  params.seed = seed;
  params.shards = shards;
  return params;
}

TEST(ShardedStorm, CompositeDigestsMatchAtEveryShardCount) {
  const ShardedStormResult serial = run_sharded_storm(composite_params(7, 1));
  EXPECT_GT(serial.deliveries, 0u);
  EXPECT_GT(serial.drops, 0u);  // the storm must actually bite
  EXPECT_EQ(serial.mail_posted, 0u);

  const ShardedStormResult two = run_sharded_storm(composite_params(7, 2));
  EXPECT_EQ(two.strategy, "composite");
  EXPECT_GT(two.mail_posted, 0u);
  EXPECT_EQ(two.delivery_digest, serial.delivery_digest);
  EXPECT_EQ(two.drop_digest, serial.drop_digest);
  EXPECT_EQ(two.deliveries, serial.deliveries);
  EXPECT_EQ(two.drops, serial.drops);

  const ShardedStormResult eight = run_sharded_storm(composite_params(7, 8));
  EXPECT_EQ(eight.delivery_digest, serial.delivery_digest);
  EXPECT_EQ(eight.drop_digest, serial.drop_digest);
  EXPECT_EQ(eight.deliveries, serial.deliveries);
  EXPECT_EQ(eight.drops, serial.drops);
}

TEST(ShardedStorm, FlatRingSegmentsMatchSerial) {
  ShardedStormParams params;
  params.seed = 11;
  params.composite.clear();  // flat ring → ring-segment splitter
  params.shards = 1;
  const ShardedStormResult serial = run_sharded_storm(params);
  EXPECT_GT(serial.deliveries, 0u);

  params.shards = 4;
  const ShardedStormResult four = run_sharded_storm(params);
  EXPECT_EQ(four.strategy, "ring-segment");
  EXPECT_GT(four.mail_posted, 0u);
  EXPECT_EQ(four.delivery_digest, serial.delivery_digest);
  EXPECT_EQ(four.drop_digest, serial.drop_digest);
}

TEST(ShardedStorm, MidStormSaveRestoreIsBitExact) {
  const ShardedStormParams params = composite_params(21, 2);

  // Uninterrupted reference.
  ShardedStormRun plain(params);
  plain.arm();
  const ShardedStormResult reference = plain.finish();

  // Run to the middle of the storm (an arbitrary, non-barrier-aligned
  // time: the engine quiesces at its own window barrier), snapshot,
  // and resume in a fresh run.
  ShardedStormRun first(params);
  first.arm();
  first.run_to(params.storm_start + (params.storm_end - params.storm_start) / 2);
  snapshot::Writer w;
  first.save(w);
  const std::vector<std::byte> bytes = snapshot::file_bytes(w, 1);

  std::string error;
  auto reader = snapshot::Reader::from_bytes(bytes, &error);
  ASSERT_TRUE(reader.has_value()) << error;
  ShardedStormRun resumed(params);
  resumed.restore(*reader);
  const ShardedStormResult after = resumed.finish();

  EXPECT_EQ(after.delivery_digest, reference.delivery_digest);
  EXPECT_EQ(after.drop_digest, reference.drop_digest);
  EXPECT_EQ(after.deliveries, reference.deliveries);
  EXPECT_EQ(after.drops, reference.drops);
}

TEST(ShardedStorm, RestoreRefusesDifferentShardCount) {
  ShardedStormRun saved(composite_params(33, 2));
  saved.arm();
  saved.run_to(microseconds(50));
  snapshot::Writer w;
  saved.save(w);
  const std::vector<std::byte> bytes = snapshot::file_bytes(w, 1);

  std::string error;
  auto reader = snapshot::Reader::from_bytes(bytes, &error);
  ASSERT_TRUE(reader.has_value()) << error;
  ShardedStormRun other(composite_params(33, 4));
  try {
    other.restore(*reader);
    FAIL() << "restore at a different shard count must be refused";
  } catch (const std::invalid_argument& refusal) {
    EXPECT_NE(std::string(refusal.what()).find("shard"), std::string::npos)
        << refusal.what();
  }
}

TEST(ShardedStorm, SeedChangesDigest) {
  const ShardedStormResult a = run_sharded_storm(composite_params(1, 2));
  const ShardedStormResult b = run_sharded_storm(composite_params(2, 2));
  EXPECT_NE(a.delivery_digest, b.delivery_digest);
}

}  // namespace
}  // namespace quartz
