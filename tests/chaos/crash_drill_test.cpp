// Crash-fault injection: SIGKILL a mid-storm child, restore from its
// last periodic checkpoint, and demand bit-exact digests — dying must
// be observationally indistinguishable from never dying.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "chaos/crash_drill.hpp"
#include "chaos/storm_run.hpp"
#include "common/units.hpp"
#include "snapshot/io.hpp"

namespace quartz::chaos {
namespace {

namespace fs = std::filesystem;

CrashDrillParams quick_drill(std::uint64_t seed, const std::string& dir) {
  CrashDrillParams params;
  params.storm.seed = seed;
  params.storm.packets = 10'000;
  params.storm.storm_start = milliseconds(10);
  params.storm.storm_end = milliseconds(40);
  params.storm.quiesce_at = milliseconds(60);
  params.storm.run_until = milliseconds(110);
  params.checkpoint_dir = dir;
  params.checkpoint_every_events = 30'000;
  return params;
}

TEST(CrashDrill, KilledChildRecoversBitExactly) {
  const std::string dir = (fs::temp_directory_path() / "crash_drill_test").string();
  fs::remove_all(dir);
  const CrashDrillReport report = run_crash_drill(quick_drill(7, dir));
  EXPECT_TRUE(report.child_killed);
  EXPECT_GT(report.checkpoints_written, 0u);
  EXPECT_GT(report.restored_sequence, 0u);
  EXPECT_TRUE(report.digests_match) << report.summary();
  EXPECT_TRUE(report.recovered.passed()) << report.recovered.summary();
  EXPECT_TRUE(report.warnings.empty()) << report.warnings;
  EXPECT_TRUE(report.passed()) << report.summary();
  fs::remove_all(dir);
}

TEST(CrashDrill, HybridStormSurvivesTheKill) {
  // Hybrid slice of the drill: the fluid background's epoch timer and
  // bias vector must survive SIGKILL + restore-from-checkpoint with the
  // same bit-exactness guarantee as the packet state.
  const std::string dir = (fs::temp_directory_path() / "crash_drill_hybrid").string();
  fs::remove_all(dir);
  CrashDrillParams params = quick_drill(13, dir);
  params.storm.hybrid_background = true;
  const CrashDrillReport report = run_crash_drill(params);
  EXPECT_TRUE(report.child_killed);
  EXPECT_TRUE(report.digests_match) << report.summary();
  EXPECT_GT(report.recovered.fluid_epochs, 0u);
  EXPECT_EQ(report.recovered.fluid_epochs, report.reference.fluid_epochs);
  EXPECT_EQ(report.recovered.fluid_digest, report.reference.fluid_digest);
  EXPECT_TRUE(report.passed()) << report.summary();
  fs::remove_all(dir);
}

TEST(CrashDrill, RecoversPastACorruptedNewestCheckpoint) {
  // Run the drill, then damage the newest checkpoint on disk and prove
  // the fallback still restores (from the previous one) with a warning.
  const std::string dir = (fs::temp_directory_path() / "crash_drill_corrupt").string();
  fs::remove_all(dir);
  CrashDrillParams params = quick_drill(11, dir);
  params.checkpoint_every_events = 20'000;
  const CrashDrillReport clean = run_crash_drill(params);
  ASSERT_TRUE(clean.passed()) << clean.summary();
  ASSERT_GT(clean.checkpoints_written, 1u);

  // Truncate the newest checkpoint: a torn write at the worst moment.
  const auto files = snapshot::list_checkpoints(dir);
  ASSERT_FALSE(files.empty());
  fs::resize_file(files.back().path, fs::file_size(files.back().path) / 2);

  std::string warnings;
  auto reader = snapshot::load_latest_intact(dir, &warnings);
  ASSERT_TRUE(reader.has_value());
  EXPECT_LT(reader->sequence(), files.back().sequence);
  EXPECT_NE(warnings.find("rejected"), std::string::npos) << warnings;

  StormRun resumed(params.storm);
  resumed.restore(*reader);
  const StormReport report = resumed.finish();
  EXPECT_EQ(report.delivery_digest, clean.reference.delivery_digest);
  EXPECT_EQ(report.drop_digest, clean.reference.drop_digest);
  EXPECT_TRUE(report.passed()) << report.summary();
  fs::remove_all(dir);
}

}  // namespace
}  // namespace quartz::chaos
