#include "chaos/slo_storm.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace quartz::chaos {
namespace {

SloStormParams smoke_params(std::uint64_t seed) {
  SloStormParams p;
  p.seed = seed;
  p.duration = milliseconds(20);
  p.drain = milliseconds(8);
  p.arrivals_per_sec = 150'000.0;
  p.storm_start = milliseconds(5);
  p.storm_end = milliseconds(11);
  p.recovery_slack = milliseconds(4);
  p.shift_at = milliseconds(7);
  return p;
}

TEST(SloStorm, DefendedServeSurvivesAStormThatReconfiguresMidFlight) {
  const SloStormReport r = run_slo_storm(smoke_params(3));
  EXPECT_TRUE(r.passed()) << r.summary();
  EXPECT_TRUE(r.violations.empty());
  // The storm stressed the stack for real: faults manufactured retries
  // and the mid-storm shift re-groomed the oracle.
  EXPECT_GT(r.serve.retries, 0u) << r.summary();
  EXPECT_EQ(r.serve.reconfigurations, 1u);
  EXPECT_GT(r.serve.pins_applied + r.serve.pins_rejected, 0u);
  EXPECT_LE(r.serve.retry_amplification, 2.0);
  EXPECT_GT(r.serve.in_deadline, 0u);
}

TEST(SloStorm, ReportsAreDeterministicPerSeed) {
  const SloStormReport a = run_slo_storm(smoke_params(11));
  const SloStormReport b = run_slo_storm(smoke_params(11));
  EXPECT_EQ(a.serve.arrivals, b.serve.arrivals);
  EXPECT_EQ(a.serve.completed, b.serve.completed);
  EXPECT_EQ(a.serve.retries, b.serve.retries);
  EXPECT_EQ(a.packets_sent, b.packets_sent);
  EXPECT_EQ(a.breaches_after_recovery, b.breaches_after_recovery);
}

TEST(SloStorm, SweepIsIdenticalForEveryJobsValue) {
  SloStormParams base = smoke_params(5);
  const auto serial = run_slo_sweep(base, 3, 1);
  const auto parallel = run_slo_sweep(base, 3, 3);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].seed, parallel[i].seed);
    EXPECT_EQ(serial[i].serve.completed, parallel[i].serve.completed);
    EXPECT_EQ(serial[i].serve.retries, parallel[i].serve.retries);
    EXPECT_EQ(serial[i].packets_sent, parallel[i].packets_sent);
  }
}

TEST(SloStorm, ValidatesPhaseOrdering) {
  SloStormParams p = smoke_params(1);
  p.shift_at = p.storm_end;  // shift must land mid-storm
  EXPECT_THROW(run_slo_storm(p), std::invalid_argument);
  p = smoke_params(1);
  p.recovery_slack = p.duration;  // recovery point past the serving end
  EXPECT_THROW(run_slo_storm(p), std::invalid_argument);
}

}  // namespace
}  // namespace quartz::chaos
