#include "chaos/soak.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace quartz::chaos {
namespace {

/// A short storm that still contains every fault class; tier-1 smoke.
StormParams smoke_params(DetectionMode mode, std::uint64_t seed) {
  StormParams p;
  p.seed = seed;
  p.mode = mode;
  p.packets = 9'000;  // 90 ms of traffic at the 10 us cadence
  p.storm_start = milliseconds(10);
  p.storm_end = milliseconds(30);
  p.quiesce_at = milliseconds(40);
  p.run_until = milliseconds(150);
  return p;
}

TEST(ChaosStorm, HealthMonitorModeSurvivesASmokeStorm) {
  const StormReport r = run_storm(smoke_params(DetectionMode::kHealthMonitor, 7));
  EXPECT_TRUE(r.passed()) << r.summary();
  EXPECT_TRUE(r.violations.empty());
  EXPECT_EQ(r.sent, 9'000u);
  EXPECT_EQ(r.delivered + r.queue_drops + r.link_down_drops + r.corrupted_drops, r.sent);
  // The storm actually stormed: cuts happened and were all repaired,
  // gray failures corrupted packets, probes drove the detector.
  EXPECT_GT(r.cuts, 0u);
  EXPECT_EQ(r.cuts, r.repairs);
  EXPECT_GT(r.degradations, 0u);
  EXPECT_EQ(r.degradations, r.restorations);
  EXPECT_GT(r.probes, 0u);
  EXPECT_GT(r.missed_probes, 0u);
  EXPECT_GT(r.deaths, 0u);
  EXPECT_EQ(r.deaths, r.revivals);  // converged: nothing left dead
  EXPECT_LE(r.max_hops, r.hop_bound);
}

TEST(ChaosStorm, FixedDelayModeSurvivesASmokeStorm) {
  const StormReport r = run_storm(smoke_params(DetectionMode::kFixedDelay, 7));
  EXPECT_TRUE(r.passed()) << r.summary();
  EXPECT_EQ(r.sent, 9'000u);
  EXPECT_GT(r.cuts, 0u);
  EXPECT_EQ(r.cuts, r.repairs);
  // No probe plane in this mode.
  EXPECT_EQ(r.probes, 0u);
}

TEST(ChaosStorm, StormsAreDeterministicPerSeed) {
  const StormParams p = smoke_params(DetectionMode::kHealthMonitor, 21);
  const StormReport a = run_storm(p);
  const StormReport b = run_storm(p);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.link_down_drops, b.link_down_drops);
  EXPECT_EQ(a.corrupted_drops, b.corrupted_drops);
  EXPECT_EQ(a.cuts, b.cuts);
  EXPECT_EQ(a.deaths, b.deaths);
  EXPECT_EQ(a.summary(), b.summary());
}

TEST(ChaosStorm, RejectsIncoherentPhaseOrdering) {
  StormParams p = smoke_params(DetectionMode::kHealthMonitor, 1);
  p.storm_end = p.storm_start;  // empty storm window
  EXPECT_THROW(run_storm(p), std::invalid_argument);

  p = smoke_params(DetectionMode::kHealthMonitor, 1);
  p.quiesce_at = p.run_until + 1;  // quiescence after the horizon
  EXPECT_THROW(run_storm(p), std::invalid_argument);

  p = smoke_params(DetectionMode::kHealthMonitor, 1);
  p.packets = 100;  // traffic ends before quiescence: nothing to judge
  EXPECT_THROW(run_storm(p), std::invalid_argument);

  p = smoke_params(DetectionMode::kHealthMonitor, 1);
  p.switches = 2;  // no mesh to detour over
  EXPECT_THROW(run_storm(p), std::invalid_argument);
}

}  // namespace
}  // namespace quartz::chaos
