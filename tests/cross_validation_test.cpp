// Cross-validation between the analytic configurator model and the
// packet-level simulator: two independent implementations of the same
// physics should agree on the small-datacenter comparison Table 8
// leads with.
#include <gtest/gtest.h>

#include "core/configurator.hpp"
#include "routing/oracle.hpp"
#include "sim/network.hpp"
#include "sim/workloads.hpp"
#include "topo/builders.hpp"

namespace quartz {
namespace {

/// Mean packet latency of uniform random traffic at roughly the given
/// per-host offered load over a fabric.
double simulate_mean_latency_us(const topo::BuiltTopology& fabric, double per_host_gbps,
                                std::uint64_t seed) {
  routing::EcmpRouting routing(fabric.graph);
  routing::EcmpOracle oracle(routing);
  sim::Network net(fabric, oracle);
  SampleSet samples;
  const int task = net.new_task(
      [&samples](const sim::Packet&, TimePs l) { samples.add(to_microseconds(l)); });
  Rng rng(seed);
  std::vector<std::unique_ptr<sim::PoissonFlow>> flows;
  sim::FlowParams flow;
  flow.rate = gigabits_per_second(per_host_gbps);
  flow.stop = milliseconds(20);
  // Permutation traffic: every host sends to one other host.
  for (std::size_t i = 0; i < fabric.hosts.size(); ++i) {
    flows.push_back(std::make_unique<sim::PoissonFlow>(
        net, fabric.hosts[i], fabric.hosts[(i + 7) % fabric.hosts.size()], task, flow,
        rng.fork()));
  }
  net.run_until(flow.stop + milliseconds(1));
  return samples.mean();
}

TEST(CrossValidation, SmallDcLatencyReductionMatchesConfigurator) {
  // Table 8's small/low row says a single Quartz ring cuts a 2-tier
  // tree's latency by ~33% (one ULL hop of three removed).  Build both
  // fabrics at the same scale, run the same light permutation load
  // through the packet simulator, and require the measured reduction to
  // land in the same band as the analytic estimate.
  topo::TwoTierParams tree_params;
  tree_params.tors = 8;
  tree_params.hosts_per_tor = 8;
  tree_params.links.fabric_rate = gigabits_per_second(10);  // small DCs run 10G end to end
  const auto tree = topo::two_tier_tree(tree_params);

  topo::QuartzRingParams ring_params;
  ring_params.switches = 8;
  ring_params.hosts_per_switch = 8;
  const auto ring = topo::quartz_ring(ring_params);

  const double tree_us = simulate_mean_latency_us(tree, 0.4, 5);
  const double ring_us = simulate_mean_latency_us(ring, 0.4, 5);
  const double simulated_reduction = 1.0 - ring_us / tree_us;

  const double analytic_reduction =
      1.0 - core::estimate_latency_us(core::DesignChoice::kSingleQuartzRing,
                                      core::Utilization::kLow) /
                core::estimate_latency_us(core::DesignChoice::kTwoTierTree,
                                          core::Utilization::kLow);

  EXPECT_NEAR(analytic_reduction, 0.33, 0.02);
  // Two independent models of the same comparison: agree within 12
  // percentage points (the analytic model folds in utilization effects
  // the light simulated load does not reach).
  EXPECT_NEAR(simulated_reduction, analytic_reduction, 0.12);
  EXPECT_GT(simulated_reduction, 0.2);
}

TEST(CrossValidation, CoreSwitchDominanceAgreesAcrossModels) {
  // Both models must attribute the three-tier tree's latency mostly to
  // the 6 us store-and-forward core.
  const double tree_analytic =
      core::estimate_latency_us(core::DesignChoice::kThreeTierTree, core::Utilization::kLow);
  const auto tree = topo::three_tier_tree({});
  const double tree_simulated = simulate_mean_latency_us(tree, 0.3, 9);
  // The analytic model assumes 30% locality; the simulated permutation
  // keeps ~50% of traffic inside a pod with 2 pods, so the simulated
  // mean sits below the analytic one — but both must exceed the
  // no-core bound (3 ULL hops ~ 1.2 us) by several microseconds.
  EXPECT_GT(tree_analytic, 4.0);
  EXPECT_GT(tree_simulated, 3.0);
  EXPECT_LT(std::abs(tree_analytic - tree_simulated), 4.0);
}

}  // namespace
}  // namespace quartz
