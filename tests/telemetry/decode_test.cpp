#include "telemetry/decode.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "sim/experiments.hpp"
#include "sim/packet.hpp"
#include "telemetry/binary_stream.hpp"
#include "telemetry/stream_sink.hpp"

namespace quartz::telemetry {
namespace {

using sim::Fabric;
using sim::TaskExperimentParams;

/// Replays a scripted event sequence that exercises the full stream
/// vocabulary — including the wide transmit/forward variants and the
/// invariants the decoder reconstructs from (queued accumulation, hop
/// counting, arrival last-bit).  Called once per sink so both the
/// direct and the decoded path see identical arguments.
void drive(TelemetrySink& sink) {
  sim::Packet a;
  a.id = 42;
  a.task = 3;
  a.size = bytes(400);
  a.key.src = 1;
  a.key.dst = 9;
  a.created = 1'000'000;
  sink.on_send(a, 1'000'500);
  a.queued += 2'000;  // the live network bumps queued before on_transmit
  sink.on_transmit(a, 1, 5, 0, 1'000'500, 1'002'500, 1'322'500);
  sink.on_arrival(a, 7, 1'322'600, 1'642'600);
  ++a.hops;  // switch hops bump before on_forward
  sink.on_forward(a, 7, HopKind::kCutThrough, 1'322'600, 1'642'600, 1'322'750);
  // A 5 ms queue wait overflows the packed 32-bit field: wide variant.
  a.queued += 5'000'000'000;
  sink.on_transmit(a, 7, 12, 1, 1'322'750, 5'001'322'750, 5'001'642'750);
  sink.on_arrival(a, 9, 5'001'642'850, 5'001'962'850);
  sink.on_delivery(a, 5'002'000'000, 5'001'000'000);

  sim::Packet b;
  b.id = 43;
  b.task = 3;
  b.size = bytes(1500);
  b.key.src = 2;
  b.key.dst = 5;
  b.created = 5'002'100'000;
  sink.on_send(b, 5'002'100'400);
  sink.on_drop(b, DropReason::kQueueOverflow, 5'003'000'000);

  sim::Packet c;
  c.id = 44;
  c.task = 0;
  c.size = bytes(64);
  c.key.src = 3;
  c.key.dst = 8;
  c.created = 5'004'000'000;
  sink.on_send(c, 5'004'000'100);
  sink.on_transmit(c, 3, 2, 0, 5'004'000'100, 5'004'000'100, 5'004'051'300);
  sink.on_arrival(c, 6, 5'004'051'400, 5'004'102'600);
  // A >1 ms forwarding decision overflows the packed 30-bit delta.
  ++c.hops;
  sink.on_forward(c, 6, HopKind::kStoreAndForward, 5'004'051'400, 5'004'102'600,
                  7'004'051'400);
  sink.on_transmit(c, 6, 9, 1, 7'004'051'400, 7'004'051'400, 7'004'102'600);
  sink.on_arrival(c, 11, 7'004'102'700, 7'004'153'900);
  // Server relays do not count as switch hops.
  sink.on_forward(c, 11, HopKind::kServerRelay, 7'004'102'700, 7'004'153'900,
                  7'004'200'000);
  sink.on_delivery(c, 7'005'000'000, 2'001'000'000);

  sink.on_link_state(3, false, 7'005'100'000);
  sink.on_link_detected(3, true, 7'005'600'000);
  sink.on_link_degraded(4, 0.12345, 7'006'000'000);
  sink.on_probe(4, true, 7'006'200'000);
  sink.on_probe(4, false, 7'006'400'000);
  sink.on_health_transition(4, routing::LinkHealth::kHealthy, routing::LinkHealth::kLossy,
                            7'006'500'000);
  sink.on_flap_damped(4, 7'010'000'000, 7'006'600'000);
  sink.on_link_state(3, true, 7'007'000'000);
}

std::string decode_to_jsonl(std::istream& in, DecodeStats* stats_out = nullptr) {
  std::ostringstream jsonl;
  JsonlEventWriter writer(jsonl);
  std::vector<TelemetrySink*> sinks{&writer};
  in.seekg(0);
  const DecodeStats stats = decode_streams({&in}, sinks);
  if (stats_out != nullptr) *stats_out = stats;
  return jsonl.str();
}

TEST(Decode, FullVocabularyRoundTripsByteIdentical) {
  std::ostringstream direct;
  {
    JsonlEventWriter writer(direct);
    drive(writer);
  }
  std::stringstream file(std::ios::in | std::ios::out | std::ios::binary);
  {
    StreamFile sink(file);
    BinaryStream stream(sink);
    BinaryStreamSink events(stream);
    drive(events);
    stream.finish();
  }
  DecodeStats stats;
  const std::string decoded = decode_to_jsonl(file, &stats);
  EXPECT_TRUE(stats.gaps.empty());
  EXPECT_EQ(stats.orphan_records, 0u);
  EXPECT_EQ(direct.str(), decoded);
  EXPECT_EQ(fnv1a(direct.str().data(), direct.str().size()),
            fnv1a(decoded.data(), decoded.size()));
}

TEST(Decode, ExperimentCaptureMatchesTheLegacyDirectExport) {
  TaskExperimentParams params;
  params.duration = milliseconds(1);

  std::ostringstream direct;
  {
    TaskExperimentParams p = params;
    p.telemetry.events_jsonl = &direct;
    run_task_experiment(Fabric::kQuartzInJellyfish, {}, p);
  }
  std::stringstream file(std::ios::in | std::ios::out | std::ios::binary);
  {
    StreamFile sink(file);
    TaskExperimentParams p = params;
    p.telemetry.stream = &sink;
    run_task_experiment(Fabric::kQuartzInJellyfish, {}, p);
  }
  DecodeStats stats;
  const std::string decoded = decode_to_jsonl(file, &stats);
  EXPECT_TRUE(stats.gaps.empty());
  EXPECT_GT(stats.records, 0u);
  ASSERT_FALSE(direct.str().empty());
  // The determinism digest CI relies on: decoded == direct, byte for byte.
  EXPECT_EQ(fnv1a(direct.str().data(), direct.str().size()),
            fnv1a(decoded.data(), decoded.size()));
  EXPECT_TRUE(direct.str() == decoded);
}

/// A three-page probe-only capture (no cross-record packet state, so
/// damage to one page never orphans another).
std::string probe_capture(std::uint64_t records) {
  std::stringstream file(std::ios::in | std::ios::out | std::ios::binary);
  StreamFile sink(file);
  BinaryStream stream(sink);
  BinaryStreamSink events(stream);
  for (std::uint64_t i = 0; i < records; ++i) {
    events.on_probe(static_cast<topo::LinkId>(i % 31), true, static_cast<TimePs>(i * 64));
  }
  stream.finish();
  return file.str();
}

// 16-byte probe records: 4093 fill one page, so the layout below is
// header(16) + three pages of 40 + payload each.
constexpr std::uint64_t kPerPage = 4093;
constexpr std::size_t kFullPageBytes = sizeof(PageHeader) + kPerPage * 16;

TEST(Decode, TruncatedTailReportsAGapAndKeepsEarlierPages) {
  std::string buf = probe_capture(10000);
  buf.resize(buf.size() - 100);  // tear the last page's tail off
  std::istringstream in(buf, std::ios::binary);
  DecodeStats stats;
  decode_to_jsonl(in, &stats);
  ASSERT_EQ(stats.gaps.size(), 1u);
  EXPECT_EQ(stats.gaps.front().reason, "truncated page");
  EXPECT_EQ(stats.pages, 2u);
  EXPECT_EQ(stats.records, 2 * kPerPage);
}

TEST(Decode, CorruptedPagePayloadFailsItsCrcAndIsSkipped) {
  std::string buf = probe_capture(10000);
  buf[sizeof(StreamFileHeader) + sizeof(PageHeader) + 100] ^= 0x5A;  // page 0 payload
  std::istringstream in(buf, std::ios::binary);
  DecodeStats stats;
  decode_to_jsonl(in, &stats);
  ASSERT_FALSE(stats.gaps.empty());
  EXPECT_EQ(stats.gaps.front().reason, "page crc mismatch");
  EXPECT_EQ(stats.gaps.front().stream_id, 0u);
  // The two undamaged pages decode in full.
  EXPECT_EQ(stats.pages, 2u);
  EXPECT_EQ(stats.records, 10000 - kPerPage);
}

TEST(Decode, LostPageSyncResyncsOnTheNextPageMagic) {
  std::string buf = probe_capture(10000);
  // Smash the middle page's magic: the scanner loses sync, walks
  // 8-aligned until page 2's magic, and reports both the lost region
  // and the resulting sequence jump.
  buf[sizeof(StreamFileHeader) + kFullPageBytes] ^= 0xFF;
  std::istringstream in(buf, std::ios::binary);
  DecodeStats stats;
  decode_to_jsonl(in, &stats);
  ASSERT_GE(stats.gaps.size(), 2u);
  EXPECT_EQ(stats.gaps[0].reason, "lost page sync");
  bool sequence_jump = false;
  for (const StreamGap& gap : stats.gaps) {
    sequence_jump |= gap.reason == "page sequence jump (pages lost)";
  }
  EXPECT_TRUE(sequence_jump);
  EXPECT_EQ(stats.pages, 2u);
  EXPECT_EQ(stats.records, 10000 - kPerPage);
}

TEST(Decode, RecordsOrphanedByAGapAreCountedAndDropped) {
  std::stringstream file(std::ios::in | std::ios::out | std::ios::binary);
  {
    StreamFile sink(file);
    BinaryStream stream(sink);
    BinaryStreamSink events(stream);
    sim::Packet p;
    p.id = 1;
    p.task = 0;
    p.size = bytes(400);
    p.key.src = 0;
    p.key.dst = 1;
    p.created = 1000;
    events.on_send(p, 1500);
    // Pad until the send's page seals; its delivery lands in page 1.
    std::uint64_t i = 0;
    while (stream.pages_sealed() == 0) {
      events.on_probe(2, true, static_cast<TimePs>(2000 + ++i));
    }
    events.on_delivery(p, 900'000'000, 899'999'000);
    stream.finish();
  }
  std::string buf = file.str();
  buf[sizeof(StreamFileHeader) + sizeof(PageHeader) + 8] ^= 0x5A;  // kill page 0
  std::istringstream in(buf, std::ios::binary);
  DecodeStats stats;
  const std::string decoded = decode_to_jsonl(in, &stats);
  ASSERT_FALSE(stats.gaps.empty());
  EXPECT_EQ(stats.orphan_records, 1u);  // the delivery lost its send
  EXPECT_EQ(decoded.find("\"ev\":\"delivery\""), std::string::npos);
}

TEST(Decode, GarbageInputReportsABadHeaderNotACrash) {
  std::istringstream garbage("this is not a qtz stream, not even close", std::ios::binary);
  DecodeStats stats;
  decode_to_jsonl(garbage, &stats);
  ASSERT_FALSE(stats.gaps.empty());
  EXPECT_EQ(stats.gaps.front().reason, "bad stream file header");
  EXPECT_EQ(stats.records, 0u);

  std::istringstream empty(std::string(), std::ios::binary);
  DecodeStats empty_stats;
  decode_to_jsonl(empty, &empty_stats);
  EXPECT_EQ(empty_stats.records, 0u);
}

TEST(Decode, ReplicaCaptureIsByteStableAcrossJobs) {
  const auto capture = [](int jobs) {
    std::stringstream file(std::ios::in | std::ios::out | std::ios::binary);
    {
      StreamFile sink(file);
      TaskExperimentParams params;
      params.duration = milliseconds(1);
      params.telemetry.stream = &sink;
      sim::SweepOptions sweep;
      sweep.jobs = jobs;
      sim::run_task_replicas(Fabric::kQuartzInJellyfish, {}, params, 3, sweep);
    }
    DecodeStats stats;
    const std::string jsonl = decode_to_jsonl(file, &stats);
    EXPECT_TRUE(stats.gaps.empty());
    EXPECT_EQ(stats.streams, 3u);
    return jsonl;
  };
  // Pages from concurrent workers interleave differently in the file,
  // but the (time, stream, seq) merge makes the decode independent of
  // that interleaving — the multi-worker determinism contract.
  const std::string serial = capture(1);
  ASSERT_FALSE(serial.empty());
  EXPECT_TRUE(serial == capture(2));
  EXPECT_TRUE(serial == capture(8));
}

}  // namespace
}  // namespace quartz::telemetry
