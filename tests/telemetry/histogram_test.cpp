#include "telemetry/histogram.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

namespace quartz::telemetry {
namespace {

TEST(StreamingHistogram, ExactMoments) {
  StreamingHistogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);

  h.add(3.0);
  h.add(1.0);
  h.add(8.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 12.0);
  EXPECT_DOUBLE_EQ(h.mean(), 4.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 8.0);
}

TEST(StreamingHistogram, WeightedAdd) {
  StreamingHistogram h;
  h.add(2.0, 10);
  EXPECT_EQ(h.count(), 10u);
  EXPECT_DOUBLE_EQ(h.sum(), 20.0);
  EXPECT_DOUBLE_EQ(h.percentile(50), 2.0);
}

TEST(StreamingHistogram, ExtremesAreExact) {
  StreamingHistogram h;
  for (int i = 1; i <= 1000; ++i) h.add(static_cast<double>(i) * 0.37);
  EXPECT_DOUBLE_EQ(h.percentile(0), h.min());
  EXPECT_DOUBLE_EQ(h.percentile(100), h.max());
}

TEST(StreamingHistogram, QuantileErrorWithinOneSubBucket) {
  // Against the exact empirical quantile of a log-normal-ish stream:
  // the relative error must stay under the sub-bucket width (6.25%).
  std::mt19937_64 rng(42);
  std::lognormal_distribution<double> dist(2.0, 0.8);
  StreamingHistogram h;
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) {
    const double v = dist(rng);
    samples.push_back(v);
    h.add(v);
  }
  std::sort(samples.begin(), samples.end());
  for (double p : {10.0, 50.0, 90.0, 99.0, 99.9}) {
    const std::size_t rank = static_cast<std::size_t>(
        p / 100.0 * static_cast<double>(samples.size() - 1));
    const double exact = samples[rank];
    const double approx = h.percentile(p);
    EXPECT_NEAR(approx, exact, exact * 0.0625 + 1e-9) << "p" << p;
  }
}

TEST(StreamingHistogram, NonPositiveValuesLandInUnderflow) {
  StreamingHistogram h;
  h.add(0.0);
  h.add(-5.0);
  h.add(10.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.min(), -5.0);
  EXPECT_DOUBLE_EQ(h.max(), 10.0);
  // The underflow bucket sorts before every finite bucket.
  EXPECT_DOUBLE_EQ(h.percentile(0), -5.0);
  EXPECT_DOUBLE_EQ(h.percentile(100), 10.0);
}

TEST(StreamingHistogram, MergeMatchesCombinedStream) {
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> dist(0.1, 500.0);
  StreamingHistogram a, b, all;
  for (int i = 0; i < 5000; ++i) {
    const double v = dist(rng);
    (i % 2 == 0 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  // Summation order differs between the split and combined streams, so
  // allow for floating-point non-associativity.
  EXPECT_NEAR(a.sum(), all.sum(), all.sum() * 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
  for (double p : {25.0, 50.0, 75.0, 99.0}) {
    EXPECT_DOUBLE_EQ(a.percentile(p), all.percentile(p)) << "p" << p;
  }
}

TEST(StreamingHistogram, BucketBoundsBracketTheirValues) {
  std::mt19937_64 rng(3);
  std::uniform_real_distribution<double> exp_dist(-30.0, 30.0);
  for (int i = 0; i < 1000; ++i) {
    const double v = std::exp2(exp_dist(rng));
    const int idx = StreamingHistogram::bucket_index(v);
    ASSERT_GE(idx, 0);
    ASSERT_LT(idx, StreamingHistogram::kBuckets);
    EXPECT_GE(v, StreamingHistogram::bucket_lower(idx));
    EXPECT_LT(v, StreamingHistogram::bucket_upper(idx) * (1 + 1e-12));
  }
}

TEST(StreamingHistogram, BucketIndexIsMonotone) {
  int prev = -1;
  for (double v = 0.5; v < 1e6; v *= 1.031) {
    const int idx = StreamingHistogram::bucket_index(v);
    EXPECT_GE(idx, prev);
    prev = idx;
  }
}

TEST(P2Quantile, ExactBelowFiveSamples) {
  P2Quantile p50(0.5);
  p50.add(10.0);
  EXPECT_DOUBLE_EQ(p50.value(), 10.0);
  p50.add(20.0);
  p50.add(30.0);
  EXPECT_DOUBLE_EQ(p50.value(), 20.0);
}

TEST(P2Quantile, ConvergesOnUniformStream) {
  std::mt19937_64 rng(11);
  std::uniform_real_distribution<double> dist(0.0, 100.0);
  P2Quantile p90(0.9);
  for (int i = 0; i < 50000; ++i) p90.add(dist(rng));
  EXPECT_NEAR(p90.value(), 90.0, 2.0);
}

TEST(P2Quantile, TracksTailQuantile) {
  std::mt19937_64 rng(13);
  std::exponential_distribution<double> dist(1.0);
  P2Quantile p99(0.99);
  std::vector<double> samples;
  for (int i = 0; i < 100000; ++i) {
    const double v = dist(rng);
    p99.add(v);
    samples.push_back(v);
  }
  std::sort(samples.begin(), samples.end());
  const double exact = samples[static_cast<std::size_t>(0.99 * (samples.size() - 1))];
  EXPECT_NEAR(p99.value(), exact, exact * 0.1);
}

}  // namespace
}  // namespace quartz::telemetry
