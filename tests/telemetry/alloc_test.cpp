// Allocation-freedom contracts of the telemetry hot paths, enforced
// with a counting operator-new hook (which is why this suite lives in
// its own test binary: the hook is global to the process).
//
//  * a disabled MetricRegistry's scratch LatencyRecorder: zero heap
//    traffic per add — instrumented code in the off state is free;
//  * an enabled LatencyRecorder: StreamingHistogram is a fixed array,
//    so the steady state allocates nothing no matter how many samples;
//  * a synchronous BinaryStream: page roll reuses the single page
//    buffer, so capture allocates nothing after construction.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>
#include <sstream>

#include "telemetry/binary_stream.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/stream_sink.hpp"

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};

std::uint64_t alloc_count() { return g_alloc_count.load(std::memory_order_relaxed); }
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  const std::size_t al = std::max(static_cast<std::size_t>(align), sizeof(void*));
  if (posix_memalign(&p, al, size ? size : 1) == 0) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }

namespace quartz::telemetry {
namespace {

TEST(TelemetryAllocation, DisabledRegistryLatencyAddIsAllocationFree) {
  MetricRegistry registry(/*enabled=*/false);
  LatencyRecorder& latency = registry.latency("sim.packet_latency_us");
  latency.add_us(1.0);  // warm up
  const std::uint64_t before = alloc_count();
  for (int i = 0; i < 1'000'000; ++i) latency.add_us(static_cast<double>(i % 997));
  const std::uint64_t after = alloc_count();
  EXPECT_EQ(after - before, 0u);
}

TEST(TelemetryAllocation, EnabledRecorderSteadyStateIsAllocationFree) {
  MetricRegistry registry(/*enabled=*/true);
  LatencyRecorder& latency = registry.latency("task.latency_us");
  latency.add_us(3.5);  // any setup cost lands here, before the probe
  const std::uint64_t before = alloc_count();
  for (int i = 0; i < 1'000'000; ++i) latency.add_us(0.1 * static_cast<double>(i % 4096));
  const std::uint64_t after = alloc_count();
  EXPECT_EQ(after - before, 0u);
  EXPECT_EQ(latency.count(), 1'000'001u);
}

TEST(TelemetryAllocation, SyncBinaryStreamEmitAndPageRollAreAllocationFree) {
  NullPageSink sink;
  BinaryStream stream(sink);
  BinaryStreamSink events(stream);
  events.on_probe(1, true, 0);  // warm up
  const std::uint64_t before = alloc_count();
  // 16-byte records, 4093 per page: 100k emits cross ~24 page rolls.
  for (std::uint64_t i = 1; i <= 100'000; ++i) {
    events.on_probe(static_cast<topo::LinkId>(i % 31), (i & 1) != 0,
                    static_cast<TimePs>(i * 64));
  }
  const std::uint64_t after = alloc_count();
  EXPECT_EQ(after - before, 0u);
  EXPECT_GE(stream.pages_sealed(), 24u);
  stream.finish();
  EXPECT_EQ(stream.records(), 100'001u);
  EXPECT_EQ(stream.emergency_pages(), 0u);
}

}  // namespace
}  // namespace quartz::telemetry
