#include "telemetry/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "routing/ecmp.hpp"
#include "routing/oracle.hpp"
#include "sim/network.hpp"
#include "topo/builders.hpp"

namespace quartz::telemetry {
namespace {

struct Fixture {
  topo::BuiltTopology topo;
  std::unique_ptr<routing::EcmpRouting> routing;
  std::unique_ptr<routing::EcmpOracle> oracle;

  static Fixture single_switch(topo::SwitchModel model) {
    topo::SingleSwitchParams p;
    p.hosts = 4;
    p.host_rate = gigabits_per_second(10);
    p.switch_model = model;
    p.propagation = 0;
    Fixture f;
    f.topo = topo::single_switch(p);
    f.routing = std::make_unique<routing::EcmpRouting>(f.topo.graph);
    f.oracle = std::make_unique<routing::EcmpOracle>(*f.routing);
    return f;
  }
};

TEST(PacketTracer, CutThroughDecompositionIsExact) {
  // One ULL switch at 10 Gb/s, 400 B packet: 320 ns host serialization
  // on the critical path, 380 ns switching, nothing else.  The tracer
  // must reproduce the simulator's own arithmetic component by
  // component, with zero residual.
  auto f = Fixture::single_switch(topo::SwitchModel::ull());
  sim::Network net(f.topo, *f.oracle);
  PacketTracer tracer;
  net.add_sink(&tracer);
  const int task = net.new_task({});
  net.send(f.topo.hosts[0], f.topo.hosts[1], bytes(400), task, 1);
  net.run_until(milliseconds(1));

  const DecompositionSummary d = tracer.summary();
  ASSERT_EQ(d.packets, 1u);
  EXPECT_DOUBLE_EQ(d.host_us, 0.0);
  EXPECT_DOUBLE_EQ(d.queueing_us, 0.0);
  EXPECT_DOUBLE_EQ(d.serialization_us, 0.320);
  EXPECT_DOUBLE_EQ(d.switching_us, 0.380);
  EXPECT_DOUBLE_EQ(d.propagation_us, 0.0);
  EXPECT_DOUBLE_EQ(d.total_us, 0.700);
  EXPECT_DOUBLE_EQ(d.residual_us(), 0.0);
}

TEST(PacketTracer, StoreAndForwardChargesSerializationPerHop) {
  // A CCS pays the full receive time before forwarding: 320 ns receive
  // + 6 us forwarding + 320 ns egress = 6.64 us, with both wire times
  // attributed to serialization.
  auto f = Fixture::single_switch(topo::SwitchModel::ccs());
  sim::Network net(f.topo, *f.oracle);
  PacketTracer tracer;
  net.add_sink(&tracer);
  const int task = net.new_task({});
  net.send(f.topo.hosts[0], f.topo.hosts[1], bytes(400), task, 1);
  net.run_until(milliseconds(1));

  const DecompositionSummary d = tracer.summary();
  ASSERT_EQ(d.packets, 1u);
  EXPECT_DOUBLE_EQ(d.serialization_us, 0.640);
  EXPECT_DOUBLE_EQ(d.switching_us, 6.0);
  EXPECT_DOUBLE_EQ(d.total_us, 6.640);
  EXPECT_DOUBLE_EQ(d.residual_us(), 0.0);
}

TEST(PacketTracer, ComponentsTelescopeUnderLoad) {
  // With queueing in play the attribution still sums exactly to the
  // measured end-to-end latency for the aggregate.
  auto f = Fixture::single_switch(topo::SwitchModel::ull());
  sim::Network net(f.topo, *f.oracle);
  PacketTracer tracer;
  net.add_sink(&tracer);
  const int task = net.new_task({});
  for (int i = 0; i < 40; ++i) {
    net.send(f.topo.hosts[static_cast<std::size_t>(i % 3)], f.topo.hosts[3], bytes(400), task,
             static_cast<std::uint64_t>(i));
  }
  net.run_until(milliseconds(1));

  const DecompositionSummary d = tracer.summary();
  ASSERT_EQ(d.packets, 40u);
  EXPECT_GT(d.queueing_us, 0.0);
  EXPECT_NEAR(d.residual_us(), 0.0, 1e-9);
  EXPECT_GE(d.p99_total_us, d.total_us);
}

TEST(PacketTracer, SamplingTracesEveryNth) {
  auto f = Fixture::single_switch(topo::SwitchModel::ull());
  sim::Network net(f.topo, *f.oracle);
  PacketTracer::Options options;
  options.sample_every = 2;
  PacketTracer tracer(options);
  net.add_sink(&tracer);
  const int task = net.new_task({});
  for (int i = 0; i < 10; ++i) {
    net.send(f.topo.hosts[0], f.topo.hosts[1], bytes(400), task, 1);
    net.run_until(net.now() + microseconds(10));
  }
  EXPECT_EQ(tracer.completed(), 5u);
  EXPECT_EQ(tracer.in_flight(), 0u);
}

TEST(PacketTracer, PerTaskSummariesSeparate) {
  auto f = Fixture::single_switch(topo::SwitchModel::ull());
  sim::Network net(f.topo, *f.oracle);
  PacketTracer tracer;
  net.add_sink(&tracer);
  const int task_a = net.new_task({});
  const int task_b = net.new_task({});
  net.send(f.topo.hosts[0], f.topo.hosts[1], bytes(400), task_a, 1);
  net.send(f.topo.hosts[2], f.topo.hosts[3], bytes(400), task_b, 2);
  net.send(f.topo.hosts[1], f.topo.hosts[2], bytes(400), task_b, 3);
  net.run_until(milliseconds(1));

  EXPECT_EQ(tracer.tasks().size(), 2u);
  EXPECT_EQ(tracer.summary(task_a).packets, 1u);
  EXPECT_EQ(tracer.summary(task_b).packets, 2u);
  EXPECT_EQ(tracer.summary().packets, 3u);
}

TEST(PacketTracer, KeepsBoundedFullTraces) {
  auto f = Fixture::single_switch(topo::SwitchModel::ull());
  sim::Network net(f.topo, *f.oracle);
  PacketTracer::Options options;
  options.keep_traces = 2;
  PacketTracer tracer(options);
  net.add_sink(&tracer);
  const int task = net.new_task({});
  for (int i = 0; i < 5; ++i) {
    net.send(f.topo.hosts[0], f.topo.hosts[1], bytes(400), task, 1);
  }
  net.run_until(milliseconds(1));

  ASSERT_EQ(tracer.kept_traces().size(), 2u);
  const PacketTrace& t = tracer.kept_traces().front();
  ASSERT_EQ(t.hops.size(), 2u);  // host egress + switch egress
  EXPECT_EQ(t.host + t.queueing + t.serialization + t.switching + t.propagation, t.total());

  std::ostringstream os;
  tracer.write_jsonl(os);
  std::size_t lines = 0;
  for (const char c : os.str()) lines += c == '\n';
  EXPECT_EQ(lines, 2u);
}

TEST(PacketTracer, DroppedPacketsLeaveTheRollup) {
  auto f = Fixture::single_switch(topo::SwitchModel::ull());
  sim::SimConfig config;
  config.max_queue_delay = microseconds(1);
  sim::Network net(f.topo, *f.oracle, config);
  PacketTracer tracer;
  net.add_sink(&tracer);
  const int task = net.new_task({});
  for (int i = 0; i < 50; ++i) {
    net.send(f.topo.hosts[0], f.topo.hosts[1], bytes(400), task, 1);
  }
  net.run_until(milliseconds(1));

  EXPECT_GT(tracer.dropped(), 0u);
  EXPECT_EQ(tracer.completed() + tracer.dropped(), 50u);
  EXPECT_EQ(tracer.summary().packets, tracer.completed());
  EXPECT_EQ(tracer.in_flight(), 0u);
}

}  // namespace
}  // namespace quartz::telemetry
