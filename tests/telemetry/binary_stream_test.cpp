#include "telemetry/binary_stream.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/decode.hpp"
#include "telemetry/stream_sink.hpp"

namespace quartz::telemetry {
namespace {

// Reference CRC-32: the textbook bit-at-a-time loop the slicing-by-8
// implementation must agree with on every input length.
std::uint32_t crc32_reference(const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < bytes; ++i) {
    c ^= p[i];
    for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
  }
  return c ^ 0xFFFFFFFFu;
}

TEST(Crc32, KnownAnswerAndEmptyInput) {
  const char kat[] = "123456789";
  EXPECT_EQ(crc32(kat, 9), 0xCBF43926u);  // the IEEE 802.3 check value
  EXPECT_EQ(crc32(nullptr, 0), 0u);
}

TEST(Crc32, SlicedPathMatchesBitwiseReferenceAtEveryLength) {
  // Lengths straddling the 8-byte fast path and its byte-wise tail.
  std::vector<unsigned char> buf(257);
  std::uint32_t state = 0x12345678u;
  for (auto& b : buf) {
    state = state * 1664525u + 1013904223u;
    b = static_cast<unsigned char>(state >> 24);
  }
  for (std::size_t len = 0; len <= buf.size(); ++len) {
    ASSERT_EQ(crc32(buf.data(), len), crc32_reference(buf.data(), len)) << "len " << len;
  }
}

TEST(Crc32, SeedChainsAcrossSplits) {
  const char data[] = "quartz binary event stream";
  const std::size_t n = sizeof(data) - 1;
  const std::uint32_t whole = crc32(data, n);
  for (std::size_t split = 0; split <= n; ++split) {
    EXPECT_EQ(crc32(data + split, n - split, crc32(data, split)), whole) << "split " << split;
  }
}

TEST(Zigzag, RoundTripsTheFullRange) {
  for (const std::int64_t v :
       {std::int64_t{0}, std::int64_t{1}, std::int64_t{-1}, std::int64_t{1250},
        std::int64_t{-987654321}, std::numeric_limits<std::int64_t>::max(),
        std::numeric_limits<std::int64_t>::min()}) {
    EXPECT_EQ(zigzag_decode(zigzag_encode(v)), v) << v;
  }
  // Small magnitudes encode small, so common deltas stay in few bits.
  EXPECT_EQ(zigzag_encode(0), 0u);
  EXPECT_EQ(zigzag_encode(-1), 1u);
  EXPECT_EQ(zigzag_encode(1), 2u);
}

TEST(BinaryStream, OnDiskLayoutIsStable) {
  EXPECT_EQ(sizeof(StreamFileHeader), 16u);
  EXPECT_EQ(sizeof(PageHeader), 40u);
  EXPECT_EQ(sizeof(Page), kPageBytes);
  EXPECT_EQ(kPagePayloadBytes, kPageBytes - sizeof(PageHeader));
}

TEST(BinaryStream, SyncModeWritesAValidDecodableFile) {
  std::stringstream file(std::ios::in | std::ios::out | std::ios::binary);
  {
    StreamFile sink(file);
    BinaryStream::Options options;
    options.stream_id = 7;
    BinaryStream stream(sink, options);
    BinaryStreamSink events(stream);
    events.on_link_state(3, true, 1000);
    events.on_link_state(3, false, 2500);
    stream.finish();
    EXPECT_EQ(stream.records(), 2u);
    EXPECT_EQ(stream.pages_sealed(), 1u);
    EXPECT_EQ(sink.pages(), 1u);
  }

  const std::string buf = file.str();
  StreamFileHeader file_header;
  ASSERT_GE(buf.size(), sizeof(file_header) + sizeof(PageHeader));
  std::memcpy(&file_header, buf.data(), sizeof(file_header));
  EXPECT_EQ(file_header.magic, kStreamFileMagic);
  EXPECT_EQ(file_header.version, 1u);
  PageHeader page;
  std::memcpy(&page, buf.data() + sizeof(file_header), sizeof(page));
  EXPECT_EQ(page.magic, kPageMagic);
  EXPECT_EQ(page.stream_id, 7u);
  EXPECT_EQ(page.page_seq, 0u);
  EXPECT_EQ(page.first_record_seq, 0u);
  EXPECT_EQ(page.base_time_ps, 0);
  EXPECT_EQ(page.payload_bytes, 2u * 16u);  // two one-word records

  std::ostringstream jsonl;
  JsonlEventWriter writer(jsonl);
  std::vector<TelemetrySink*> sinks{&writer};
  file.seekg(0);
  const DecodeStats stats = decode_stream(file, sinks);
  EXPECT_TRUE(stats.gaps.empty());
  EXPECT_EQ(stats.records, 2u);
  EXPECT_EQ(jsonl.str(),
            "{\"ev\":\"link_state\",\"t\":1000,\"link\":3,\"up\":true}\n"
            "{\"ev\":\"link_state\",\"t\":2500,\"link\":3,\"up\":false}\n");
}

TEST(BinaryStream, PageRollKeepsEveryRecord) {
  // 16-byte records: 4093 per page, so 10000 records span three pages.
  constexpr std::uint64_t kRecords = 10000;
  std::stringstream file(std::ios::in | std::ios::out | std::ios::binary);
  {
    StreamFile sink(file);
    BinaryStream stream(sink);
    BinaryStreamSink events(stream);
    for (std::uint64_t i = 0; i < kRecords; ++i) {
      events.on_probe(static_cast<topo::LinkId>(i % 50), (i & 1) != 0,
                      static_cast<TimePs>(i * 64));
    }
    stream.finish();
    EXPECT_EQ(stream.records(), kRecords);
    EXPECT_EQ(stream.pages_sealed(), 3u);
  }
  std::vector<TelemetrySink*> sinks;
  file.seekg(0);
  const DecodeStats stats = decode_stream(file, sinks);
  EXPECT_TRUE(stats.gaps.empty()) << stats.gaps.front().reason;
  EXPECT_EQ(stats.pages, 3u);
  EXPECT_EQ(stats.records, kRecords);
  EXPECT_EQ(stats.streams, 1u);
}

TEST(BinaryStream, NonMonotoneTimesSurviveTheDeltaEncoding) {
  // Sim time is monotone per engine, but the format does not rely on
  // it: zigzag deltas carry time backwards too.
  std::stringstream file(std::ios::in | std::ios::out | std::ios::binary);
  {
    StreamFile sink(file);
    BinaryStream stream(sink);
    BinaryStreamSink events(stream);
    events.on_link_state(1, true, 5000);
    events.on_link_state(2, true, 1200);  // backwards
    events.on_link_state(3, true, 9000);
    stream.finish();
  }
  std::ostringstream jsonl;
  JsonlEventWriter writer(jsonl);
  std::vector<TelemetrySink*> sinks{&writer};
  file.seekg(0);
  const DecodeStats stats = decode_stream(file, sinks);
  EXPECT_TRUE(stats.gaps.empty());
  // A single stream replays in record order (the merge key only
  // arbitrates *between* streams), timestamps intact.
  EXPECT_EQ(jsonl.str(),
            "{\"ev\":\"link_state\",\"t\":5000,\"link\":1,\"up\":true}\n"
            "{\"ev\":\"link_state\",\"t\":1200,\"link\":2,\"up\":true}\n"
            "{\"ev\":\"link_state\",\"t\":9000,\"link\":3,\"up\":true}\n");
}

TEST(BinaryStream, BackgroundModeMatchesSyncByteForByte) {
  const auto run = [](bool background) {
    std::stringstream file(std::ios::in | std::ios::out | std::ios::binary);
    StreamFile sink(file);
    BinaryStream::Options options;
    options.stream_id = 5;
    options.background = background;
    BinaryStream stream(sink, options);
    BinaryStreamSink events(stream);
    for (std::uint64_t i = 0; i < 9000; ++i) {
      events.on_probe(static_cast<topo::LinkId>(i % 17), (i % 3) == 0,
                      static_cast<TimePs>(i * 320));
    }
    stream.finish();
    return file.str();
  };
  const std::string sync_bytes = run(false);
  const std::string background_bytes = run(true);
  EXPECT_EQ(sync_bytes.size(), background_bytes.size());
  EXPECT_TRUE(sync_bytes == background_bytes);
}

/// Blocks every accept() until released — starves the drainer so the
/// writer must grow its page pool.
class GatedSink final : public PageSink {
 public:
  explicit GatedSink(PageSink& inner) : inner_(&inner) {}
  void accept(const Page& page) override {
    while (gated_.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    inner_->accept(page);
  }
  void open() { gated_.store(false, std::memory_order_release); }

 private:
  PageSink* inner_;
  std::atomic<bool> gated_{true};
};

TEST(BinaryStream, EmergencyGrowthWhenTheDrainerFallsBehind) {
  // Nine pages of records against a blocked drainer: the free ring
  // holds seven spares, so the writer must allocate at least one
  // emergency page — and still lose nothing.
  constexpr std::uint64_t kRecords = 9 * 4093;
  std::stringstream file(std::ios::in | std::ios::out | std::ios::binary);
  {
    StreamFile inner(file);
    GatedSink sink(inner);
    BinaryStream::Options options;
    options.background = true;
    BinaryStream stream(sink, options);
    BinaryStreamSink events(stream);
    for (std::uint64_t i = 0; i < kRecords; ++i) {
      events.on_probe(static_cast<topo::LinkId>(i % 31), true, static_cast<TimePs>(i * 64));
    }
    EXPECT_GE(stream.emergency_pages(), 1u);
    sink.open();
    stream.finish();
    EXPECT_EQ(stream.records(), kRecords);
  }
  std::vector<TelemetrySink*> sinks;
  file.seekg(0);
  const DecodeStats stats = decode_stream(file, sinks);
  EXPECT_TRUE(stats.gaps.empty()) << stats.gaps.front().reason;
  EXPECT_EQ(stats.records, kRecords);
}

TEST(BinaryStream, FinishIsIdempotentAndEmptyStreamsWriteNoPages) {
  std::stringstream file(std::ios::in | std::ios::out | std::ios::binary);
  StreamFile sink(file);
  {
    BinaryStream stream(sink);
    stream.finish();
    stream.finish();
    EXPECT_EQ(stream.pages_sealed(), 0u);
  }  // destructor calls finish() again
  EXPECT_EQ(sink.pages(), 0u);
  // A file with only the header decodes clean: zero records, no gaps.
  std::vector<TelemetrySink*> sinks;
  file.seekg(0);
  const DecodeStats stats = decode_stream(file, sinks);
  EXPECT_TRUE(stats.gaps.empty());
  EXPECT_EQ(stats.records, 0u);
}

}  // namespace
}  // namespace quartz::telemetry
