// Crash durability of the fd-backed StreamFile: a writer killed with
// SIGKILL mid-capture leaves a stream the decoder reads cleanly up to
// the last sealed page — at worst a tail-truncation gap, never a
// corrupted prefix.
#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>

#include <csignal>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <unistd.h>

#include "sim/packet.hpp"
#include "telemetry/binary_stream.hpp"
#include "telemetry/decode.hpp"
#include "telemetry/stream_sink.hpp"

namespace quartz::telemetry {
namespace {

namespace fs = std::filesystem;

constexpr std::uint64_t kFlushedSends = 200'000;

/// Emits `count` send records starting at packet id / time `base`.
void emit_sends(BinaryStreamSink& sink, std::uint64_t base, std::uint64_t count) {
  for (std::uint64_t i = 0; i < count; ++i) {
    sim::Packet p;
    p.id = base + i;
    p.task = 1;
    p.size = bytes(400);
    p.key.src = 1;
    p.key.dst = 2;
    p.created = static_cast<TimePs>((base + i) * 1'000);
    sink.on_send(p, p.created + 500);
  }
}

TEST(StreamCrash, SigkilledWriterLeavesDecodablePrefix) {
  const std::string path = (fs::temp_directory_path() / "stream_crash_test.qtz").string();
  fs::remove(path);

  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: capture a stream, flush (fsync) a known prefix, keep
    // writing, then die without destructors or flushes.
    StreamFile file(path);
    if (!file.ok()) _exit(2);
    BinaryStream stream(file);  // synchronous: seal writes pages inline
    BinaryStreamSink sink(stream);
    emit_sends(sink, 0, kFlushedSends);
    stream.finish();  // seal the partial page so the prefix is complete
    file.flush();     // fsync: everything above must survive the kill
    // More records from a second stream, never flushed to stable
    // storage before the kill.
    BinaryStream::Options tail_options;
    tail_options.stream_id = 1;
    BinaryStream tail(file, tail_options);
    BinaryStreamSink tail_sink(tail);
    emit_sends(tail_sink, kFlushedSends, 20'000);
    ::raise(SIGKILL);
    _exit(3);  // unreachable
  }

  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  ASSERT_EQ(WTERMSIG(status), SIGKILL);

  // The decoder must read every record flushed before the kill; damage,
  // if any, is confined to tail gaps after the flushed prefix.
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.is_open());
  const DecodeStats stats = decode_stream(in, {});
  EXPECT_GE(stats.records, kFlushedSends);
  EXPECT_GT(stats.pages, 0u);
  for (const StreamGap& gap : stats.gaps) {
    EXPECT_NE(gap.reason.find("truncated"), std::string::npos)
        << "non-tail damage: " << gap.reason;
  }

  // Simulate the power-cut variant: shear the tail mid-page (as if the
  // final write never reached the platter).  The flushed prefix still
  // decodes whole; the damage surfaces as a truncation gap.
  const auto size = fs::file_size(path);
  fs::resize_file(path, size - 100);
  std::ifstream torn(path, std::ios::binary);
  ASSERT_TRUE(torn.is_open());
  const DecodeStats torn_stats = decode_stream(torn, {});
  EXPECT_GE(torn_stats.records, kFlushedSends);
  ASSERT_FALSE(torn_stats.gaps.empty());
  EXPECT_NE(torn_stats.gaps.back().reason.find("truncated"), std::string::npos)
      << torn_stats.gaps.back().reason;
  fs::remove(path);
}

TEST(StreamFileFd, ReportsFailuresViaOk) {
  StreamFile file("/nonexistent-dir/stream.qtz");
  EXPECT_FALSE(file.ok());
}

TEST(StreamFileFd, FdAndOstreamBackendsProduceIdenticalBytes) {
  const std::string path = (fs::temp_directory_path() / "stream_fd_bytes.qtz").string();
  fs::remove(path);
  std::ostringstream memory;
  {
    StreamFile fd_file(path);
    ASSERT_TRUE(fd_file.ok());
    StreamFile os_file(memory);
    BinaryStream fd_stream(fd_file);
    BinaryStream os_stream(os_file);
    BinaryStreamSink fd_sink(fd_stream);
    BinaryStreamSink os_sink(os_stream);
    emit_sends(fd_sink, 0, 5'000);
    emit_sends(os_sink, 0, 5'000);
    fd_stream.finish();
    os_stream.finish();
    fd_file.flush();
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.is_open());
  std::ostringstream disk;
  disk << in.rdbuf();
  EXPECT_EQ(disk.str(), memory.str());
  fs::remove(path);
}

}  // namespace
}  // namespace quartz::telemetry
