#include "telemetry/sampler.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "routing/ecmp.hpp"
#include "routing/oracle.hpp"
#include "sim/network.hpp"
#include "topo/builders.hpp"

namespace quartz::telemetry {
namespace {

struct Fixture {
  topo::BuiltTopology topo;
  std::unique_ptr<routing::EcmpRouting> routing;
  std::unique_ptr<routing::EcmpOracle> oracle;

  static Fixture single_switch() {
    topo::SingleSwitchParams p;
    p.hosts = 4;
    p.host_rate = gigabits_per_second(10);
    p.switch_model = topo::SwitchModel::ull();
    p.propagation = 0;
    Fixture f;
    f.topo = topo::single_switch(p);
    f.routing = std::make_unique<routing::EcmpRouting>(f.topo.graph);
    f.oracle = std::make_unique<routing::EcmpOracle>(*f.routing);
    return f;
  }
};

TEST(PeriodicSampler, BucketsDeliveriesByTime) {
  auto f = Fixture::single_switch();
  sim::Network net(f.topo, *f.oracle);
  PeriodicSampler::Options options;
  options.bucket = microseconds(100);
  PeriodicSampler sampler(options);
  net.add_sink(&sampler);
  const int task = net.new_task({});
  // Two packets delivered inside bucket 0, one in bucket 2.
  net.send(f.topo.hosts[0], f.topo.hosts[1], bytes(400), task, 1);
  net.send(f.topo.hosts[2], f.topo.hosts[3], bytes(400), task, 2);
  net.at(microseconds(250), [&] {
    net.send(f.topo.hosts[0], f.topo.hosts[2], bytes(400), task, 3);
  });
  net.run_until(milliseconds(1));

  const auto buckets = sampler.summaries();
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_EQ(buckets[0].start, 0);
  EXPECT_EQ(buckets[0].delivered, 2u);
  EXPECT_EQ(buckets[1].delivered, 0u);
  EXPECT_EQ(buckets[2].start, microseconds(200));
  EXPECT_EQ(buckets[2].delivered, 1u);
  // 700 ns end to end on the quiet fabric.
  EXPECT_DOUBLE_EQ(buckets[0].p50_us, 0.7);
  EXPECT_DOUBLE_EQ(buckets[0].mean_us, 0.7);
}

TEST(PeriodicSampler, TracksHottestLinksAndUtilization) {
  auto f = Fixture::single_switch();
  sim::Network net(f.topo, *f.oracle);
  PeriodicSampler::Options options;
  options.bucket = microseconds(100);
  options.top_k = 2;
  PeriodicSampler sampler(options);
  net.add_sink(&sampler);
  const int task = net.new_task({});
  for (int i = 0; i < 10; ++i) {
    net.send(f.topo.hosts[0], f.topo.hosts[1], bytes(400), task, 1);
  }
  net.run_until(milliseconds(1));

  const auto buckets = sampler.summaries();
  ASSERT_FALSE(buckets.empty());
  const auto& hottest = buckets[0].hottest;
  ASSERT_LE(hottest.size(), 2u);
  ASSERT_FALSE(hottest.empty());
  // 10 x 400 B on the host 0 uplink: 10 x 320 ns busy in a 100 us
  // bucket = 3.2% utilization on the hottest direction.
  EXPECT_NEAR(hottest.front().utilization, 0.032, 1e-9);
  EXPECT_EQ(hottest.front().packets, 10u);
  EXPECT_GE(hottest.front().bits, 10u * 400u * 8u);
}

TEST(PeriodicSampler, TopKTieBreakIsByteStable) {
  // Four directions with identical bits: the top-K order must not
  // depend on observation order or hash-map iteration order.  Ties
  // rank by link id, then direction — the documented total order that
  // keeps merged sweep outputs byte-stable at any --jobs value.
  PeriodicSampler::Options options;
  options.bucket = milliseconds(1);
  options.top_k = 3;
  PeriodicSampler sampler(options);
  sim::Packet p;
  p.size = bytes(400);
  const std::pair<topo::LinkId, int> lines[] = {{9, 0}, {2, 1}, {5, 1}, {2, 0}};
  for (const auto& [link, direction] : lines) {
    sampler.on_transmit(p, 0, link, direction, 1000, 1000, 321'000);
  }
  const auto buckets = sampler.summaries();
  ASSERT_EQ(buckets.size(), 1u);
  const auto& hottest = buckets[0].hottest;
  ASSERT_EQ(hottest.size(), 3u);
  EXPECT_EQ(hottest[0].link, 2);
  EXPECT_EQ(hottest[0].direction, 0);
  EXPECT_EQ(hottest[1].link, 2);
  EXPECT_EQ(hottest[1].direction, 1);
  EXPECT_EQ(hottest[2].link, 5);
  EXPECT_EQ(hottest[2].direction, 1);
}

TEST(PeriodicSampler, CountsDropsByReason) {
  auto f = Fixture::single_switch();
  sim::SimConfig config;
  config.max_queue_delay = microseconds(1);
  sim::Network net(f.topo, *f.oracle, config);
  PeriodicSampler sampler;
  net.add_sink(&sampler);
  const int task = net.new_task({});
  for (int i = 0; i < 50; ++i) {
    net.send(f.topo.hosts[0], f.topo.hosts[1], bytes(400), task, 1);
  }
  net.run_until(milliseconds(1));

  const auto buckets = sampler.summaries();
  ASSERT_FALSE(buckets.empty());
  std::uint64_t queue_drops = 0;
  for (const auto& b : buckets) queue_drops += b.queue_drops;
  EXPECT_EQ(queue_drops, net.packets_dropped(sim::DropReason::kQueueOverflow));
  EXPECT_GT(queue_drops, 0u);
}

TEST(PeriodicSampler, CsvHasOneRowPerBucket) {
  auto f = Fixture::single_switch();
  sim::Network net(f.topo, *f.oracle);
  PeriodicSampler::Options options;
  options.bucket = microseconds(50);
  PeriodicSampler sampler(options);
  net.add_sink(&sampler);
  const int task = net.new_task({});
  net.send(f.topo.hosts[0], f.topo.hosts[1], bytes(400), task, 1);
  net.run_until(milliseconds(1));

  std::ostringstream os;
  sampler.write_csv(os);
  std::size_t lines = 0;
  for (const char c : os.str()) lines += c == '\n';
  EXPECT_EQ(lines, 1u + sampler.bucket_count());  // header + rows
}

TEST(FaultTimeline, RecordsCutsRepairsAndDetectionLag) {
  FaultTimeline timeline;
  timeline.on_link_state(7, /*up=*/false, milliseconds(10));
  timeline.on_link_detected(7, /*dead=*/true, milliseconds(10) + microseconds(500));
  timeline.on_link_state(7, /*up=*/true, milliseconds(30));
  timeline.on_link_detected(7, /*dead=*/false, milliseconds(30) + microseconds(500));

  EXPECT_EQ(timeline.cuts(), 1u);
  EXPECT_EQ(timeline.repairs(), 1u);
  EXPECT_EQ(timeline.detections(), 2u);
  EXPECT_DOUBLE_EQ(timeline.mean_detection_lag_us(), 500.0);
  ASSERT_EQ(timeline.events().size(), 4u);
  EXPECT_EQ(timeline.events()[0].kind, FaultTimeline::Kind::kCut);
  EXPECT_EQ(timeline.events()[1].kind, FaultTimeline::Kind::kDetectedDead);
  EXPECT_EQ(timeline.events()[3].kind, FaultTimeline::Kind::kDetectedLive);
  EXPECT_STREQ(FaultTimeline::kind_name(FaultTimeline::Kind::kCut), "cut");
}

TEST(FaultTimeline, ObservesLiveNetworkFailures) {
  auto f = Fixture::single_switch();
  sim::SimConfig config;
  config.failure_detection_delay = microseconds(100);
  sim::Network net(f.topo, *f.oracle, config);
  FaultTimeline timeline;
  net.add_sink(&timeline);
  net.at(microseconds(10), [&] { net.fail_link(0); });
  net.at(microseconds(400), [&] { net.repair_link(0); });
  net.run_until(milliseconds(1));

  EXPECT_EQ(timeline.cuts(), 1u);
  EXPECT_EQ(timeline.repairs(), 1u);
  EXPECT_EQ(timeline.detections(), 2u);
  EXPECT_DOUBLE_EQ(timeline.mean_detection_lag_us(), 100.0);

  std::ostringstream os;
  timeline.write_jsonl(os);
  std::size_t lines = 0;
  for (const char c : os.str()) lines += c == '\n';
  EXPECT_EQ(lines, 4u);
  EXPECT_EQ(timeline.to_rows().size(), 4u);
}

TEST(PeriodicSampler, CountsCorruptedDropsSeparately) {
  auto f = Fixture::single_switch();
  sim::Network net(f.topo, *f.oracle);
  PeriodicSampler sampler;
  net.add_sink(&sampler);
  net.set_link_loss(0, 0.5);  // host 0's uplink goes gray
  const int task = net.new_task({});
  for (int i = 0; i < 200; ++i) {
    net.send(f.topo.hosts[0], f.topo.hosts[1], bytes(400), task, 1);
  }
  net.run_until(milliseconds(1));

  const auto buckets = sampler.summaries();
  ASSERT_FALSE(buckets.empty());
  std::uint64_t corrupted = 0;
  for (const auto& b : buckets) corrupted += b.corrupted_drops;
  EXPECT_EQ(corrupted, net.packets_dropped(sim::DropReason::kCorrupted));
  EXPECT_GT(corrupted, 0u);

  std::ostringstream os;
  sampler.write_csv(os);
  EXPECT_NE(os.str().find("corrupted_drops"), std::string::npos);
}

TEST(FaultTimeline, RecordsTheGrayFailureDetectionStory) {
  using routing::LinkHealth;
  FaultTimeline timeline;
  // Degradation strikes; probes measure it; the monitor flags lossy
  // 800 us later; repair and the all-clear follow.
  timeline.on_link_degraded(3, 0.4, milliseconds(10));
  timeline.on_probe(3, false, milliseconds(10) + microseconds(300));
  timeline.on_probe(3, true, milliseconds(10) + microseconds(600));
  timeline.on_health_transition(3, LinkHealth::kHealthy, LinkHealth::kLossy,
                                milliseconds(10) + microseconds(800));
  timeline.on_link_degraded(3, 0.0, milliseconds(20));
  timeline.on_health_transition(3, LinkHealth::kLossy, LinkHealth::kHealthy, milliseconds(21));

  EXPECT_EQ(timeline.degrades(), 1u);
  EXPECT_EQ(timeline.restores(), 1u);
  EXPECT_EQ(timeline.lossy_detections(), 1u);
  EXPECT_EQ(timeline.probes(), 2u);
  EXPECT_EQ(timeline.probe_losses(), 1u);
  EXPECT_DOUBLE_EQ(timeline.mean_detection_lag_us(), 800.0);

  ASSERT_EQ(timeline.events().size(), 4u);  // probes are counters, not events
  EXPECT_EQ(timeline.events()[0].kind, FaultTimeline::Kind::kDegraded);
  EXPECT_DOUBLE_EQ(timeline.events()[0].value, 0.4);
  EXPECT_EQ(timeline.events()[1].kind, FaultTimeline::Kind::kLossyDetected);
  EXPECT_EQ(timeline.events()[2].kind, FaultTimeline::Kind::kRestored);
  EXPECT_EQ(timeline.events()[3].kind, FaultTimeline::Kind::kLossyCleared);
  EXPECT_STREQ(FaultTimeline::kind_name(FaultTimeline::Kind::kLossyDetected), "lossy_detected");
}

TEST(FaultTimeline, DeadHealthTransitionsReuseDetectionAccounting) {
  using routing::LinkHealth;
  FaultTimeline timeline;
  timeline.on_link_state(2, /*up=*/false, milliseconds(5));
  timeline.on_health_transition(2, LinkHealth::kHealthy, LinkHealth::kDead,
                                milliseconds(5) + microseconds(30));
  timeline.on_flap_damped(2, milliseconds(9), milliseconds(6));
  timeline.on_link_state(2, /*up=*/true, milliseconds(7));
  timeline.on_health_transition(2, LinkHealth::kDead, LinkHealth::kHealthy, milliseconds(9));

  EXPECT_EQ(timeline.cuts(), 1u);
  EXPECT_EQ(timeline.repairs(), 1u);
  EXPECT_EQ(timeline.detections(), 2u);  // probe deaths land in the same lag books
  EXPECT_EQ(timeline.damped(), 1u);
  ASSERT_EQ(timeline.events().size(), 5u);
  EXPECT_EQ(timeline.events()[1].kind, FaultTimeline::Kind::kDetectedDead);
  EXPECT_EQ(timeline.events()[2].kind, FaultTimeline::Kind::kDamped);
  EXPECT_DOUBLE_EQ(timeline.events()[2].value, to_microseconds(milliseconds(9)));
  EXPECT_EQ(timeline.events()[4].kind, FaultTimeline::Kind::kDetectedLive);

  // Damp rows carry the suppressed-until value in the export.
  const auto rows = timeline.to_rows();
  ASSERT_EQ(rows.size(), 5u);
  bool damp_row_has_value = false;
  for (const auto& [key, value] : rows[2]) damp_row_has_value |= key == "value";
  EXPECT_TRUE(damp_row_has_value);
}

TEST(FaultTimeline, ObservesGrayEventsThroughTheNetworkFanOut) {
  auto f = Fixture::single_switch();
  sim::Network net(f.topo, *f.oracle);
  FaultTimeline timeline;
  net.add_sink(&timeline);
  net.set_link_loss(0, 0.25);
  net.emit_probe(0, false, microseconds(10));
  net.emit_health_transition(0, routing::LinkHealth::kHealthy, routing::LinkHealth::kLossy,
                             microseconds(20));
  net.emit_flap_damped(0, microseconds(500), microseconds(30));
  net.set_link_loss(0, 0.0);

  EXPECT_EQ(timeline.degrades(), 1u);
  EXPECT_EQ(timeline.restores(), 1u);
  EXPECT_EQ(timeline.lossy_detections(), 1u);
  EXPECT_EQ(timeline.probes(), 1u);
  EXPECT_EQ(timeline.probe_losses(), 1u);
  EXPECT_EQ(timeline.damped(), 1u);
}

}  // namespace
}  // namespace quartz::telemetry
