// Sharded capture → canonical decode: a run captured at --shards=N
// (one binary stream per shard, all appended to one .qtz file) must
// decode byte-identical to the same run captured at --shards=1, once
// both are replayed through the canonical shard-invariant merge.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "routing/ecmp.hpp"
#include "routing/oracle.hpp"
#include "sim/network.hpp"
#include "sim/partition.hpp"
#include "sim/sharded.hpp"
#include "telemetry/binary_stream.hpp"
#include "telemetry/decode.hpp"
#include "telemetry/stream_sink.hpp"
#include "topo/builders.hpp"

namespace quartz::telemetry {
namespace {

/// One shard of a captured run: its network writes records into its
/// own stream (stream_id == shard) of the shared capture file.
class CaptureShard final : public sim::Shard, public sim::TimerHandler {
 public:
  CaptureShard(const topo::BuiltTopology& topo, const routing::EcmpRouting& routing,
               const sim::ShardContext& ctx, StreamFile& file)
      : topo_(topo),
        oracle_(routing),
        net_(topo, oracle_),
        stream_(file, BinaryStream::Options{static_cast<std::uint32_t>(ctx.shard), false}),
        sink_(stream_) {
    net_.bind_shard(ctx.binding);
    net_.set_stream_sink(&sink_);
    task_ = net_.new_task({});
  }

  sim::Network& network() override { return net_; }
  void seal() { stream_.finish(); }

  void arm() {
    const auto& hosts = topo_.hosts;
    for (std::size_t i = 0; i < hosts.size(); ++i) {
      if (!net_.owns_node(hosts[i])) continue;
      net_.schedule_timer(0, {this, 1, i, 0});
    }
  }

 private:
  void on_timer(const sim::TimerEvent& event) override {
    const std::uint64_t i = event.a;
    const std::uint64_t k = event.b;
    const auto& hosts = topo_.hosts;
    const std::size_t n = hosts.size();
    const std::size_t dst = (static_cast<std::size_t>(i) + n / 2) % n;
    net_.send(hosts[static_cast<std::size_t>(i)], hosts[dst], bytes(200), task_, i * 31 + k);
    if (k + 1 < 25) net_.schedule_timer(nanoseconds(400) * static_cast<TimePs>(k + 1), {this, 1, i, k + 1});
  }

  const topo::BuiltTopology& topo_;
  routing::EcmpOracle oracle_;
  sim::Network net_;
  BinaryStream stream_;
  BinaryStreamSink sink_;
  int task_ = -1;
};

std::string capture(const topo::BuiltTopology& topo, const routing::EcmpRouting& routing,
                    int shards) {
  std::ostringstream raw;
  StreamFile file(raw);
  sim::ShardedSim sharded(
      sim::plan_partition(topo, shards),
      [&](const sim::ShardContext& ctx) -> std::unique_ptr<sim::Shard> {
        return std::make_unique<CaptureShard>(topo, routing, ctx, file);
      });
  sharded.visit([](int, sim::Shard& shard) { static_cast<CaptureShard&>(shard).arm(); });
  sharded.run_until(microseconds(60));
  sharded.visit([](int, sim::Shard& shard) { static_cast<CaptureShard&>(shard).seal(); });
  return raw.str();
}

std::string canonical_jsonl(const std::string& bytes, std::uint64_t expect_streams) {
  std::istringstream in(bytes);
  std::ostringstream jsonl;
  JsonlEventWriter writer(jsonl);
  DecodeOptions options;
  options.canonical = true;
  const DecodeStats stats = decode_streams({&in}, {&writer}, options);
  EXPECT_EQ(stats.streams, expect_streams);
  EXPECT_TRUE(stats.gaps.empty());
  EXPECT_EQ(stats.orphan_records, 0u);
  EXPECT_GT(stats.records, 0u);
  return jsonl.str();
}

TEST(ShardedDecode, CanonicalMergeIsShardInvariant) {
  topo::QuartzRingParams params;
  params.switches = 8;
  params.hosts_per_switch = 1;
  const topo::BuiltTopology topo = topo::quartz_ring(params);
  const routing::EcmpRouting routing(topo.graph);

  const std::string serial = canonical_jsonl(capture(topo, routing, 1), 1);
  EXPECT_FALSE(serial.empty());
  // Every shard count produces the same canonical byte stream, even
  // though the sharded captures split records across streams mid-
  // packet (kSend in the source shard, later hops elsewhere).
  EXPECT_EQ(canonical_jsonl(capture(topo, routing, 2), 2), serial);
  EXPECT_EQ(canonical_jsonl(capture(topo, routing, 4), 4), serial);
}

TEST(ShardedDecode, DefaultMergeStillDecodesShardedCapture) {
  topo::QuartzRingParams params;
  params.switches = 8;
  params.hosts_per_switch = 1;
  const topo::BuiltTopology topo = topo::quartz_ring(params);
  const routing::EcmpRouting routing(topo.graph);

  // Without the canonical option a sharded capture still replays
  // cleanly (per-stream replayers), it just cannot promise the
  // shard-invariant byte order; orphans appear when a packet's send
  // record lives in a different stream than its later records.
  std::istringstream in(capture(topo, routing, 2));
  std::ostringstream jsonl;
  JsonlEventWriter writer(jsonl);
  const DecodeStats stats = decode_streams({&in}, {&writer});
  EXPECT_EQ(stats.streams, 2u);
  EXPECT_GT(stats.records, 0u);
}

}  // namespace
}  // namespace quartz::telemetry
