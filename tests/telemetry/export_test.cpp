#include "telemetry/export.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

namespace quartz::telemetry {
namespace {

TEST(JsonEscape, PassesPlainTextThrough) {
  EXPECT_EQ(json_escape("hello world"), "hello world");
  EXPECT_EQ(json_escape(""), "");
}

TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonWriter, CompactNestedStructure) {
  std::ostringstream os;
  JsonWriter w(os, /*pretty=*/false);
  w.begin_object()
      .kv("name", "quartz")
      .kv("count", std::int64_t{3})
      .key("items")
      .begin_array()
      .value(1)
      .value(2)
      .end_array()
      .kv("ok", true)
      .end_object();
  EXPECT_EQ(os.str(), R"({"name":"quartz","count":3,"items":[1,2],"ok":true})");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  std::ostringstream os;
  JsonWriter w(os, false);
  w.begin_array()
      .value(std::numeric_limits<double>::quiet_NaN())
      .value(std::numeric_limits<double>::infinity())
      .value(1.5)
      .end_array();
  EXPECT_EQ(os.str(), "[null,null,1.5]");
}

TEST(JsonWriter, PrettyModeIndents) {
  std::ostringstream os;
  JsonWriter w(os, /*pretty=*/true);
  w.begin_object().kv("a", 1).end_object();
  const std::string out = os.str();
  EXPECT_NE(out.find('\n'), std::string::npos);
  EXPECT_NE(out.find("\"a\": 1"), std::string::npos);
}

TEST(JsonValue, CsvCellsForEveryType) {
  EXPECT_EQ(JsonValue(nullptr).to_csv_cell(), "");
  EXPECT_EQ(JsonValue(true).to_csv_cell(), "true");
  EXPECT_EQ(JsonValue(std::int64_t{-7}).to_csv_cell(), "-7");
  EXPECT_EQ(JsonValue(std::uint64_t{7}).to_csv_cell(), "7");
  EXPECT_EQ(JsonValue("text").to_csv_cell(), "text");
}

TEST(WriteRow, EmitsOneObject) {
  std::ostringstream os;
  JsonWriter w(os, false);
  write_row(w, {{"x", 1}, {"y", "z"}});
  EXPECT_EQ(os.str(), R"({"x":1,"y":"z"})");
}

TEST(CsvEscape, QuotesOnlyWhenNeeded) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

}  // namespace
}  // namespace quartz::telemetry
