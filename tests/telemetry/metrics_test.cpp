#include "telemetry/metrics.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace quartz::telemetry {
namespace {

TEST(MetricRegistry, FindOrCreateReturnsSameInstance) {
  MetricRegistry reg;
  Counter& c = reg.counter("sim.packets");
  c.inc(3);
  reg.counter("sim.packets").inc(2);
  EXPECT_EQ(c.value(), 5u);
  EXPECT_EQ(reg.size(), 1u);

  reg.gauge("sim.load").set(0.75);
  EXPECT_DOUBLE_EQ(reg.gauge("sim.load").value(), 0.75);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(MetricRegistry, ReferencesStayValidAcrossInsertions) {
  // std::map storage: growing the registry must not invalidate handles
  // captured earlier (sinks hold on to them for a whole run).
  MetricRegistry reg;
  Counter& first = reg.counter("a");
  for (int i = 0; i < 100; ++i) reg.counter("metric." + std::to_string(i));
  first.inc();
  EXPECT_EQ(reg.counter("a").value(), 1u);
}

TEST(MetricRegistry, DisabledRegistryIsInertAndCheap) {
  MetricRegistry reg(/*enabled=*/false);
  EXPECT_FALSE(reg.enabled());
  reg.counter("x").inc(10);
  reg.gauge("y").set(1.0);
  reg.latency("z").add_us(5.0);
  EXPECT_EQ(reg.size(), 0u);  // nothing registered

  std::ostringstream os;
  reg.write_csv(os);
  // Header only: no metric rows escaped the disabled registry.
  EXPECT_EQ(os.str().find('\n'), os.str().rfind('\n'));
}

TEST(MetricRegistry, LatencyRecorderPercentiles) {
  MetricRegistry reg;
  LatencyRecorder& lat = reg.latency("task.latency_us");
  for (int i = 1; i <= 100; ++i) lat.add_us(static_cast<double>(i));
  lat.add(microseconds(250));  // TimePs overload
  EXPECT_EQ(lat.count(), 101u);
  EXPECT_DOUBLE_EQ(lat.max_us(), 250.0);
  EXPECT_GT(lat.percentile_us(99), lat.percentile_us(50));
}

TEST(MetricRegistry, CsvHasOneRowPerMetric) {
  MetricRegistry reg;
  reg.counter("c").inc(7);
  reg.gauge("g").set(2.5);
  reg.latency("l").add_us(1.0);
  std::ostringstream os;
  reg.write_csv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("name,kind,"), std::string::npos);
  EXPECT_NE(csv.find("c,counter,"), std::string::npos);
  EXPECT_NE(csv.find("g,gauge,"), std::string::npos);
  EXPECT_NE(csv.find("l,latency,"), std::string::npos);
}

TEST(MetricRegistry, JsonDumpMentionsEveryMetric) {
  MetricRegistry reg;
  reg.counter("packets").inc(2);
  reg.gauge("duration_ms").set(10.0);
  reg.latency("rtt").add_us(3.0);
  std::ostringstream os;
  JsonWriter w(os, false);
  reg.write_json(w);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"packets\":2"), std::string::npos);
  EXPECT_NE(json.find("duration_ms"), std::string::npos);
  EXPECT_NE(json.find("rtt"), std::string::npos);
}

}  // namespace
}  // namespace quartz::telemetry
