#include "common/table.hpp"

#include <gtest/gtest.h>

namespace quartz {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add("alpha", 1);
  t.add("b", 22.5);
  const std::string text = t.to_text();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("22.5"), std::string::npos);
  // Header rule line present.
  EXPECT_NE(text.find("---"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
}

TEST(Table, EmptyHeaderRejected) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, MixedCellTypesFormat) {
  Table t({"int", "double", "string"});
  t.add(42, 3.14159, "hello");
  const std::string text = t.to_text();
  EXPECT_NE(text.find("42"), std::string::npos);
  EXPECT_NE(text.find("3.142"), std::string::npos);  // %.4g
  EXPECT_NE(text.find("hello"), std::string::npos);
}

TEST(Table, WholeDoublesPrintWithoutDecimals) {
  Table t({"v"});
  t.add(40.0);
  EXPECT_NE(t.to_text().find("40"), std::string::npos);
  EXPECT_EQ(t.to_text().find("40.0"), std::string::npos);
}

TEST(Table, CsvEscapesSpecialCells) {
  Table t({"a", "b"});
  t.add_row({"with,comma", "with\"quote"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
}

TEST(Table, CsvHasHeaderAndRows) {
  Table t({"x", "y"});
  t.add(1, 2);
  t.add(3, 4);
  EXPECT_EQ(t.to_csv(), "x,y\n1,2\n3,4\n");
  EXPECT_EQ(t.rows(), 2u);
}

}  // namespace
}  // namespace quartz
