#include "common/units.hpp"

#include <gtest/gtest.h>

namespace quartz {
namespace {

TEST(Units, TimeConversionRoundTrips) {
  EXPECT_EQ(microseconds(1), 1'000'000);
  EXPECT_EQ(nanoseconds(1), 1'000);
  EXPECT_EQ(milliseconds(2), 2'000'000'000);
  EXPECT_EQ(seconds(1), kSecond);
  EXPECT_DOUBLE_EQ(to_microseconds(microseconds(7.5)), 7.5);
  EXPECT_DOUBLE_EQ(to_nanoseconds(nanoseconds(380)), 380.0);
  EXPECT_DOUBLE_EQ(to_seconds(kSecond), 1.0);
}

TEST(Units, BytesToBits) {
  EXPECT_EQ(bytes(400), 3200);
  EXPECT_EQ(to_bytes(bytes(1500)), 1500);
}

TEST(Units, RateHelpers) {
  EXPECT_DOUBLE_EQ(gigabits_per_second(10), 1e10);
  EXPECT_DOUBLE_EQ(megabits_per_second(200), 2e8);
  EXPECT_DOUBLE_EQ(kilobits_per_second(5), 5e3);
}

TEST(Units, TransmissionTimeMatchesHandComputation) {
  // 400 bytes at 10 Gb/s = 320 ns.
  EXPECT_EQ(transmission_time(bytes(400), gigabits_per_second(10)), nanoseconds(320));
  // 1500 bytes at 1 Gb/s = 12 us.
  EXPECT_EQ(transmission_time(bytes(1500), gigabits_per_second(1)), microseconds(12));
  // 400 bytes at 40 Gb/s = 80 ns.
  EXPECT_EQ(transmission_time(bytes(400), gigabits_per_second(40)), nanoseconds(80));
}

TEST(Units, TransmissionTimeRoundsUp) {
  // 1 bit at 3 b/s is 333.3e9 ps; must round up, never down.
  const TimePs t = transmission_time(1, 3.0);
  EXPECT_GE(static_cast<double>(t) * 3.0, 1e12);
}

TEST(Units, FormatTimePicksUnit) {
  EXPECT_EQ(format_time(microseconds(6)), "6 us");
  EXPECT_EQ(format_time(nanoseconds(380)), "380 ns");
  EXPECT_EQ(format_time(seconds(2)), "2 s");
  EXPECT_EQ(format_time(5), "5 ps");
}

TEST(Units, FormatRatePicksUnit) {
  EXPECT_EQ(format_rate(gigabits_per_second(40)), "40 Gb/s");
  EXPECT_EQ(format_rate(megabits_per_second(200)), "200 Mb/s");
  EXPECT_EQ(format_rate(kilobits_per_second(3)), "3 kb/s");
}

}  // namespace
}  // namespace quartz
