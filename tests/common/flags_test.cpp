#include "common/flags.hpp"

#include <gtest/gtest.h>

namespace quartz {
namespace {

Flags parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"tool"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags::parse(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, EqualsForm) {
  const Flags f = parse({"--fabric=quartz", "--tasks=8"});
  EXPECT_EQ(f.get("fabric"), "quartz");
  EXPECT_EQ(f.get_int("tasks", 0), 8);
}

TEST(Flags, SpaceForm) {
  const Flags f = parse({"--fabric", "jellyfish", "--rate", "2.5"});
  EXPECT_EQ(f.get("fabric"), "jellyfish");
  EXPECT_DOUBLE_EQ(f.get_double("rate", 0.0), 2.5);
}

TEST(Flags, BareSwitchIsTrue) {
  const Flags f = parse({"--csv", "--fabric=tree"});
  EXPECT_TRUE(f.get_bool("csv"));
  EXPECT_FALSE(f.get_bool("missing"));
  EXPECT_TRUE(f.get_bool("missing", true));
}

TEST(Flags, ExplicitFalse) {
  const Flags f = parse({"--csv=false", "--quiet=0"});
  EXPECT_FALSE(f.get_bool("csv", true));
  EXPECT_FALSE(f.get_bool("quiet", true));
}

TEST(Flags, FallbacksWhenAbsent) {
  const Flags f = parse({});
  EXPECT_EQ(f.get("name", "default"), "default");
  EXPECT_EQ(f.get_int("n", 42), 42);
  EXPECT_DOUBLE_EQ(f.get_double("x", 1.5), 1.5);
}

TEST(Flags, PositionalArgumentsPreserved) {
  // Note: the space form (--key value) consumes the next non-flag
  // token, so bare switches before positionals need --key=true.
  const Flags f = parse({"input.txt", "--verbose=true", "output.txt"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "input.txt");
  EXPECT_EQ(f.positional()[1], "output.txt");
}

TEST(Flags, RejectsJunkNumbers) {
  const Flags f = parse({"--tasks=eight", "--rate=fast"});
  EXPECT_THROW(f.get_int("tasks", 0), std::invalid_argument);
  EXPECT_THROW(f.get_double("rate", 0.0), std::invalid_argument);
}

TEST(Flags, KeysEnumerated) {
  const Flags f = parse({"--a=1", "--b", "--c=x"});
  const auto keys = f.keys();
  EXPECT_EQ(keys.size(), 3u);
}

TEST(Flags, LastValueWinsOnRepeat) {
  const Flags f = parse({"--n=1", "--n=2"});
  EXPECT_EQ(f.get_int("n", 0), 2);
}

TEST(Flags, UnknownKeysFlagsTypos) {
  const Flags f = parse({"--tasks=4", "--trase", "--out=x.csv"});
  const auto unknown = f.unknown_keys({"tasks", "trace", "out"});
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown.front(), "trase");
}

TEST(Flags, UnknownKeysEmptyWhenAllKnown) {
  const Flags f = parse({"--a=1", "--b"});
  EXPECT_TRUE(f.unknown_keys({"a", "b", "c"}).empty());
  EXPECT_TRUE(Flags::parse(0, nullptr).unknown_keys({}).empty());
}

}  // namespace
}  // namespace quartz
