#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace quartz {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.next_below(13), 13u);
  }
}

TEST(Rng, NextBelowCoversAllValues) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1'000; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextBelowRejectsZeroBound) {
  Rng rng(1);
  EXPECT_THROW(rng.next_below(0), std::invalid_argument);
}

TEST(Rng, NextIntInclusiveRange) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1'000; ++i) {
    const auto v = rng.next_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10'000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) sum += rng.next_exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, ExponentialRejectsNonPositiveMean) {
  Rng rng(1);
  EXPECT_THROW(rng.next_exponential(0.0), std::invalid_argument);
  EXPECT_THROW(rng.next_exponential(-1.0), std::invalid_argument);
}

TEST(Rng, BoolProbability) {
  Rng rng(17);
  int heads = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    if (rng.next_bool(0.25)) ++heads;
  }
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.25, 0.01);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(19);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(23);
  Rng child = parent.fork();
  // Child and parent should not produce identical streams.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.next_u64() == child.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformityChiSquaredSmokeTest) {
  Rng rng(29);
  constexpr int kBuckets = 16;
  constexpr int kSamples = 160'000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i) ++counts[rng.next_below(kBuckets)];
  const double expected = static_cast<double>(kSamples) / kBuckets;
  double chi2 = 0.0;
  for (int c : counts) chi2 += (c - expected) * (c - expected) / expected;
  // 15 degrees of freedom; 99.9th percentile is ~37.7.
  EXPECT_LT(chi2, 37.7);
}

}  // namespace
}  // namespace quartz
