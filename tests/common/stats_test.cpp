#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace quartz {
namespace {

TEST(RunningStats, MeanAndVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, EmptyThrowsOnMean) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_THROW(s.mean(), std::logic_error);
  EXPECT_THROW(s.min(), std::logic_error);
}

TEST(RunningStats, SingleSampleHasZeroVariance) {
  RunningStats s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.confidence_half_width(), 0.0);
}

TEST(RunningStats, MergeEqualsCombinedStream) {
  Rng rng(5);
  RunningStats all, a, b;
  for (int i = 0; i < 1'000; ++i) {
    const double x = rng.next_double() * 10.0;
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  RunningStats b;
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), mean);
}

TEST(RunningStats, ManyChunkMergeMatchesSinglePass) {
  // Merge in uneven chunks (including empties) and compare against the
  // single-pass Welford baseline over the identical stream.
  Rng rng(13);
  RunningStats single;
  RunningStats merged;
  for (int chunk = 0; chunk < 20; ++chunk) {
    RunningStats part;
    const int n = chunk % 4 == 0 ? 0 : chunk * 37;  // some chunks empty
    for (int i = 0; i < n; ++i) {
      const double x = rng.next_exponential(0.5) - 1.0;
      single.add(x);
      part.add(x);
    }
    merged.merge(part);
  }
  ASSERT_EQ(merged.count(), single.count());
  EXPECT_NEAR(merged.mean(), single.mean(), 1e-9);
  EXPECT_NEAR(merged.variance(), single.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(merged.min(), single.min());
  EXPECT_DOUBLE_EQ(merged.max(), single.max());
}

TEST(RunningStats, ConfidenceShrinksWithSamples) {
  Rng rng(7);
  RunningStats small, large;
  for (int i = 0; i < 100; ++i) small.add(rng.next_double());
  for (int i = 0; i < 10'000; ++i) large.add(rng.next_double());
  EXPECT_GT(small.confidence_half_width(0.95), large.confidence_half_width(0.95));
}

TEST(SampleSet, PercentilesExactOnKnownData) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_DOUBLE_EQ(s.median(), 50.5);
  EXPECT_NEAR(s.percentile(99.0), 99.01, 1e-9);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100.0), 100.0);
}

TEST(SampleSet, SingleSampleIsEveryPercentile) {
  SampleSet s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(s.percentile(50.0), 42.0);
  EXPECT_DOUBLE_EQ(s.percentile(99.9), 42.0);
  EXPECT_DOUBLE_EQ(s.percentile(100.0), 42.0);
}

TEST(SampleSet, PercentileEndpointsAreMinAndMax) {
  Rng rng(3);
  SampleSet s;
  for (int i = 0; i < 257; ++i) s.add(rng.next_double() * 100.0 - 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), s.min());
  EXPECT_DOUBLE_EQ(s.percentile(100.0), s.max());
}

TEST(SampleSet, PercentileRejectsOutOfRange) {
  SampleSet s;
  s.add(1.0);
  EXPECT_THROW(s.percentile(-1.0), std::invalid_argument);
  EXPECT_THROW(s.percentile(101.0), std::invalid_argument);
}

TEST(SampleSet, MeanAndStddevMatchRunningStats) {
  Rng rng(11);
  SampleSet set;
  RunningStats running;
  for (int i = 0; i < 5'000; ++i) {
    const double x = rng.next_exponential(2.0);
    set.add(x);
    running.add(x);
  }
  EXPECT_NEAR(set.mean(), running.mean(), 1e-9);
  EXPECT_NEAR(set.stddev(), running.stddev(), 1e-6);
}

TEST(SampleSet, SortCacheInvalidatedByAdd) {
  SampleSet s;
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  s.add(9.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);  // must not return the stale sorted view
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(3.0);   // bin 1
  h.add(9.99);  // bin 4
  h.add(-5.0);  // clamps to bin 0
  h.add(42.0);  // clamps to bin 4
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bin(0), 2u);
  EXPECT_EQ(h.bin(1), 1u);
  EXPECT_EQ(h.bin(2), 0u);
  EXPECT_EQ(h.bin(4), 2u);
  EXPECT_DOUBLE_EQ(h.bin_lower(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_upper(1), 4.0);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, AsciiRendersEveryBin) {
  Histogram h(0.0, 4.0, 4);
  h.add(1.0);
  h.add(1.5);
  h.add(3.0);
  const std::string art = h.ascii(10);
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 4);
  EXPECT_NE(art.find('#'), std::string::npos);
}

}  // namespace
}  // namespace quartz
