// HierOracle (routing/hierarchical.hpp): level-group FIB layout, lazy
// arena accounting, epoch invalidation, O(hops) route extraction,
// packet delivery across hierarchy levels, and per-level two-hop
// healing under failures.
#include "routing/hierarchical.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "routing/failure_view.hpp"
#include "sim/network.hpp"
#include "topo/composite.hpp"

namespace quartz::routing {
namespace {

using topo::BuiltTopology;
using topo::LinkId;
using topo::NodeId;

BuiltTopology three_by_four() {
  const auto spec = topo::CompositeSpec::parse("ring-of-rings:3x4@1");
  return topo::build_composite(*spec);
}

/// Walk a path from `src` and return where it lands.
NodeId walk(const topo::Graph& graph, NodeId src, const HierOracle::Path& path) {
  NodeId at = src;
  for (std::size_t i = 0; i < path.links.size(); ++i) {
    const auto& link = graph.link(path.links[i]);
    EXPECT_EQ(path.directions[i] == 0 ? link.a : link.b, at);
    at = link.other(at);
  }
  return at;
}

TEST(HierOracle, RequiresUniformMeta) {
  topo::QuartzRingParams p;
  p.switches = 4;
  p.hosts_per_switch = 1;
  const auto plain = topo::quartz_ring(p);
  EXPECT_THROW(HierOracle{plain}, std::invalid_argument);
}

TEST(HierOracle, GroupUniverseIsSumOfArity) {
  const auto t = three_by_four();
  const HierOracle oracle(t);
  EXPECT_EQ(oracle.group_universe(), 3 + 4);
  // group_of mirrors the meta: host destinations resolve through their
  // attachment switch.
  ASSERT_NE(t.composite, nullptr);
  const NodeId s00 = t.composite->leaf_members[0];
  EXPECT_EQ(oracle.group_of(s00, t.hosts[1]), t.composite->group_of(s00, t.composite->leaf_members[1]));
  EXPECT_EQ(oracle.group_of(s00, t.hosts[0]), -1);  // co-located: host port only
}

TEST(HierOracle, RoutesAreLevelBounded) {
  const auto t = three_by_four();
  const HierOracle oracle(t);
  // Same switch: up + down.  Same element: one mesh hop.  Cross
  // element: at most gateway-chase + trunk + gateway-exit between the
  // access links.
  for (std::size_t i = 0; i < t.hosts.size(); ++i) {
    for (std::size_t j = 0; j < t.hosts.size(); ++j) {
      if (i == j) continue;
      const auto path = oracle.route(t.hosts[i], t.hosts[j]);
      EXPECT_EQ(walk(t.graph, t.hosts[i], path), t.hosts[j]);
      EXPECT_LE(path.links.size(), 5u);  // host + mesh + trunk + mesh + host
    }
  }
}

TEST(HierOracle, DenseFibIsSublinearAndCached) {
  const auto t = three_by_four();
  const HierOracle oracle(t);
  const auto cold = oracle.stats();
  EXPECT_EQ(cold.arenas, 0u);
  EXPECT_EQ(cold.entry_bytes, 0u);

  const auto first = oracle.route(t.hosts[0], t.hosts[11]);
  const auto warm = oracle.stats();
  EXPECT_GT(warm.misses, 0u);
  EXPECT_GT(warm.arenas, 0u);
  // Arena entries are per (touched switch, level-group): far below one
  // entry per destination host per switch.
  EXPECT_LE(warm.entry_bytes,
            warm.arenas * static_cast<std::uint64_t>(oracle.group_universe()) * sizeof(LinkId));

  // The same route again is pure cache hits.
  const auto again = oracle.route(t.hosts[0], t.hosts[11]);
  const auto hot = oracle.stats();
  EXPECT_EQ(hot.misses, warm.misses);
  EXPECT_GT(hot.hits, warm.hits);
  EXPECT_EQ(again.links, first.links);
}

TEST(HierOracle, EpochChangeWipesTheFib) {
  const auto t = three_by_four();
  HierOracle oracle(t);
  FailureView view(t.graph.link_count());
  oracle.attach_failure_view(&view);

  (void)oracle.route(t.hosts[0], t.hosts[11]);
  const auto warm = oracle.stats();
  EXPECT_GT(warm.misses, 0u);

  // Any knowledge change moves state_epoch; the next lookup recomputes.
  const auto before = oracle.state_epoch();
  view.set_dead(0, true);
  view.set_dead(0, false);
  EXPECT_NE(oracle.state_epoch(), before);
  (void)oracle.route(t.hosts[0], t.hosts[11]);
  EXPECT_GT(oracle.stats().misses, warm.misses);
}

TEST(HierOracle, DeliversAcrossLevelsInTheSimulator) {
  const auto t = three_by_four();
  const HierOracle oracle(t);
  sim::Network net(t, oracle, {});
  std::uint64_t delivered = 0;
  const int task = net.new_task([&](const sim::Packet&, TimePs) { ++delivered; });

  // Every ordered host pair once.
  std::uint64_t sent = 0;
  for (std::size_t i = 0; i < t.hosts.size(); ++i) {
    for (std::size_t j = 0; j < t.hosts.size(); ++j) {
      if (i == j) continue;
      net.send(t.hosts[i], t.hosts[j], bytes(400), task, ++sent);
    }
  }
  net.run_until(milliseconds(10));
  EXPECT_EQ(delivered, sent);
  EXPECT_EQ(net.packets_dropped(), 0u);
}

TEST(HierOracle, LeafHealingDetoursThroughAThirdRingSwitch) {
  const auto t = three_by_four();
  HierOracle oracle(t);
  FailureView view(t.graph.link_count());
  oracle.attach_failure_view(&view);

  // Host 0 and host 2 sit on slots 0 and 2 of element 0; kill their
  // direct leaf lightpath.
  const auto direct = oracle.route(t.hosts[0], t.hosts[2]);
  ASSERT_EQ(direct.links.size(), 3u);
  view.set_dead(direct.links[1], true);

  const auto healed = oracle.route(t.hosts[0], t.hosts[2]);
  EXPECT_EQ(walk(t.graph, t.hosts[0], healed), t.hosts[2]);
  EXPECT_EQ(healed.links.size(), 4u);  // two mesh legs through a third switch
  EXPECT_TRUE(std::find(healed.links.begin(), healed.links.end(), direct.links[1]) ==
              healed.links.end());

  // Healing is deterministic in the flow hash: the same pair always
  // takes the same detour.
  const auto again = oracle.route(t.hosts[0], t.hosts[2]);
  EXPECT_EQ(again.links, healed.links);

  // The candidate set at the divergence level lists the healing legs
  // once the primary is dead.
  const auto cands = oracle.candidates(t.composite->leaf_members[0], t.hosts[2]);
  EXPECT_EQ(cands.level, 1);
  EXPECT_GE(cands.links.size(), 2u);
}

TEST(HierOracle, TrunkHealingDetoursThroughASiblingElement) {
  const auto t = three_by_four();
  HierOracle oracle(t);
  FailureView view(t.graph.link_count());
  oracle.attach_failure_view(&view);
  ASSERT_NE(t.composite, nullptr);

  // Kill the element-0 <-> element-1 trunk; flows must transit element 2.
  const auto& trunk = t.composite->trunk(0, 0, 0, 1);
  ASSERT_NE(trunk.link, topo::kInvalidLink);
  view.set_dead(trunk.link, true);

  const NodeId src = t.hosts[0];      // element 0
  const NodeId dst = t.hosts[4 + 1];  // element 1
  const auto healed = oracle.route(src, dst);
  EXPECT_EQ(walk(t.graph, src, healed), dst);
  EXPECT_TRUE(std::find(healed.links.begin(), healed.links.end(), trunk.link) ==
              healed.links.end());
  // The detour transits the third element: some switch on the path has
  // outer coordinate 2.
  bool via_third = false;
  for (const LinkId id : healed.links) {
    const auto& link = t.graph.link(id);
    for (const NodeId end : {link.a, link.b}) {
      if (!t.graph.is_host(end) && t.composite->path_at(end, 0) == 2) via_third = true;
    }
  }
  EXPECT_TRUE(via_third);

  // Still delivers in the packet simulator under the same failure.
  sim::Network net(t, oracle, {});
  net.fail_link(trunk.link);
  std::uint64_t delivered = 0;
  const int task = net.new_task([&](const sim::Packet&, TimePs) { ++delivered; });
  net.run_until(microseconds(600));  // let detection settle
  net.send(src, dst, bytes(400), task, 7);
  net.run_until(milliseconds(5));
  EXPECT_EQ(delivered, 1u);
}

}  // namespace
}  // namespace quartz::routing
