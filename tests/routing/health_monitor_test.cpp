#include "routing/health_monitor.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace quartz::routing {
namespace {

HealthMonitorConfig fast_config() {
  HealthMonitorConfig c;
  c.dead_after_misses = 3;
  c.alive_after_acks = 3;
  c.lossy_enter = 0.05;
  c.lossy_exit = 0.01;
  c.ewma_alpha = 0.2;
  c.hold_down = microseconds(100);
  c.hold_down_cap = microseconds(1600);
  c.flap_memory = milliseconds(5);
  return c;
}

TEST(HealthMonitor, DeathAfterConsecutiveMissesOnly) {
  HealthMonitor monitor(4, fast_config());
  TimePs t = 0;
  // Two misses, an ack, two more misses: never three consecutive.
  for (const bool delivered : {false, false, true, false, false}) {
    monitor.record_probe(1, delivered, t += microseconds(10));
  }
  EXPECT_NE(monitor.health(1), LinkHealth::kDead);
  EXPECT_EQ(monitor.deaths(), 0u);

  monitor.record_probe(1, false, t += microseconds(10));  // third consecutive
  EXPECT_EQ(monitor.health(1), LinkHealth::kDead);
  EXPECT_TRUE(monitor.view().is_dead(1));
  EXPECT_EQ(monitor.dead_count(), 1u);
  EXPECT_EQ(monitor.deaths(), 1u);
  // Other links are untouched.
  EXPECT_EQ(monitor.health(0), LinkHealth::kHealthy);
  EXPECT_FALSE(monitor.view().is_dead(0));
}

TEST(HealthMonitor, LossyEntryAndHysteresisExit) {
  HealthMonitor monitor(2, fast_config());
  TimePs t = 0;
  // Alternate loss/delivery: EWMA climbs toward 0.5, far above
  // lossy_enter, without ever hitting three consecutive misses.
  for (int i = 0; i < 20; ++i) {
    monitor.record_probe(0, i % 2 == 0, t += microseconds(10));
  }
  EXPECT_EQ(monitor.health(0), LinkHealth::kLossy);
  EXPECT_FALSE(monitor.view().is_dead(0));  // lossy is not dead
  EXPECT_GT(monitor.loss_rate(0), 0.05);
  EXPECT_EQ(monitor.lossy_count(), 1u);

  // Deliveries decay the EWMA; the link must stay lossy while the
  // estimate sits between exit and enter (hysteresis), then clear.
  bool was_lossy_below_enter = false;
  while (monitor.health(0) == LinkHealth::kLossy) {
    monitor.record_probe(0, true, t += microseconds(10));
    if (monitor.health(0) == LinkHealth::kLossy && monitor.loss_ewma(0) < 0.05) {
      was_lossy_below_enter = true;
    }
  }
  EXPECT_TRUE(was_lossy_below_enter);
  EXPECT_EQ(monitor.health(0), LinkHealth::kHealthy);
  EXPECT_LT(monitor.loss_ewma(0), 0.01);
}

TEST(HealthMonitor, RecoveryNeedsAckStreakAndExpiredHoldDown) {
  HealthMonitor monitor(2, fast_config());
  TimePs t = 0;
  for (int i = 0; i < 3; ++i) monitor.record_probe(0, false, t += microseconds(10));
  ASSERT_EQ(monitor.health(0), LinkHealth::kDead);
  const TimePs death_at = t;

  // Probes succeed immediately, but the hold-down (100 us) suppresses
  // the recovery: the damper should absorb exactly one announcement.
  int damp_events = 0;
  TimePs suppressed_until = 0;
  monitor.set_damp_hook([&](topo::LinkId, TimePs until, TimePs) {
    ++damp_events;
    suppressed_until = until;
  });
  while (t < death_at + microseconds(90)) {
    monitor.record_probe(0, true, t += microseconds(10));
    EXPECT_EQ(monitor.health(0), LinkHealth::kDead);
  }
  EXPECT_EQ(damp_events, 1);
  EXPECT_EQ(monitor.damped_recoveries(), 1u);
  EXPECT_EQ(suppressed_until, death_at + microseconds(100));

  // Past the hold-down the pending recovery goes through (to healthy or
  // lossy depending on where the EWMA decayed to — just not dead).
  monitor.record_probe(0, true, t = death_at + microseconds(110));
  EXPECT_NE(monitor.health(0), LinkHealth::kDead);
  EXPECT_EQ(monitor.revivals(), 1u);
  EXPECT_FALSE(monitor.view().is_dead(0));
}

TEST(HealthMonitor, RapidRedeathDoublesHoldDownUpToCap) {
  HealthMonitor monitor(1, fast_config());
  std::vector<TimePs> suppression_lengths;
  TimePs last_death = 0;
  monitor.set_transition_hook([&](topo::LinkId, LinkHealth, LinkHealth to, TimePs when) {
    if (to == LinkHealth::kDead) last_death = when;
  });
  monitor.set_damp_hook([&](topo::LinkId, TimePs until, TimePs) {
    suppression_lengths.push_back(until - last_death);
  });

  // Flap cycle: 3 misses (death), then acks until the monitor revives.
  TimePs t = 0;
  for (int cycle = 0; cycle < 6; ++cycle) {
    for (int i = 0; i < 3; ++i) monitor.record_probe(0, false, t += microseconds(10));
    ASSERT_EQ(monitor.health(0), LinkHealth::kDead);
    while (monitor.health(0) == LinkHealth::kDead) {
      monitor.record_probe(0, true, t += microseconds(10));
    }
  }
  // Every recovery was damped (acks outrun the hold-down)...
  ASSERT_EQ(suppression_lengths.size(), 6u);
  // ...and each rapid re-death doubled the hold-down until the cap.
  EXPECT_EQ(suppression_lengths[0], microseconds(100));
  EXPECT_EQ(suppression_lengths[1], microseconds(200));
  EXPECT_EQ(suppression_lengths[2], microseconds(400));
  EXPECT_EQ(suppression_lengths[3], microseconds(800));
  EXPECT_EQ(suppression_lengths[4], microseconds(1600));
  EXPECT_EQ(suppression_lengths[5], microseconds(1600));  // capped
}

TEST(HealthMonitor, QuietPeriodResetsFlapPenalty) {
  HealthMonitor monitor(1, fast_config());
  std::vector<TimePs> suppression_lengths;
  TimePs last_death = 0;
  monitor.set_transition_hook([&](topo::LinkId, LinkHealth, LinkHealth to, TimePs when) {
    if (to == LinkHealth::kDead) last_death = when;
  });
  monitor.set_damp_hook([&](topo::LinkId, TimePs until, TimePs) {
    suppression_lengths.push_back(until - last_death);
  });

  TimePs t = 0;
  auto flap_once = [&] {
    for (int i = 0; i < 3; ++i) monitor.record_probe(0, false, t += microseconds(10));
    while (monitor.health(0) == LinkHealth::kDead) {
      monitor.record_probe(0, true, t += microseconds(10));
    }
  };
  flap_once();
  flap_once();  // rapid: doubled
  t += milliseconds(10);  // beyond flap_memory: penalty forgets
  flap_once();
  ASSERT_EQ(suppression_lengths.size(), 3u);
  EXPECT_EQ(suppression_lengths[1], microseconds(200));
  EXPECT_EQ(suppression_lengths[2], microseconds(100));
}

TEST(HealthMonitor, RecoveryLandsExactlyAtTheHoldDownBoundary) {
  // The hold-down is inclusive of its start and exclusive of its end: a
  // probe one tick before `suppressed_until` is damped, a probe exactly
  // at it revives.  Drive the penalty all the way to hold_down_cap so
  // the boundary tested is the cap itself.
  HealthMonitor monitor(1, fast_config());
  TimePs suppressed_until = 0;
  monitor.set_damp_hook([&](topo::LinkId, TimePs until, TimePs) { suppressed_until = until; });

  // Flap until the penalty saturates: 100 -> 200 -> 400 -> 800 -> 1600.
  TimePs t = 0;
  TimePs last_death = 0;
  for (int cycle = 0; cycle < 5; ++cycle) {
    for (int i = 0; i < 3; ++i) monitor.record_probe(0, false, t += microseconds(10));
    last_death = t;
    while (monitor.health(0) == LinkHealth::kDead) {
      monitor.record_probe(0, true, t += microseconds(10));
    }
  }
  // One more rapid death: the hold-down is pinned at the cap.
  for (int i = 0; i < 3; ++i) monitor.record_probe(0, false, t += microseconds(10));
  last_death = t;
  ASSERT_EQ(monitor.health(0), LinkHealth::kDead);

  // Build the ack streak, then probe one tick inside the window.
  for (int i = 0; i < 3; ++i) monitor.record_probe(0, true, t += microseconds(10));
  monitor.record_probe(0, true, last_death + fast_config().hold_down_cap - 1);
  EXPECT_EQ(monitor.health(0), LinkHealth::kDead);
  EXPECT_EQ(suppressed_until, last_death + fast_config().hold_down_cap);

  // Exactly at the boundary the pending recovery goes through.
  const std::uint64_t revivals_before = monitor.revivals();
  monitor.record_probe(0, true, last_death + fast_config().hold_down_cap);
  EXPECT_NE(monitor.health(0), LinkHealth::kDead);
  EXPECT_EQ(monitor.revivals(), revivals_before + 1);
}

TEST(HealthMonitor, FlapMemoryBoundaryDecidesWhetherTheHoldDownDoubles) {
  // A re-death exactly flap_memory after the previous death still
  // counts as a flap (<=) and doubles the hold-down; one tick later the
  // penalty resets to the base.
  const HealthMonitorConfig config = fast_config();
  for (const TimePs gap : {config.flap_memory, config.flap_memory + 1}) {
    HealthMonitor monitor(1, config);
    std::vector<TimePs> suppression_lengths;
    TimePs last_death = 0;
    monitor.set_transition_hook([&](topo::LinkId, LinkHealth, LinkHealth to, TimePs when) {
      if (to == LinkHealth::kDead) last_death = when;
    });
    monitor.set_damp_hook([&](topo::LinkId, TimePs until, TimePs) {
      suppression_lengths.push_back(until - last_death);
    });

    TimePs t = 0;
    for (int i = 0; i < 3; ++i) monitor.record_probe(0, false, t += microseconds(10));
    while (monitor.health(0) == LinkHealth::kDead) {
      monitor.record_probe(0, true, t += microseconds(10));
    }
    // Time the next death to land exactly `gap` after the first one:
    // two misses of setup, the third miss is the death.
    const TimePs redeath_at = last_death + gap;
    monitor.record_probe(0, false, redeath_at - 2);
    monitor.record_probe(0, false, redeath_at - 1);
    monitor.record_probe(0, false, redeath_at);
    ASSERT_EQ(monitor.health(0), LinkHealth::kDead);
    t = redeath_at;
    while (monitor.health(0) == LinkHealth::kDead) {
      monitor.record_probe(0, true, t += microseconds(10));
    }

    ASSERT_EQ(suppression_lengths.size(), 2u);
    EXPECT_EQ(suppression_lengths[0], config.hold_down);
    EXPECT_EQ(suppression_lengths[1],
              gap <= config.flap_memory ? 2 * config.hold_down : config.hold_down);
  }
}

TEST(HealthMonitor, EwmaCrossingHysteresisBothWaysBumpsTheEpoch) {
  // Oracles cache compiled routes against the LossView epoch, so both
  // hysteresis crossings — healthy -> lossy on the way up, lossy ->
  // healthy on the way down — must move it, within one probe window.
  HealthMonitor monitor(1, fast_config());
  const LossView& view = monitor;
  TimePs t = 0;

  // Climb: alternate misses/acks until the EWMA crosses lossy_enter.
  std::uint64_t epoch_before_enter = view.epoch();
  int i = 0;
  while (monitor.health(0) == LinkHealth::kHealthy) {
    monitor.record_probe(0, ++i % 2 == 0, t += microseconds(10));
  }
  ASSERT_EQ(monitor.health(0), LinkHealth::kLossy);
  EXPECT_GT(view.epoch(), epoch_before_enter);

  // Decay: deliveries walk the EWMA down through lossy_exit.
  const std::uint64_t epoch_before_exit = view.epoch();
  while (monitor.health(0) == LinkHealth::kLossy) {
    monitor.record_probe(0, true, t += microseconds(10));
  }
  ASSERT_EQ(monitor.health(0), LinkHealth::kHealthy);
  EXPECT_GT(view.epoch(), epoch_before_exit);

  // Every EWMA movement invalidates, not just the threshold crossings:
  // a single probe on a quiet healthy link still bumps.
  const std::uint64_t epoch_quiet = view.epoch();
  monitor.record_probe(0, false, t += microseconds(10));
  EXPECT_GT(view.epoch(), epoch_quiet);
}

TEST(HealthMonitor, DeadLinkReportsTotalLossToOracles) {
  HealthMonitor monitor(2, fast_config());
  TimePs t = 0;
  for (int i = 0; i < 3; ++i) monitor.record_probe(0, false, t += microseconds(10));
  const LossView& view = monitor;
  EXPECT_DOUBLE_EQ(view.loss_rate(0), 1.0);   // dead = certain loss
  EXPECT_LT(monitor.loss_ewma(0), 1.0);       // raw EWMA is not forced
  EXPECT_DOUBLE_EQ(view.loss_rate(1), 0.0);   // untouched link is clean
}

TEST(HealthMonitor, RejectsBadConfigAndUnknownLinks) {
  HealthMonitorConfig bad = fast_config();
  bad.dead_after_misses = 0;
  EXPECT_THROW(HealthMonitor(1, bad), std::invalid_argument);
  bad = fast_config();
  bad.ewma_alpha = 0.0;
  EXPECT_THROW(HealthMonitor(1, bad), std::invalid_argument);
  bad = fast_config();
  bad.lossy_exit = bad.lossy_enter + 0.1;
  EXPECT_THROW(HealthMonitor(1, bad), std::invalid_argument);
  bad = fast_config();
  bad.hold_down_cap = bad.hold_down - 1;
  EXPECT_THROW(HealthMonitor(1, bad), std::invalid_argument);

  HealthMonitor monitor(2, fast_config());
  EXPECT_THROW(monitor.record_probe(2, true, 0), std::invalid_argument);
  EXPECT_THROW(monitor.record_probe(-1, true, 0), std::invalid_argument);
  EXPECT_THROW(monitor.health(7), std::invalid_argument);
}

}  // namespace
}  // namespace quartz::routing
