#include "routing/kshortest.hpp"

#include <gtest/gtest.h>

#include <set>

#include "topo/builders.hpp"

namespace quartz::routing {
namespace {

using topo::NodeId;

TEST(KShortest, MeshEnumeratesDirectThenDetours) {
  topo::QuartzRingParams p;
  p.switches = 5;
  p.hosts_per_switch = 1;
  const auto t = topo::quartz_ring(p);
  const auto paths =
      k_shortest_paths(t.graph, t.host_groups[0][0], t.host_groups[2][0], 4);
  ASSERT_EQ(paths.size(), 4u);
  // Shortest: host - tor0 - tor2 - host (4 nodes).
  EXPECT_EQ(paths[0].size(), 4u);
  // The next three are two-hop detours (5 nodes).
  for (std::size_t i = 1; i < paths.size(); ++i) EXPECT_EQ(paths[i].size(), 5u);
}

TEST(KShortest, PathsAreLooplessAndDistinct) {
  topo::JellyfishParams p;
  const auto t = topo::jellyfish(p);
  const auto paths = k_shortest_paths(t.graph, t.hosts[0], t.hosts[40], 8);
  EXPECT_GE(paths.size(), 2u);
  std::set<std::vector<NodeId>> unique(paths.begin(), paths.end());
  EXPECT_EQ(unique.size(), paths.size());
  for (const auto& path : paths) {
    std::set<NodeId> nodes(path.begin(), path.end());
    EXPECT_EQ(nodes.size(), path.size()) << "loop in path";
    EXPECT_EQ(path.front(), t.hosts[0]);
    EXPECT_EQ(path.back(), t.hosts[40]);
  }
}

TEST(KShortest, LengthsAreNonDecreasing) {
  topo::ThreeTierParams p;
  const auto t = topo::three_tier_tree(p);
  const auto paths =
      k_shortest_paths(t.graph, t.host_groups[0][0], t.host_groups[1][5], 6);
  for (std::size_t i = 1; i < paths.size(); ++i) {
    EXPECT_GE(paths[i].size(), paths[i - 1].size());
  }
}

TEST(KShortest, TreeHasLimitedPaths) {
  topo::TwoTierParams p;
  p.tors = 3;
  p.hosts_per_tor = 2;
  p.aggs = 1;
  const auto t = topo::two_tier_tree(p);
  const auto paths =
      k_shortest_paths(t.graph, t.host_groups[0][0], t.host_groups[2][0], 10);
  // Single agg, single uplink each: exactly one path exists.
  EXPECT_EQ(paths.size(), 1u);
}

TEST(KShortest, HostsDoNotRelay) {
  topo::QuartzRingParams p;
  p.switches = 2;
  p.hosts_per_switch = 2;
  const auto t = topo::quartz_ring(p);
  const auto paths =
      k_shortest_paths(t.graph, t.host_groups[0][0], t.host_groups[1][0], 5);
  for (const auto& path : paths) {
    for (std::size_t i = 1; i + 1 < path.size(); ++i) {
      EXPECT_TRUE(t.graph.is_switch(path[i]));
    }
  }
}

TEST(KShortest, RejectsBadArguments) {
  topo::QuartzRingParams p;
  p.switches = 3;
  const auto t = topo::quartz_ring(p);
  EXPECT_THROW(k_shortest_paths(t.graph, t.hosts[0], t.hosts[0], 3), std::invalid_argument);
  EXPECT_THROW(k_shortest_paths(t.graph, t.hosts[0], t.hosts[1], 0), std::invalid_argument);
}

class KShortestMeshSweep : public ::testing::TestWithParam<int> {};

TEST_P(KShortestMeshSweep, MeshYieldsExactlyMMinusOneShortPaths) {
  // 1 direct + (M-2) two-hop detours, then longer ones.
  const int m = GetParam();
  topo::QuartzRingParams p;
  p.switches = m;
  p.hosts_per_switch = 1;
  const auto t = topo::quartz_ring(p);
  const auto paths = k_shortest_paths(t.graph, t.hosts[0], t.hosts[1], m - 1);
  ASSERT_EQ(static_cast<int>(paths.size()), m - 1);
  EXPECT_EQ(paths[0].size(), 4u);
  for (std::size_t i = 1; i < paths.size(); ++i) EXPECT_EQ(paths[i].size(), 5u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, KShortestMeshSweep, ::testing::Values(3, 4, 5, 6, 8));

}  // namespace
}  // namespace quartz::routing
