#include "routing/oracle.hpp"

#include <gtest/gtest.h>

#include <map>

#include "topo/builders.hpp"

namespace quartz::routing {
namespace {

using topo::LinkId;
using topo::NodeId;

struct MeshFixture {
  topo::BuiltTopology topo;
  std::unique_ptr<EcmpRouting> routing;

  explicit MeshFixture(int switches = 6, int hosts = 2) {
    topo::QuartzRingParams p;
    p.switches = switches;
    p.hosts_per_switch = hosts;
    topo = topo::quartz_ring(p);
    routing = std::make_unique<EcmpRouting>(topo.graph);
  }
};

/// Walk a packet from src to dst using the oracle; returns the switch
/// sequence visited.
std::vector<NodeId> walk(const topo::Graph& graph, const RoutingOracle& oracle, NodeId src,
                         NodeId dst, std::uint64_t flow_hash) {
  FlowKey key;
  key.src = src;
  key.dst = dst;
  key.flow_hash = mix_hash(flow_hash);
  std::vector<NodeId> visited;
  NodeId at = src;
  for (int hop = 0; hop < 32 && at != dst; ++hop) {
    const LinkId link = oracle.next_link(at, key);
    at = graph.link(link).other(at);
    if (graph.is_switch(at)) visited.push_back(at);
  }
  EXPECT_EQ(at, dst) << "packet did not reach its destination";
  return visited;
}

TEST(EcmpOracle, MeshAlwaysDirect) {
  const MeshFixture f;
  const EcmpOracle oracle(*f.routing);
  for (std::uint64_t flow = 0; flow < 32; ++flow) {
    const auto path =
        walk(f.topo.graph, oracle, f.topo.host_groups[0][0], f.topo.host_groups[4][1], flow);
    EXPECT_EQ(path.size(), 2u);  // ingress ToR + egress ToR only
  }
}

TEST(VlbOracle, FractionZeroIsDirect) {
  const MeshFixture f;
  const VlbOracle oracle(*f.routing, f.topo.quartz_rings, 0.0);
  for (std::uint64_t flow = 0; flow < 32; ++flow) {
    const auto path =
        walk(f.topo.graph, oracle, f.topo.host_groups[0][0], f.topo.host_groups[3][0], flow);
    EXPECT_EQ(path.size(), 2u);
  }
}

TEST(VlbOracle, FractionOneAlwaysDetours) {
  const MeshFixture f;
  const VlbOracle oracle(*f.routing, f.topo.quartz_rings, 1.0);
  for (std::uint64_t flow = 0; flow < 32; ++flow) {
    const auto path =
        walk(f.topo.graph, oracle, f.topo.host_groups[0][0], f.topo.host_groups[3][0], flow);
    ASSERT_EQ(path.size(), 3u);  // ingress, intermediate, egress
    EXPECT_NE(path[1], f.topo.tors[0]);
    EXPECT_NE(path[1], f.topo.tors[3]);
  }
}

TEST(VlbOracle, FractionSplitsApproximately) {
  const MeshFixture f(8, 2);
  const double fraction = 0.5;
  const VlbOracle oracle(*f.routing, f.topo.quartz_rings, fraction);
  int detoured = 0;
  const int flows = 2000;
  for (std::uint64_t flow = 0; flow < static_cast<std::uint64_t>(flows); ++flow) {
    const auto path =
        walk(f.topo.graph, oracle, f.topo.host_groups[0][0], f.topo.host_groups[5][1], flow);
    if (path.size() == 3u) ++detoured;
  }
  EXPECT_NEAR(static_cast<double>(detoured) / flows, fraction, 0.05);
}

TEST(VlbOracle, DetourSpreadsOverIntermediates) {
  const MeshFixture f(8, 2);
  const VlbOracle oracle(*f.routing, f.topo.quartz_rings, 1.0);
  std::map<NodeId, int> intermediate_counts;
  for (std::uint64_t flow = 0; flow < 3000; ++flow) {
    const auto path =
        walk(f.topo.graph, oracle, f.topo.host_groups[0][0], f.topo.host_groups[4][0], flow);
    ASSERT_EQ(path.size(), 3u);
    ++intermediate_counts[path[1]];
  }
  // 6 eligible intermediates; each should carry a meaningful share.
  EXPECT_EQ(intermediate_counts.size(), 6u);
  for (const auto& [node, count] : intermediate_counts) {
    EXPECT_GT(count, 3000 / 6 / 3) << "intermediate " << node << " underused";
  }
}

TEST(VlbOracle, SamePairSameFlowIsStable) {
  const MeshFixture f;
  const VlbOracle oracle(*f.routing, f.topo.quartz_rings, 0.5);
  const auto first =
      walk(f.topo.graph, oracle, f.topo.host_groups[1][0], f.topo.host_groups[5][0], 77);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(walk(f.topo.graph, oracle, f.topo.host_groups[1][0], f.topo.host_groups[5][0], 77),
              first);
  }
}

TEST(VlbOracle, IntraSwitchTrafficUnaffected) {
  const MeshFixture f;
  const VlbOracle oracle(*f.routing, f.topo.quartz_rings, 1.0);
  const auto path =
      walk(f.topo.graph, oracle, f.topo.host_groups[2][0], f.topo.host_groups[2][1], 5);
  EXPECT_EQ(path.size(), 1u);  // just the shared ToR
}

TEST(VlbOracle, RejectsBadFraction) {
  const MeshFixture f;
  EXPECT_THROW(VlbOracle(*f.routing, f.topo.quartz_rings, -0.1), std::invalid_argument);
  EXPECT_THROW(VlbOracle(*f.routing, f.topo.quartz_rings, 1.5), std::invalid_argument);
}

TEST(PinnedDetourOracle, PinnedPairTakesDetour) {
  const MeshFixture f(4, 2);
  PinnedDetourOracle oracle(*f.routing, f.topo.quartz_rings);
  const NodeId src = f.topo.host_groups[1][0];
  const NodeId dst = f.topo.host_groups[2][0];
  oracle.pin(src, dst, f.topo.tors[3]);

  const auto pinned_path = walk(f.topo.graph, oracle, src, dst, 9);
  ASSERT_EQ(pinned_path.size(), 3u);
  EXPECT_EQ(pinned_path[1], f.topo.tors[3]);

  // The reverse direction is not pinned.
  const auto reverse_path = walk(f.topo.graph, oracle, dst, src, 9);
  EXPECT_EQ(reverse_path.size(), 2u);

  // Other pairs are plain ECMP.
  const auto other =
      walk(f.topo.graph, oracle, f.topo.host_groups[0][0], f.topo.host_groups[2][1], 9);
  EXPECT_EQ(other.size(), 2u);
}

TEST(PinnedDetourOracle, PinRejectsNonRingIntermediate) {
  const MeshFixture f(4, 2);
  PinnedDetourOracle oracle(*f.routing, f.topo.quartz_rings);
  EXPECT_THROW(oracle.pin(f.topo.hosts[0], f.topo.hosts[1], f.topo.hosts[2]),
               std::invalid_argument);
}

TEST(AdaptiveVlbOracle, WithoutProbeIsPureEcmp) {
  const MeshFixture f(6, 2);
  AdaptiveVlbOracle oracle(*f.routing, f.topo.quartz_rings);
  for (std::uint64_t flow = 0; flow < 16; ++flow) {
    const auto path =
        walk(f.topo.graph, oracle, f.topo.host_groups[0][0], f.topo.host_groups[3][0], flow);
    EXPECT_EQ(path.size(), 2u);
  }
}

TEST(AdaptiveVlbOracle, DetoursWhenProbeReportsCongestion) {
  const MeshFixture f(6, 2);
  // A fake probe that reports one specific link as congested.
  class FakeProbe : public LoadProbe {
   public:
    explicit FakeProbe(topo::LinkId hot) : hot_(hot) {}
    TimePs queue_delay(topo::LinkId link, int) const override {
      return link == hot_ ? milliseconds(1) : 0;
    }

   private:
    topo::LinkId hot_;
  };
  // Find the direct lightpath between tors[0] and tors[3].
  topo::LinkId direct = topo::kInvalidLink;
  for (const auto& link : f.topo.graph.links()) {
    if ((link.a == f.topo.tors[0] && link.b == f.topo.tors[3]) ||
        (link.a == f.topo.tors[3] && link.b == f.topo.tors[0])) {
      direct = link.id;
    }
  }
  ASSERT_NE(direct, topo::kInvalidLink);
  const FakeProbe probe(direct);

  AdaptiveVlbOracle oracle(*f.routing, f.topo.quartz_rings, microseconds(1));
  oracle.attach_probe(&probe);
  const auto path =
      walk(f.topo.graph, oracle, f.topo.host_groups[0][0], f.topo.host_groups[3][0], 3);
  ASSERT_EQ(path.size(), 3u);  // detoured around the hot lightpath
  EXPECT_NE(path[1], f.topo.tors[0]);
  EXPECT_NE(path[1], f.topo.tors[3]);
}

TEST(AdaptiveVlbOracle, StaysDirectWhenEverythingIsHot) {
  const MeshFixture f(5, 2);
  class AllHotProbe : public LoadProbe {
   public:
    TimePs queue_delay(topo::LinkId, int) const override { return milliseconds(1); }
  };
  const AllHotProbe probe;
  AdaptiveVlbOracle oracle(*f.routing, f.topo.quartz_rings, microseconds(1));
  oracle.attach_probe(&probe);
  // No intermediate beats the direct path, so take it.
  const auto path =
      walk(f.topo.graph, oracle, f.topo.host_groups[0][0], f.topo.host_groups[2][0], 1);
  EXPECT_EQ(path.size(), 2u);
}

/// Direct mesh link between two switches.
LinkId direct_link(const topo::BuiltTopology& t, NodeId a, NodeId b) {
  for (const auto& adj : t.graph.neighbors(a)) {
    if (adj.peer == b) return adj.link;
  }
  return topo::kInvalidLink;
}

TEST(FailureView, TracksDeadLinksAndReadsUnknownAsAlive) {
  FailureView view(4);
  EXPECT_FALSE(view.is_dead(2));
  EXPECT_FALSE(view.is_dead(99));  // out of range degrades to alive
  view.set_dead(2, true);
  EXPECT_TRUE(view.is_dead(2));
  EXPECT_EQ(view.dead_count(), 1u);
  view.set_dead(2, false);
  EXPECT_FALSE(view.is_dead(2));
  EXPECT_EQ(view.dead_count(), 0u);
}

TEST(EcmpOracle, DetoursAroundDetectedDeadLightpath) {
  const MeshFixture f(6, 2);
  EcmpOracle oracle(*f.routing);
  FailureView view(f.topo.graph.link_count());
  oracle.attach_failure_view(&view);
  const NodeId src = f.topo.host_groups[0][0];
  const NodeId dst = f.topo.host_groups[3][0];
  const LinkId direct = direct_link(f.topo, f.topo.tors[0], f.topo.tors[3]);
  ASSERT_NE(direct, topo::kInvalidLink);

  EXPECT_EQ(walk(f.topo.graph, oracle, src, dst, 7).size(), 2u);
  view.set_dead(direct, true);
  for (std::uint64_t flow = 0; flow < 16; ++flow) {
    const auto path = walk(f.topo.graph, oracle, src, dst, flow);
    ASSERT_EQ(path.size(), 3u);  // deflected one switch around the cut
    EXPECT_NE(path[1], f.topo.tors[0]);
    EXPECT_NE(path[1], f.topo.tors[3]);
  }
  view.set_dead(direct, false);
  EXPECT_EQ(walk(f.topo.graph, oracle, src, dst, 7).size(), 2u);
}

TEST(VlbOracle, HealsDeadDirectPathOverTwoHopDetour) {
  const MeshFixture f(6, 2);
  VlbOracle oracle(*f.routing, f.topo.quartz_rings, 0.0);
  FailureView view(f.topo.graph.link_count());
  oracle.attach_failure_view(&view);
  const LinkId direct = direct_link(f.topo, f.topo.tors[1], f.topo.tors[4]);
  view.set_dead(direct, true);
  for (std::uint64_t flow = 0; flow < 16; ++flow) {
    const auto path =
        walk(f.topo.graph, oracle, f.topo.host_groups[1][0], f.topo.host_groups[4][0], flow);
    ASSERT_EQ(path.size(), 3u);
    // Both detour legs avoid the dead lightpath by construction.
    EXPECT_NE(direct_link(f.topo, path[0], path[1]), direct);
    EXPECT_NE(direct_link(f.topo, path[1], path[2]), direct);
  }
}

TEST(VlbOracle, DetourIntermediatesExcludeDeadLegs) {
  // With fraction 1 every flow detours; intermediates whose legs are
  // dead must never be chosen.
  const MeshFixture f(6, 2);
  VlbOracle oracle(*f.routing, f.topo.quartz_rings, 1.0);
  FailureView view(f.topo.graph.link_count());
  oracle.attach_failure_view(&view);
  const NodeId banned = f.topo.tors[2];
  view.set_dead(direct_link(f.topo, f.topo.tors[0], banned), true);
  for (std::uint64_t flow = 0; flow < 64; ++flow) {
    const auto path =
        walk(f.topo.graph, oracle, f.topo.host_groups[0][0], f.topo.host_groups[3][0], flow);
    ASSERT_EQ(path.size(), 3u);
    EXPECT_NE(path[1], banned) << "detoured through a dead first leg";
  }
}

TEST(AdaptiveVlbOracle, RoutesAroundDeadLightpathWithoutProbe) {
  const MeshFixture f(6, 2);
  AdaptiveVlbOracle oracle(*f.routing, f.topo.quartz_rings);
  FailureView view(f.topo.graph.link_count());
  oracle.attach_failure_view(&view);
  view.set_dead(direct_link(f.topo, f.topo.tors[0], f.topo.tors[3]), true);
  for (std::uint64_t flow = 0; flow < 16; ++flow) {
    const auto path =
        walk(f.topo.graph, oracle, f.topo.host_groups[0][0], f.topo.host_groups[3][0], flow);
    ASSERT_EQ(path.size(), 3u);
    EXPECT_NE(path[1], f.topo.tors[0]);
    EXPECT_NE(path[1], f.topo.tors[3]);
  }
}

/// Loss estimates handed to the oracles by tests (stands in for the
/// HealthMonitor).
struct FakeLossView final : LossView {
  std::map<LinkId, double> loss;
  double loss_rate(LinkId link) const override {
    const auto it = loss.find(link);
    return it == loss.end() ? 0.0 : it->second;
  }
};

TEST(EcmpOracle, AllZeroLossViewChangesNothing) {
  const MeshFixture f(6, 2);
  EcmpOracle plain(*f.routing);
  EcmpOracle attached(*f.routing);
  FakeLossView losses;  // empty: every link reads 0.0
  attached.attach_loss_view(&losses);
  for (std::uint64_t flow = 0; flow < 32; ++flow) {
    EXPECT_EQ(walk(f.topo.graph, plain, f.topo.host_groups[0][0], f.topo.host_groups[3][0], flow),
              walk(f.topo.graph, attached, f.topo.host_groups[0][0], f.topo.host_groups[3][0],
                   flow));
  }
}

TEST(EcmpOracle, DeflectsAroundLossyLightpath) {
  const MeshFixture f(6, 2);
  EcmpOracle oracle(*f.routing);
  FakeLossView losses;
  oracle.attach_loss_view(&losses);
  const NodeId src = f.topo.host_groups[0][0];
  const NodeId dst = f.topo.host_groups[3][0];
  const LinkId direct = direct_link(f.topo, f.topo.tors[0], f.topo.tors[3]);

  // A 30% gray failure on the direct lightpath: clean two-hop detours
  // beat it, so every flow deflects.
  losses.loss[direct] = 0.3;
  for (std::uint64_t flow = 0; flow < 16; ++flow) {
    const auto path = walk(f.topo.graph, oracle, src, dst, flow);
    ASSERT_EQ(path.size(), 3u);
    EXPECT_NE(path[1], f.topo.tors[0]);
    EXPECT_NE(path[1], f.topo.tors[3]);
  }
  // Healed: straight back to the direct lightpath.
  losses.loss.clear();
  EXPECT_EQ(walk(f.topo.graph, oracle, src, dst, 7).size(), 2u);
}

TEST(EcmpOracle, TracksTheSoftFailThreshold) {
  const MeshFixture f(6, 2);
  EcmpOracle oracle(*f.routing);
  FakeLossView losses;
  oracle.attach_loss_view(&losses);
  const NodeId src = f.topo.host_groups[0][0];
  const NodeId dst = f.topo.host_groups[3][0];
  losses.loss[direct_link(f.topo, f.topo.tors[0], f.topo.tors[3])] = 0.01;

  // 1% loss sits below the default 2% soft-fail threshold: stay direct.
  EXPECT_EQ(walk(f.topo.graph, oracle, src, dst, 7).size(), 2u);
  // Tighten the threshold and the same loss becomes a soft failure.
  oracle.set_soft_fail_threshold(0.001);
  EXPECT_EQ(walk(f.topo.graph, oracle, src, dst, 7).size(), 3u);
  EXPECT_THROW(oracle.set_soft_fail_threshold(-0.1), std::invalid_argument);
}

TEST(EcmpOracle, StaysDirectWhenEveryDetourIsWorse) {
  const MeshFixture f(6, 2);
  EcmpOracle oracle(*f.routing);
  FakeLossView losses;
  oracle.attach_loss_view(&losses);
  const NodeId src = f.topo.host_groups[0][0];
  const NodeId dst = f.topo.host_groups[3][0];
  // The direct lightpath is gray (30%), but every other lightpath of
  // the mesh is worse (25% per leg = ~44% per two-hop detour).
  for (const auto& link : f.topo.graph.links()) losses.loss[link.id] = 0.25;
  losses.loss[direct_link(f.topo, f.topo.tors[0], f.topo.tors[3])] = 0.3;
  EXPECT_EQ(walk(f.topo.graph, oracle, src, dst, 7).size(), 2u);
}

TEST(AdaptiveVlbOracle, HealsLossyDirectPathOverTwoHopDetour) {
  const MeshFixture f(6, 2);
  AdaptiveVlbOracle oracle(*f.routing, f.topo.quartz_rings);
  FakeLossView losses;
  oracle.attach_loss_view(&losses);
  const LinkId direct = direct_link(f.topo, f.topo.tors[0], f.topo.tors[3]);
  losses.loss[direct] = 0.5;
  for (std::uint64_t flow = 0; flow < 16; ++flow) {
    const auto path =
        walk(f.topo.graph, oracle, f.topo.host_groups[0][0], f.topo.host_groups[3][0], flow);
    ASSERT_EQ(path.size(), 3u);
    EXPECT_NE(direct_link(f.topo, path[0], path[1]), direct);
    EXPECT_NE(direct_link(f.topo, path[1], path[2]), direct);
  }
}

TEST(SpanningTreeOracle, RoutesAlongTree) {
  topo::TwoTierParams p;
  p.tors = 4;
  p.hosts_per_tor = 2;
  const auto t = topo::two_tier_tree(p);
  const SpanningTreeOracle oracle(t.graph, t.aggs[0]);
  const auto path = walk(t.graph, oracle, t.host_groups[0][0], t.host_groups[3][1], 1);
  // ToR up, agg, ToR down.
  EXPECT_EQ(path.size(), 3u);
  EXPECT_EQ(path[1], t.aggs[0]);
}

TEST(SpanningTreeOracle, MeshUsesOnlyTreeLinks) {
  // §3.4: Ethernet's single spanning tree wastes the mesh - every
  // cross-switch path detours through the root.
  const MeshFixture f(5, 2);
  const SpanningTreeOracle oracle(f.topo.graph, f.topo.tors[0]);
  const auto path =
      walk(f.topo.graph, oracle, f.topo.host_groups[1][0], f.topo.host_groups[2][0], 3);
  // Root is tors[0]; path 1 -> 0 -> 2 (two mesh links via root).
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[1], f.topo.tors[0]);
}

TEST(SpanningTreeOracle, SameSwitchShortCircuit) {
  const MeshFixture f(4, 2);
  const SpanningTreeOracle oracle(f.topo.graph, f.topo.tors[0]);
  const auto path =
      walk(f.topo.graph, oracle, f.topo.host_groups[1][0], f.topo.host_groups[1][1], 3);
  EXPECT_EQ(path.size(), 1u);
}

}  // namespace
}  // namespace quartz::routing
