// Compiled-FIB regression suite: for every oracle the FIB must make
// bit-identical decisions to the legacy next_link path — healthy,
// with dead links, and with gray (lossy) links — while serving
// steady-state lookups from compiled entries, invalidating them on
// epoch changes, and keeping the adaptive oracle's flowlet memory at
// fixed capacity.
#include <gtest/gtest.h>

#include <unordered_map>
#include <vector>

#include "routing/ecmp.hpp"
#include "routing/failure_view.hpp"
#include "routing/fib.hpp"
#include "routing/flowlet_table.hpp"
#include "routing/oracle.hpp"
#include "topo/builders.hpp"

namespace quartz::routing {
namespace {

class StubLoss final : public LossView {
 public:
  void set(topo::LinkId link, double p) {
    loss_[link] = p;
    bump_epoch();
  }
  double loss_rate(topo::LinkId link) const override {
    const auto it = loss_.find(link);
    return it == loss_.end() ? 0.0 : it->second;
  }

 private:
  std::unordered_map<topo::LinkId, double> loss_;
};

class StubProbe final : public LoadProbe {
 public:
  TimePs queue_delay(topo::LinkId, int) const override { return delay_; }
  void set_delay(TimePs d) { delay_ = d; }

 private:
  TimePs delay_ = 0;
};

class StubClock final : public Clock {
 public:
  TimePs sim_now() const override { return now_; }
  void advance(TimePs dt) { now_ += dt; }

 private:
  TimePs now_ = 1;
};

topo::BuiltTopology ring_topo(int switches = 8, int hosts = 2) {
  topo::QuartzRingParams params;
  params.switches = switches;
  params.hosts_per_switch = hosts;
  return topo::quartz_ring(params);
}

/// The link sequence a packet takes under `decide`, walking the graph
/// until the destination (or a hop cap, e.g. when forwarded onto dead
/// links both paths must agree anyway).
template <typename Decide>
std::vector<topo::LinkId> walk(const topo::Graph& graph, Decide&& decide, topo::NodeId src,
                               topo::NodeId dst, std::uint64_t hash) {
  FlowKey key;
  key.src = src;
  key.dst = dst;
  key.flow_hash = hash;
  std::vector<topo::LinkId> path;
  topo::NodeId node = src;
  for (int hop = 0; hop < 32 && node != dst; ++hop) {
    const topo::LinkId link = decide(node, key);
    path.push_back(link);
    node = graph.link(link).other(node);
  }
  return path;
}

/// Every (src, dst, hash) walk must produce the same link sequence
/// through the FIB as through the oracle, and the FIB must have served
/// a healthy share of fast hits while doing it.
void expect_walks_match(const topo::BuiltTopology& topo, const RoutingOracle& oracle, Fib& fib,
                        bool expect_hits = true) {
  const topo::Graph& graph = topo.graph;
  for (std::uint64_t hash = 1; hash <= 5; ++hash) {
    for (const topo::NodeId src : topo.hosts) {
      for (const topo::NodeId dst : topo.hosts) {
        if (src == dst) continue;
        const auto legacy = walk(
            graph, [&](topo::NodeId n, FlowKey& k) { return oracle.next_link(n, k); }, src, dst,
            hash * 0x9E3779B97F4A7C15ull);
        const auto compiled = walk(
            graph, [&](topo::NodeId n, FlowKey& k) { return fib.next_link(n, k); }, src, dst,
            hash * 0x9E3779B97F4A7C15ull);
        ASSERT_EQ(legacy, compiled) << "src=" << src << " dst=" << dst << " hash=" << hash;
      }
    }
  }
  if (expect_hits) {
    EXPECT_GT(fib.stats().hits, 0u);
  }
}

TEST(Fib, MatchesEcmpOracleHealthy) {
  const topo::BuiltTopology topo = ring_topo();
  EcmpRouting routing(topo.graph);
  EcmpOracle oracle(routing);
  FailureView view(topo.graph.link_count());
  oracle.attach_failure_view(&view);
  Fib fib(routing, oracle);
  expect_walks_match(topo, oracle, fib);
  // A healthy mesh compiles completely: no decision should have gone
  // through the oracle.
  EXPECT_EQ(fib.stats().slow_path, 0u);
}

TEST(Fib, MatchesEcmpOracleWithDeadAndLossyLinks) {
  const topo::BuiltTopology topo = ring_topo();
  EcmpRouting routing(topo.graph);
  EcmpOracle oracle(routing);
  FailureView view(topo.graph.link_count());
  StubLoss loss;
  oracle.attach_failure_view(&view);
  oracle.attach_loss_view(&loss);
  Fib fib(routing, oracle);

  // Kill one mesh lightpath and gray another; decisions must still be
  // identical (the lossy candidate forces the slow deflection scan).
  std::vector<topo::LinkId> mesh;
  for (const auto& link : topo.graph.links()) {
    if (topo.graph.is_switch(link.a) && topo.graph.is_switch(link.b)) mesh.push_back(link.id);
  }
  ASSERT_GE(mesh.size(), 2u);
  view.set_dead(mesh[0], true);
  loss.set(mesh[mesh.size() / 2], 0.5);
  expect_walks_match(topo, oracle, fib);
  EXPECT_GT(fib.stats().slow_path, 0u);  // the lossy/dead groups stayed slow
}

TEST(Fib, MatchesVlbOracleHealthyAndUnderFailure) {
  const topo::BuiltTopology topo = ring_topo();
  EcmpRouting routing(topo.graph);
  VlbOracle oracle(routing, topo.quartz_rings, 0.7);
  FailureView view(topo.graph.link_count());
  oracle.attach_failure_view(&view);
  Fib fib(routing, oracle);
  expect_walks_match(topo, oracle, fib);
  // Detoured packets (carrying a via) deliberately take the slow path
  // at the intermediate switch; everything else should have compiled.
  EXPECT_GT(fib.stats().hits, fib.stats().slow_path);

  std::vector<topo::LinkId> mesh;
  for (const auto& link : topo.graph.links()) {
    if (topo.graph.is_switch(link.a) && topo.graph.is_switch(link.b)) mesh.push_back(link.id);
  }
  view.set_dead(mesh[1], true);
  expect_walks_match(topo, oracle, fib);
}

TEST(Fib, MatchesPinnedDetourOracle) {
  const topo::BuiltTopology topo = ring_topo(4, 3);
  EcmpRouting routing(topo.graph);
  PinnedDetourOracle oracle(routing, topo.quartz_rings);
  Fib fib(routing, oracle);
  // Pin one host pair through the far ring switch; its destination's
  // whole group must go slow while unpinned traffic stays compiled.
  oracle.pin(topo.hosts[0], topo.hosts[4], topo.quartz_rings[0][3]);
  expect_walks_match(topo, oracle, fib);
  EXPECT_GT(fib.stats().slow_path, 0u);
  EXPECT_GT(fib.stats().hits, 0u);
}

TEST(Fib, MatchesAdaptiveVlbOracle) {
  const topo::BuiltTopology topo = ring_topo();
  EcmpRouting topo_routing(topo.graph);
  StubProbe probe;
  probe.set_delay(microseconds(10));  // every direct path looks congested
  AdaptiveVlbOracle oracle(topo_routing, topo.quartz_rings, microseconds(1));
  oracle.attach_probe(&probe);
  Fib fib(topo_routing, oracle);
  expect_walks_match(topo, oracle, fib);
  // Mesh ingress decisions are queue-adaptive and must stay slow; host
  // ports still compile.
  EXPECT_GT(fib.stats().slow_path, 0u);
}

TEST(Fib, EpochInvalidationRecompilesLazily) {
  const topo::BuiltTopology topo = ring_topo();
  EcmpRouting routing(topo.graph);
  EcmpOracle oracle(routing);
  FailureView view(topo.graph.link_count());
  oracle.attach_failure_view(&view);
  Fib fib(routing, oracle);

  FlowKey key;
  key.src = topo.hosts[0];
  key.dst = topo.hosts[2];
  key.flow_hash = 42;
  const topo::NodeId tor = topo.graph.neighbors(key.src)[0].peer;

  const topo::LinkId first = fib.next_link(tor, key);
  EXPECT_EQ(fib.stats().misses, 1u);
  EXPECT_EQ(fib.next_link(tor, key), first);
  EXPECT_EQ(fib.stats().hits, 1u);

  // Killing the chosen lightpath bumps the view epoch: the entry goes
  // stale, recompiles, and now avoids the dead link — exactly what the
  // oracle would do.
  view.set_dead(first, true);
  const std::uint64_t invalidations_before = fib.stats().invalidations;
  FlowKey rerouted = key;
  const topo::LinkId healed = fib.next_link(tor, rerouted);
  EXPECT_NE(healed, first);
  EXPECT_EQ(fib.stats().invalidations, invalidations_before + 1);
  EXPECT_EQ(fib.stats().misses, 2u);
  FlowKey check = key;
  EXPECT_EQ(fib.next_link(tor, check), healed);

  // A set_dead that changes nothing must not invalidate anything.
  view.set_dead(first, true);
  FlowKey again = key;
  fib.next_link(tor, again);
  EXPECT_EQ(fib.stats().invalidations, invalidations_before + 1);
}

TEST(Fib, OracleReconfigurationInvalidates) {
  const topo::BuiltTopology topo = ring_topo();
  EcmpRouting routing(topo.graph);
  EcmpOracle oracle(routing);
  Fib fib(routing, oracle);
  FlowKey key;
  key.src = topo.hosts[0];
  key.dst = topo.hosts[2];
  key.flow_hash = 42;
  const topo::NodeId tor = topo.graph.neighbors(key.src)[0].peer;
  fib.next_link(tor, key);
  const std::uint64_t epoch = oracle.state_epoch();
  oracle.set_soft_fail_threshold(0.1);
  EXPECT_NE(oracle.state_epoch(), epoch);
  FlowKey again = key;
  fib.next_link(tor, again);
  EXPECT_EQ(fib.stats().invalidations, 2u);  // construction epoch + reconfig
}

TEST(FlowletTable, HoldsSizeConstantUnderManyFlows) {
  FlowletTable table;
  const std::size_t capacity = table.capacity();
  for (std::uint64_t flow = 0; flow < 50 * capacity; ++flow) {
    FlowletTable::Slot& slot = table.acquire(mix_hash(flow), TimePs{1000} + TimePs(flow), 100);
    slot.last_seen = TimePs{1000} + TimePs(flow);
  }
  EXPECT_EQ(table.capacity(), capacity);
  EXPECT_LE(table.occupied(), capacity);
  EXPECT_GT(table.occupied(), 0u);
}

TEST(FlowletTable, MatchReusesAndStaleSlotsRecycle) {
  FlowletTable table(16);
  FlowletTable::Slot& a = table.acquire(7, 100, 50);
  a.via = 3;
  a.last_seen = 100;
  // Within the timeout the same key returns the same live slot.
  FlowletTable::Slot& b = table.acquire(7, 120, 50);
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.via, 3);
  // A colliding key arriving long after expiry may recycle the slot,
  // and a recycled slot reads as brand-new.
  FlowletTable::Slot& c = table.acquire(7 + 16, 1000, 50);
  EXPECT_EQ(c.last_seen, 0);
  EXPECT_EQ(c.via, topo::kInvalidNode);
}

TEST(FlowletTable, AdaptiveOracleFlowletMemoryIsBounded) {
  const topo::BuiltTopology topo = ring_topo();
  EcmpRouting routing(topo.graph);
  StubProbe probe;
  StubClock clock;
  AdaptiveVlbOracle oracle(routing, topo.quartz_rings, microseconds(1));
  oracle.attach_probe(&probe);
  oracle.attach_clock(&clock);
  oracle.set_flowlet_timeout(microseconds(100));

  // A long run with far more distinct flows than slots: ingress-switch
  // decisions keep writing flowlet state, but the table never grows.
  const topo::NodeId src = topo.hosts[0];
  const topo::NodeId dst = topo.hosts[topo.hosts.size() - 1];
  const topo::NodeId tor = topo.graph.neighbors(src)[0].peer;
  const std::size_t capacity = oracle.flowlet_table().capacity();
  for (std::uint64_t flow = 0; flow < 20 * capacity; ++flow) {
    FlowKey key;
    key.src = src;
    key.dst = dst;
    key.flow_hash = mix_hash(flow);
    clock.advance(nanoseconds(50));
    oracle.next_link(tor, key);
  }
  EXPECT_EQ(oracle.flowlet_table().capacity(), capacity);
  EXPECT_LE(oracle.flowlet_table().occupied(), capacity);
  EXPECT_GT(oracle.flowlet_table().occupied(), 0u);
}

}  // namespace
}  // namespace quartz::routing
