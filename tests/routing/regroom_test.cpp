// Staged re-grooming on PinnedDetourOracle: make-before-break
// transactions, commit-time leg verification and epoch semantics.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "routing/oracle.hpp"
#include "topo/builders.hpp"

namespace quartz::routing {
namespace {

using topo::LinkId;
using topo::NodeId;

struct RegroomFixture {
  topo::BuiltTopology topo;
  std::unique_ptr<EcmpRouting> routing;
  std::unique_ptr<PinnedDetourOracle> oracle;

  explicit RegroomFixture(int switches = 4, int hosts = 2) {
    topo::QuartzRingParams p;
    p.switches = switches;
    p.hosts_per_switch = hosts;
    topo = topo::quartz_ring(p);
    routing = std::make_unique<EcmpRouting>(topo.graph);
    oracle = std::make_unique<PinnedDetourOracle>(*routing, topo.quartz_rings);
  }

  NodeId host(int sw, int i) const { return topo.host_groups[static_cast<std::size_t>(sw)][i]; }

  LinkId mesh_link(NodeId a, NodeId b) const {
    for (const auto& link : topo.graph.links()) {
      if (link.wdm_channel < 0) continue;
      if ((link.a == a && link.b == b) || (link.a == b && link.b == a)) return link.id;
    }
    return topo::kInvalidLink;
  }

  /// One routing decision at the source ToR for a host pair.
  LinkId route_once(NodeId src, NodeId dst) const {
    FlowKey key;
    key.src = src;
    key.dst = dst;
    key.flow_hash = mix_hash(17);
    return oracle->next_link(topo.tors[0], key);
  }
};

TEST(Regroom, StagedPinsDoNotRouteUntilCommit) {
  RegroomFixture f;
  const NodeId src = f.host(0, 0);
  const NodeId dst = f.host(1, 0);
  const std::uint64_t epoch_before = f.oracle->state_epoch();

  f.oracle->begin_regroom();
  f.oracle->stage_pin(src, dst, f.topo.tors[2]);
  EXPECT_TRUE(f.oracle->regrooming());
  EXPECT_EQ(f.oracle->pin_count(), 0u);
  EXPECT_EQ(f.oracle->state_epoch(), epoch_before);  // nothing applied yet

  const auto result = f.oracle->commit_regroom();
  EXPECT_EQ(result.applied, 1);
  EXPECT_EQ(result.rejected, 0);
  EXPECT_EQ(f.oracle->pin_count(), 1u);
  EXPECT_EQ(f.oracle->state_epoch(), epoch_before + 1);  // exactly one bump
  EXPECT_FALSE(f.oracle->regrooming());

  // The committed pin routes via the staged intermediate.
  const LinkId first_hop = f.route_once(src, dst);
  EXPECT_EQ(first_hop, f.mesh_link(f.topo.tors[0], f.topo.tors[2]));
}

TEST(Regroom, RoutingDuringOpenTransactionThrows) {
  RegroomFixture f;
  f.oracle->begin_regroom();
  EXPECT_THROW(f.route_once(f.host(0, 0), f.host(1, 0)), std::logic_error);
  f.oracle->abort_regroom();
  EXPECT_NO_THROW(f.route_once(f.host(0, 0), f.host(1, 0)));
}

TEST(Regroom, ImmediatePinDuringOpenTransactionThrows) {
  RegroomFixture f;
  f.oracle->begin_regroom();
  EXPECT_THROW(f.oracle->pin(f.host(0, 0), f.host(1, 0), f.topo.tors[2]), std::logic_error);
  f.oracle->abort_regroom();
}

TEST(Regroom, NestedBeginAndDanglingStageThrow) {
  RegroomFixture f;
  EXPECT_THROW(f.oracle->stage_pin(f.host(0, 0), f.host(1, 0), f.topo.tors[2]),
               std::logic_error);
  EXPECT_THROW(f.oracle->commit_regroom(), std::logic_error);
  f.oracle->begin_regroom();
  EXPECT_THROW(f.oracle->begin_regroom(), std::logic_error);
  f.oracle->abort_regroom();
}

TEST(Regroom, AbortDiscardsTheStagedPlan) {
  RegroomFixture f;
  const std::uint64_t epoch_before = f.oracle->state_epoch();
  f.oracle->begin_regroom();
  f.oracle->stage_pin(f.host(0, 0), f.host(1, 0), f.topo.tors[2]);
  f.oracle->abort_regroom();
  EXPECT_EQ(f.oracle->pin_count(), 0u);
  EXPECT_EQ(f.oracle->state_epoch(), epoch_before);
  // A later commit does not resurrect aborted changes.
  f.oracle->begin_regroom();
  const auto result = f.oracle->commit_regroom();
  EXPECT_EQ(result.applied, 0);
}

TEST(Regroom, CommitRejectsPinsWithDeadDetourLegs) {
  RegroomFixture f;
  FailureView view(f.topo.graph.link_count());
  f.oracle->attach_failure_view(&view);
  // Kill the first leg of the detour via tors[2]; the leg via tors[3]
  // stays alive.
  view.set_dead(f.mesh_link(f.topo.tors[0], f.topo.tors[2]), true);

  f.oracle->begin_regroom();
  f.oracle->stage_pin(f.host(0, 0), f.host(1, 0), f.topo.tors[2]);  // dead leg
  f.oracle->stage_pin(f.host(0, 1), f.host(1, 1), f.topo.tors[3]);  // alive
  const auto result = f.oracle->commit_regroom();
  EXPECT_EQ(result.applied, 1);
  EXPECT_EQ(result.rejected, 1);
  EXPECT_EQ(f.oracle->pin_count(), 1u);

  // The rejected pair keeps its previous (direct) route: break nothing
  // until the replacement is made.
  const LinkId hop = f.route_once(f.host(0, 0), f.host(1, 0));
  EXPECT_EQ(hop, f.mesh_link(f.topo.tors[0], f.topo.tors[1]));
}

TEST(Regroom, CommitRejectsViaEndpointSwitches) {
  RegroomFixture f;
  f.oracle->begin_regroom();
  // Detouring "via" either endpoint's own ToR is no detour at all.
  f.oracle->stage_pin(f.host(0, 0), f.host(1, 0), f.topo.tors[0]);
  f.oracle->stage_pin(f.host(0, 1), f.host(1, 1), f.topo.tors[1]);
  const auto result = f.oracle->commit_regroom();
  EXPECT_EQ(result.applied, 0);
  EXPECT_EQ(result.rejected, 2);
  EXPECT_EQ(f.oracle->pin_count(), 0u);
}

TEST(Regroom, UnpinRemovesAndRestoresTheFastPath) {
  RegroomFixture f;
  const NodeId src = f.host(0, 0);
  const NodeId dst = f.host(1, 0);
  f.oracle->pin(src, dst, f.topo.tors[2]);
  const std::uint64_t epoch_pinned = f.oracle->state_epoch();

  f.oracle->begin_regroom();
  f.oracle->stage_unpin(src, dst);
  const auto result = f.oracle->commit_regroom();
  EXPECT_EQ(result.removed, 1);
  EXPECT_EQ(f.oracle->pin_count(), 0u);
  EXPECT_EQ(f.oracle->state_epoch(), epoch_pinned + 1);
  // Back to the direct mesh hop.
  EXPECT_EQ(f.route_once(src, dst), f.mesh_link(f.topo.tors[0], f.topo.tors[1]));

  // Unpinning a pair that is not pinned is a harmless no-op.
  f.oracle->begin_regroom();
  f.oracle->stage_unpin(src, dst);
  EXPECT_EQ(f.oracle->commit_regroom().removed, 0);
}

TEST(Regroom, SwapCommitIsAtomicWithOneEpochBump) {
  RegroomFixture f;
  const NodeId src = f.host(0, 0);
  const NodeId dst = f.host(1, 0);
  f.oracle->pin(src, dst, f.topo.tors[2]);
  const std::uint64_t epoch_before = f.oracle->state_epoch();

  // Swap the detour intermediate in one transaction.
  f.oracle->begin_regroom();
  f.oracle->stage_unpin(src, dst);
  f.oracle->stage_pin(src, dst, f.topo.tors[3]);
  const auto result = f.oracle->commit_regroom();
  EXPECT_EQ(result.removed, 1);
  EXPECT_EQ(result.applied, 1);
  EXPECT_EQ(f.oracle->pin_count(), 1u);
  EXPECT_EQ(f.oracle->state_epoch(), epoch_before + 1);
  EXPECT_EQ(f.route_once(src, dst), f.mesh_link(f.topo.tors[0], f.topo.tors[3]));
}

TEST(Regroom, StagePinValidatesEndpoints) {
  RegroomFixture f;
  f.oracle->begin_regroom();
  EXPECT_THROW(f.oracle->stage_pin(f.topo.tors[0], f.host(1, 0), f.topo.tors[2]),
               std::invalid_argument);
  EXPECT_THROW(f.oracle->stage_pin(f.host(0, 0), f.host(1, 0), f.host(2, 0)),
               std::invalid_argument);
  f.oracle->abort_regroom();
}

}  // namespace
}  // namespace quartz::routing
