#include "routing/ecmp.hpp"

#include <gtest/gtest.h>

#include "topo/builders.hpp"

namespace quartz::routing {
namespace {

using topo::NodeId;

TEST(EcmpRouting, DistancesInMesh) {
  topo::QuartzRingParams p;
  p.switches = 5;
  p.hosts_per_switch = 2;
  const auto t = topo::quartz_ring(p);
  const EcmpRouting routing(t.graph);

  const NodeId src = t.host_groups[0][0];
  const NodeId dst = t.host_groups[3][1];
  // host -> own ToR -> direct lightpath -> dst ToR -> host = 3 links.
  EXPECT_EQ(routing.distance(src, dst), 3);
  EXPECT_EQ(routing.distance(dst, dst), 0);
  EXPECT_EQ(routing.distance(t.tors[3], dst), 1);
}

TEST(EcmpRouting, MeshHasSingleShortestPath) {
  // §3.4: "there is a single shortest path between any pair of switches
  // in a full mesh, [so] ECMP always selects the direct one-hop path."
  topo::QuartzRingParams p;
  p.switches = 6;
  p.hosts_per_switch = 2;
  const auto t = topo::quartz_ring(p);
  const EcmpRouting routing(t.graph);

  for (std::size_t a = 0; a < t.tors.size(); ++a) {
    for (std::size_t b = 0; b < t.tors.size(); ++b) {
      if (a == b) continue;
      const NodeId dst_host = t.host_groups[b][0];
      const auto links = routing.next_links(t.tors[a], dst_host);
      ASSERT_EQ(links.size(), 1u);
      EXPECT_EQ(t.graph.link(links[0]).other(t.tors[a]), t.tors[b]);
    }
  }
}

TEST(EcmpRouting, TreeHasEqualCostChoices) {
  topo::ThreeTierParams p;  // each ToR sees 2 aggs, each agg 2 cores
  const auto t = topo::three_tier_tree(p);
  const EcmpRouting routing(t.graph);

  // Cross-pod destination: the ToR has 2 equal-cost agg uplinks.
  const NodeId src_tor = t.tors[0];
  const NodeId dst_host = t.host_groups[1][0];
  EXPECT_EQ(routing.next_links(src_tor, dst_host).size(), 2u);
}

TEST(EcmpRouting, HostsDoNotRelayBydefault) {
  // In a quartz ring with 2 hosts per switch, a path between the two
  // hosts of one switch must go through the switch, never a host.
  topo::QuartzRingParams p;
  p.switches = 3;
  p.hosts_per_switch = 2;
  const auto t = topo::quartz_ring(p);
  const EcmpRouting routing(t.graph);
  EXPECT_EQ(routing.distance(t.host_groups[0][0], t.host_groups[0][1]), 2);
}

TEST(EcmpRouting, HostRelayEnablesBCubePaths) {
  topo::BCubeParams p;
  p.n = 3;
  const auto t = topo::bcube1(p);
  const EcmpRouting relay(t.graph, /*allow_host_relay=*/true);
  // Host (0,0) to host (1,1): h - L0(0) - h(0,1) - L1(1) - h(1,1) or
  // the symmetric route: distance 4 with relay.
  const NodeId a = t.host_groups[0][0];
  const NodeId b = t.host_groups[1][1];
  EXPECT_EQ(relay.distance(a, b), 4);

  const EcmpRouting no_relay(t.graph, /*allow_host_relay=*/false);
  EXPECT_EQ(no_relay.distance(a, b), -1);  // unreachable without relays
}

TEST(EcmpRouting, NextLinksAlwaysDecreaseDistance) {
  topo::JellyfishParams p;
  const auto t = topo::jellyfish(p);
  const EcmpRouting routing(t.graph);
  const NodeId dst = t.hosts[13];
  for (NodeId sw : t.tors) {
    const int d = routing.distance(sw, dst);
    for (auto link : routing.next_links(sw, dst)) {
      EXPECT_EQ(routing.distance(t.graph.link(link).other(sw), dst), d - 1);
    }
  }
}

TEST(EcmpRouting, RejectsNonHostDestination) {
  topo::QuartzRingParams p;
  p.switches = 3;
  const auto t = topo::quartz_ring(p);
  const EcmpRouting routing(t.graph);
  EXPECT_THROW(routing.next_links(t.tors[0], t.tors[1]), std::invalid_argument);
}

TEST(HashSelect, DeterministicAndInRange) {
  for (std::uint64_t flow = 0; flow < 50; ++flow) {
    const std::size_t a = hash_select(flow, 7, 4);
    EXPECT_EQ(a, hash_select(flow, 7, 4));
    EXPECT_LT(a, 4u);
  }
  EXPECT_THROW(hash_select(1, 2, 0), std::invalid_argument);
}

TEST(HashSelect, SpreadsAcrossChoices) {
  int counts[4] = {0, 0, 0, 0};
  for (std::uint64_t flow = 0; flow < 4000; ++flow) {
    ++counts[hash_select(flow, 99, 4)];
  }
  for (int c : counts) EXPECT_NEAR(c, 1000, 150);
}

TEST(MixHash, AvalancheSmokeTest) {
  // Single-bit input changes should flip roughly half the output bits.
  int total_flips = 0;
  for (int bit = 0; bit < 64; ++bit) {
    const std::uint64_t diff = mix_hash(0x1234567890ABCDEFull) ^
                               mix_hash(0x1234567890ABCDEFull ^ (1ull << bit));
    total_flips += __builtin_popcountll(diff);
  }
  EXPECT_NEAR(total_flips / 64.0, 32.0, 6.0);
}

}  // namespace
}  // namespace quartz::routing
